//! Cross-crate integration: the secure protocol (crypto + channels +
//! threads) and the clear fast path must implement the *same* decision
//! function — Theorem 3 pinned across the whole stack, including under
//! randomized vote matrices (property-style sweep).

use std::sync::OnceLock;

use consensus_core::algorithms::threshold_decision_scaled;
use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smc::SessionConfig;
use transport::Meter;

const USERS: usize = 4;
const CLASSES: usize = 3;

fn engine() -> &'static SecureEngine {
    static ENGINE: OnceLock<SecureEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(9001);
        SecureEngine::new(
            SessionConfig::test(USERS, CLASSES),
            ConsensusConfig::paper_default(0.8, 0.8),
            &mut rng,
        )
    })
}

fn random_votes(rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..USERS)
        .map(|_| {
            let mut v = vec![0.0; CLASSES];
            v[rng.gen_range(0..CLASSES)] = 1.0;
            v
        })
        .collect()
}

#[test]
fn randomized_vote_matrices_agree_with_decision_function() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut released = 0;
    let mut rejected = 0;
    for round in 0..12 {
        let votes = random_votes(&mut rng);
        let out = engine()
            .run_instance(&votes, Meter::new(), &mut rng)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let expect = threshold_decision_scaled(
            &out.witness.counts_scaled,
            &out.witness.z1_scaled,
            &out.witness.z2_scaled,
            out.witness.threshold_scaled,
        );
        assert_eq!(out.label, expect, "round {round}, votes {votes:?}");
        match out.label {
            Some(_) => released += 1,
            None => rejected += 1,
        }
    }
    // With 4 users / 3 classes / T = 2.4 both outcomes must occur across
    // 12 random matrices (p(miss) is negligible for this seed).
    assert!(released > 0, "no query released");
    assert!(rejected > 0, "no query rejected");
}

#[test]
fn softmax_votes_agree_too() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..4 {
        let votes: Vec<Vec<f64>> = (0..USERS)
            .map(|_| {
                let raw: Vec<f64> = (0..CLASSES).map(|_| rng.gen_range(0.01..1.0)).collect();
                let sum: f64 = raw.iter().sum();
                raw.iter().map(|v| v / sum).collect()
            })
            .collect();
        let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
        let expect = threshold_decision_scaled(
            &out.witness.counts_scaled,
            &out.witness.z1_scaled,
            &out.witness.z2_scaled,
            out.witness.threshold_scaled,
        );
        assert_eq!(out.label, expect);
    }
}

#[test]
fn witness_counts_match_the_votes() {
    let mut rng = StdRng::seed_from_u64(3);
    let votes =
        vec![vec![1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![1.0, 0.0, 0.0]];
    let out = engine().run_instance(&votes, Meter::new(), &mut rng).unwrap();
    assert_eq!(out.witness.counts_scaled, vec![3 * 65536, 65536, 0]);
    // 60% of 4 users = 2.4 votes.
    assert_eq!(out.witness.threshold_scaled, (2.4 * 65536.0f64).round() as i64);
}
