//! Cross-crate integration: privacy accounting against the paper's
//! formulas, and transport metering through a real secure run.

use std::sync::Arc;

use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use dp::rdp::{consensus_epsilon, LinearRdp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::SessionConfig;
use transport::{LinkKind, Meter, Step};

/// Theorem 5's closed form, the RDP-curve composition, and the
/// ConsensusConfig surface must all agree.
#[test]
fn theorem5_agrees_across_all_apis() {
    for (s1, s2) in [(20.0, 20.0), (35.0, 80.0), (100.0, 40.0)] {
        let closed = consensus_epsilon(s1, s2, 1e-6);
        let curve =
            LinearRdp::sparse_vector(s1).compose(&LinearRdp::report_noisy_max(s2)).to_epsilon(1e-6);
        let config = ConsensusConfig::paper_default(s1, s2).epsilon(1, 1e-6);
        assert!((closed - curve).abs() < 1e-10);
        assert!((closed - config).abs() < 1e-10);
    }
}

/// The paper's quoted privacy level ε = 8.19 at δ = 1e-6 corresponds to a
/// concrete noise scale recoverable by our calibrator.
#[test]
fn paper_privacy_level_is_reachable() {
    let sigma = dp::rdp::sigma_for_epsilon(8.19, 1e-6, 1);
    let eps = consensus_epsilon(sigma, sigma, 1e-6);
    assert!((eps - 8.19).abs() < 1e-3, "calibrated ε {eps}");
}

/// A secure run produces the traffic pattern of Table II: user→server
/// traffic only in the secure-sum steps, server↔server everywhere else,
/// and comparison steps dominating by volume.
#[test]
fn secure_run_matches_table2_traffic_pattern() {
    let mut rng = StdRng::seed_from_u64(77);
    let engine = SecureEngine::new(
        SessionConfig::test(3, 3),
        ConsensusConfig::paper_default(0.3, 0.3),
        &mut rng,
    );
    let votes = vec![vec![0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0]];
    let meter = Meter::new();
    let out = engine.run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
    assert_eq!(out.label, Some(1));
    let report = meter.report();

    // User→server traffic exists exactly in the secure-sum steps.
    for step in [Step::SecureSumVotes, Step::SecureSumNoisy] {
        assert!(report.link_stats(step, LinkKind::UserToServer).bytes > 0, "{step}");
        assert_eq!(report.link_stats(step, LinkKind::ServerToServer).bytes, 0, "{step}");
    }
    // Server↔server traffic exists in all interactive steps.
    for step in [
        Step::BlindPermute1,
        Step::CompareRank,
        Step::ThresholdCheck,
        Step::BlindPermute2,
        Step::CompareNoisyRank,
        Step::Restoration,
    ] {
        assert!(report.link_stats(step, LinkKind::ServerToServer).bytes > 0, "{step}");
        assert_eq!(report.link_stats(step, LinkKind::UserToServer).bytes, 0, "{step}");
    }
    // Comparisons dominate: K(K-1)/2 = 3 ranking comparisons vs one
    // threshold comparison.
    assert!(
        report.step_bytes(Step::CompareRank) > 2 * report.step_bytes(Step::ThresholdCheck),
        "ranking must be ~3x the threshold check"
    );
    // Blind-and-permute is far cheaper than comparison, as in Table II.
    assert!(report.step_bytes(Step::CompareRank) > report.step_bytes(Step::BlindPermute1));

    // The rendered tables carry paper step numbers.
    let t1 = report.render_table1();
    assert!(t1.contains("(4)") && t1.contains("(9)"), "{t1}");
    let t2 = report.render_table2();
    assert!(t2.contains("user-to-server") && t2.contains("server-to-server"), "{t2}");
}

/// Rejected instances must not leak later-step traffic (steps 7-9 are
/// never executed on ⊥).
#[test]
fn rejection_short_circuits_protocol() {
    let mut rng = StdRng::seed_from_u64(78);
    let engine = SecureEngine::new(
        SessionConfig::test(3, 3),
        ConsensusConfig::paper_default(0.3, 0.3),
        &mut rng,
    );
    // 1/1/1 split: max 1 < T = 1.8.
    let votes = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
    let meter = Meter::new();
    let out = engine.run_instance(&votes, Arc::clone(&meter), &mut rng).unwrap();
    assert_eq!(out.label, None);
    let report = meter.report();
    assert_eq!(report.step_bytes(Step::BlindPermute2), 0);
    assert_eq!(report.step_bytes(Step::CompareNoisyRank), 0);
    assert_eq!(report.step_bytes(Step::Restoration), 0);
    assert!(report.step_bytes(Step::ThresholdCheck) > 0);
}
