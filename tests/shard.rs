//! Sharded streaming aggregation pinned to the flat path.
//!
//! The shard layer changes *how* the servers fold uploads — streaming
//! per-shard partial sums, per-shard survivor reconciliation — but must
//! never change *what* a round computes. These tests pin the
//! [`ConsensusFingerprint`] across shard counts {1, 2, 7} and thread
//! counts {1, 3}, in strict mode, under dropouts, and at quorum loss.

use std::time::Duration;

use consensus_core::config::ConsensusConfig;
use consensus_core::secure::{ConsensusFingerprint, SecureEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{Parallelism, SessionConfig, SessionKeys, ShardConfig, SmcError};
use transport::{FaultPlan, Meter, PartyId, Step, TimeoutPolicy};

const USERS: usize = 7;
const CLASSES: usize = 3;
const KEY_SEED: u64 = 4242;

/// Key material regenerated from the same seed per variant: only the
/// `shards` field differs between configs, so every variant runs the
/// identical cryptographic round.
fn keys_with_shards(num_shards: usize) -> SessionKeys {
    let mut rng = StdRng::seed_from_u64(KEY_SEED);
    SessionKeys::generate(
        SessionConfig::test(USERS, CLASSES).with_shards(ShardConfig::new(num_shards)),
        &mut rng,
    )
}

fn onehot(k: usize) -> Vec<f64> {
    let mut v = vec![0.0; CLASSES];
    v[k] = 1.0;
    v
}

/// Users 0–1 vote class 0, users 2–6 vote class 1: five votes for class
/// 1 clear the default threshold T = 0.6·7 = 4.2 even after one class-1
/// dropout.
fn votes() -> Vec<Vec<f64>> {
    (0..USERS).map(|u| onehot(usize::from(u >= 2))).collect()
}

#[test]
fn fingerprint_identical_across_shard_and_thread_counts() {
    let mut reference: Option<ConsensusFingerprint> = None;
    for shards in [1, 2, 7] {
        for threads in [1, 3] {
            let engine = SecureEngine::with_keys(
                keys_with_shards(shards),
                ConsensusConfig::paper_default(1e-6, 1e-6),
            )
            .with_parallelism(Parallelism::new(threads));
            let mut rng = StdRng::seed_from_u64(7);
            let out = engine.run_instance(&votes(), Meter::new(), &mut rng).unwrap();
            assert_eq!(out.label, Some(1), "shards={shards} threads={threads}");
            assert!(out.health.is_clean());
            let fp = out.consensus_fingerprint();
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(
                    &fp, r,
                    "sharded round must be fingerprint-identical to flat \
                     (shards={shards} threads={threads})"
                ),
            }
        }
    }
}

#[test]
fn dropout_reconciliation_matches_flat_semantics() {
    // User 1 never uploads its step-2 vectors, user 3 loses its step-6
    // upload: every shard count must reconcile the identical survivor
    // sets per step and produce the identical fingerprint — per-shard
    // survivor exchanges compose to exactly the unsharded semantics.
    let mut reference: Option<ConsensusFingerprint> = None;
    for shards in [1, 2, 7] {
        let engine = SecureEngine::with_keys(
            keys_with_shards(shards),
            ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(2),
        )
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
        .with_fault_plan(
            FaultPlan::new(21)
                .crash(PartyId::User(1), Step::SecureSumVotes)
                .crash(PartyId::User(3), Step::SecureSumNoisy),
        );
        let mut rng = StdRng::seed_from_u64(9);
        let out = engine.run_instance(&votes(), Meter::new(), &mut rng).unwrap();
        assert_eq!(out.health.survivors, vec![0, 2, 3, 4, 5, 6], "shards={shards}");
        assert_eq!(
            out.health.noisy_survivors.as_deref(),
            Some(&[0, 2, 4, 5, 6][..]),
            "shards={shards}"
        );
        assert!(out.health.dropouts.contains(&(1, Step::SecureSumVotes)));
        assert!(out.health.dropouts.contains(&(3, Step::SecureSumNoisy)));
        let fp = out.consensus_fingerprint();
        match &reference {
            None => reference = Some(fp),
            Some(r) => assert_eq!(&fp, r, "shards={shards}"),
        }
    }
}

#[test]
fn quorum_loss_is_identical_for_every_shard_count() {
    // Quorum is a global property: the union of per-shard intersections
    // equals the global intersection, so losing one user below a
    // full-roster quorum aborts identically at every shard count.
    for shards in [1, 2, 7] {
        let engine = SecureEngine::with_keys(
            keys_with_shards(shards),
            ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(USERS),
        )
        .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
        .with_fault_plan(FaultPlan::new(31).crash(PartyId::User(5), Step::SecureSumVotes));
        let mut rng = StdRng::seed_from_u64(11);
        let err = engine.run_instance(&votes(), Meter::new(), &mut rng).unwrap_err();
        match err {
            SmcError::QuorumLost { step, survivors, required } => {
                assert_eq!(step, Step::SecureSumVotes, "shards={shards}");
                assert_eq!(survivors, USERS - 1, "shards={shards}");
                assert_eq!(required, USERS, "shards={shards}");
            }
            other => panic!("expected QuorumLost at shards={shards}, got {other:?}"),
        }
    }
}
