//! Crash-recovery chaos matrix: every protocol step, either server,
//! with and without a concurrent user dropout.
//!
//! The headline invariant of the recovery subsystem: for every crash
//! step × seed, the supervised-and-recovered round's consensus result
//! is **bit-identical** to the uninterrupted round's — same label, same
//! witness aggregates, same survivor sets, same realized noise — and
//! its privacy budget is charged exactly once, no matter how many
//! attempts the execution took. Only reliability counters (timeouts,
//! retries, resumptions) may differ between the two runs.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use consensus_core::config::ConsensusConfig;
use consensus_core::recovery::{RdpLedger, RoundSupervisor};
use consensus_core::secure::{SecureEngine, SecureOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{SessionConfig, SessionKeys};
use transport::{
    CheckpointStore, FaultPlan, FileCheckpointStore, MemoryCheckpointStore, Meter, PartyId, Step,
    TcpConfig, TimeoutPolicy, TransportBackend,
};

const USERS: usize = 5;
const CLASSES: usize = 3;

/// One shared keygen: recovery runs differ only in fault plans.
fn keys() -> &'static SessionKeys {
    static KEYS: OnceLock<SessionKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(101);
        SessionKeys::generate(SessionConfig::test(USERS, CLASSES), &mut rng)
    })
}

/// A resilient engine with tiny noise, a short deadline and one retry,
/// so a crashed peer turns into a typed failure quickly.
fn engine(plan: FaultPlan) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(2),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
    .with_fault_plan(plan)
}

/// Unanimous votes for class 1: the threshold gate passes even after a
/// dropout, so every run exercises all nine steps of the pipeline.
fn votes() -> Vec<Vec<f64>> {
    let mut v = vec![0.0; CLASSES];
    v[1] = 1.0;
    vec![v; USERS]
}

/// The non-crash part of a cell's fault plan: clean, or one user lost
/// before its first upload lands.
fn base_plan(dropout: bool) -> FaultPlan {
    let plan = FaultPlan::new(7);
    if dropout {
        plan.crash(PartyId::User(3), Step::SecureSumVotes)
    } else {
        plan
    }
}

fn rng_seed(dropout: bool) -> u64 {
    if dropout {
        41
    } else {
        40
    }
}

/// The uninterrupted reference round for a dropout configuration. The
/// host RNG is re-seeded identically per cell, so the prepared round
/// (shares, noise, encryptions, server seeds) matches bit for bit.
fn baseline(dropout: bool) -> SecureOutcome {
    let eng = engine(base_plan(dropout));
    let mut rng = StdRng::seed_from_u64(rng_seed(dropout));
    eng.run_instance(&votes(), Meter::new(), &mut rng).expect("baseline round completes")
}

/// One matrix cell: crash `server` at `step`, recover via the
/// supervisor, and demand a bit-identical outcome with exactly-once
/// privacy accounting.
fn assert_crash_recovers(server: PartyId, step: Step, dropout: bool, base: &SecureOutcome) {
    let cell = format!("{server:?} crash at {step:?} (dropout={dropout})");
    let eng = engine(base_plan(dropout).crash(server, step));
    let store = Arc::new(MemoryCheckpointStore::new());
    let ledger = Arc::new(RdpLedger::new());
    let mut sup = RoundSupervisor::new(&eng, Arc::clone(&store) as Arc<dyn CheckpointStore>)
        .with_ledger(Arc::clone(&ledger));
    let meter = Meter::new();
    let mut rng = StdRng::seed_from_u64(rng_seed(dropout));
    let out = sup
        .run_instance(&votes(), Arc::clone(&meter), &mut rng)
        .unwrap_or_else(|e| panic!("{cell}: round not recovered: {e}"));

    assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint(), "{cell}: fingerprint");
    assert_eq!(out.health.charged_rdp(), base.health.charged_rdp(), "{cell}: realized RDP");
    assert!(out.health.resumptions >= 1, "{cell}: the crash must force a resumption");
    assert_eq!(
        out.health.resumed_from.len(),
        out.health.resumptions as usize,
        "{cell}: one re-entry step per resumption"
    );
    assert!(!out.health.is_clean(), "{cell}: a resumed round is not clean");
    assert_eq!(ledger.charges(), 1, "{cell}: RDP charged exactly once");
    assert_eq!(ledger.total(), Some(base.health.charged_rdp()), "{cell}: ledger total");
    assert!(store.is_empty(), "{cell}: a finished round leaves no snapshots behind");

    let stats = meter.fault_stats();
    assert!(stats.crashed_sends > 0, "{cell}: the crash never manifested");
    assert!(stats.checkpoints_saved > 0, "{cell}: no snapshots were written");
    assert_eq!(stats.rounds_resumed, out.health.resumptions, "{cell}: resumption counter");
}

#[test]
fn recovery_matrix_server1() {
    let base = baseline(false);
    for step in Step::ALL {
        assert_crash_recovers(PartyId::Server1, step, false, &base);
    }
}

#[test]
fn recovery_matrix_server2() {
    let base = baseline(false);
    for step in Step::ALL {
        assert_crash_recovers(PartyId::Server2, step, false, &base);
    }
}

#[test]
fn recovery_matrix_server1_with_user_dropout() {
    let base = baseline(true);
    assert_eq!(base.health.survivors, vec![0, 1, 2, 4], "dropout baseline loses user 3");
    for step in Step::ALL {
        assert_crash_recovers(PartyId::Server1, step, true, &base);
    }
}

#[test]
fn recovery_matrix_server2_with_user_dropout() {
    let base = baseline(true);
    for step in Step::ALL {
        assert_crash_recovers(PartyId::Server2, step, true, &base);
    }
}

/// The CI smoke slice of the matrix: one crash step, two seeds. Fast
/// enough for every pipeline run; the full matrix covers the rest.
#[test]
fn recovery_smoke_two_seeds() {
    for seed in [80u64, 81] {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = engine(FaultPlan::new(7))
            .run_instance(&votes(), Meter::new(), &mut rng)
            .expect("baseline completes");

        let eng = engine(FaultPlan::new(7).crash(PartyId::Server1, Step::BlindPermute1));
        let ledger = Arc::new(RdpLedger::new());
        let mut sup = RoundSupervisor::new(&eng, Arc::new(MemoryCheckpointStore::new()))
            .with_ledger(Arc::clone(&ledger));
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sup.run_instance(&votes(), Meter::new(), &mut rng).expect("recovered");
        assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint(), "seed {seed}");
        assert!(out.health.resumptions >= 1, "seed {seed}");
        assert_eq!(ledger.charges(), 1, "seed {seed}");
    }
}

/// A mid-round TCP connection kill on the server spine: the chaos proxy
/// severs the Server1 → Server2 socket in the middle of a frame, the
/// link layer redials and replays from the last acknowledged sequence
/// number, and the supervised round finishes with the uninterrupted
/// in-proc fingerprint and a single RDP charge. The socket failure must
/// stay below the protocol: no dropout, no resumption, no torn frame
/// ever surfacing as data.
#[test]
fn tcp_connection_kill_recovers_two_seeds() {
    for seed in [80u64, 81] {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = engine(FaultPlan::new(7))
            .run_instance(&votes(), Meter::new(), &mut rng)
            .expect("baseline completes");

        let plan = FaultPlan::new(7).sever_connection(PartyId::Server1, PartyId::Server2, 2_000);
        let eng = engine(plan)
            .with_timeout(TimeoutPolicy::fast_local())
            .with_transport(TransportBackend::Tcp(TcpConfig::fast_local()));
        let ledger = Arc::new(RdpLedger::new());
        let mut sup = RoundSupervisor::new(&eng, Arc::new(MemoryCheckpointStore::new()))
            .with_ledger(Arc::clone(&ledger));
        let meter = Meter::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sup.run_instance(&votes(), Arc::clone(&meter), &mut rng).expect("recovered");

        assert_eq!(
            out.consensus_fingerprint(),
            base.consensus_fingerprint(),
            "seed {seed}: fingerprint after the connection kill"
        );
        assert_eq!(ledger.charges(), 1, "seed {seed}: RDP charged exactly once");
        let stats = meter.fault_stats();
        assert!(stats.reconnects >= 1, "seed {seed}: the kill never forced a redial");
        assert!(out.health.dropouts.is_empty(), "seed {seed}: a severed socket is not a dropout");
    }
}

/// A user that crashes before its votes land but revives mid-round
/// stays excluded — the survivor set was fixed at step 2, and its late
/// noisy upload is never read — yet its link attempts fewer dead sends
/// than a crash-forever user's.
#[test]
fn revived_user_stays_excluded_with_fewer_dead_sends() {
    let run = |plan: FaultPlan| {
        let eng = engine(plan);
        let meter = Meter::new();
        let mut rng = StdRng::seed_from_u64(90);
        let out = eng.run_instance(&votes(), Arc::clone(&meter), &mut rng).expect("completes");
        (out, meter.fault_stats())
    };
    let forever = FaultPlan::new(7).crash(PartyId::User(3), Step::SecureSumVotes);
    // Back online at SecureSumNoisy: the noisy upload goes out, but the
    // servers only collect from step-2 survivors.
    let revived = forever.clone().revive_after(PartyId::User(3), 4);
    let (out_forever, stats_forever) = run(forever);
    let (out_revived, stats_revived) = run(revived);

    assert_eq!(out_forever.consensus_fingerprint(), out_revived.consensus_fingerprint());
    assert_eq!(out_revived.health.dropouts, vec![(3, Step::SecureSumVotes)]);
    assert_eq!(out_revived.health.survivors, vec![0, 1, 2, 4]);
    assert!(
        stats_revived.crashed_sends < stats_forever.crashed_sends,
        "a revived link must attempt fewer dead sends ({} vs {})",
        stats_revived.crashed_sends,
        stats_forever.crashed_sends
    );
}

/// Temporary directory with automatic cleanup, mirroring the journal
/// tests in the transport crate.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The file-backed journal drives the same recovery as the in-memory
/// store, snapshots are tombstoned at round end, and a second round on
/// the same supervisor charges the ledger independently.
#[test]
fn file_backed_supervisor_recovers_and_clears() {
    let tmp = TempDir::new("journal");
    let base = baseline(false);
    let eng = engine(base_plan(false).crash(PartyId::Server2, Step::CompareRank));
    let store = Arc::new(FileCheckpointStore::open(&tmp.0).expect("open journal"));
    let ledger = Arc::new(RdpLedger::new());
    let mut sup = RoundSupervisor::new(&eng, Arc::clone(&store) as Arc<dyn CheckpointStore>)
        .with_ledger(Arc::clone(&ledger));

    let mut rng = StdRng::seed_from_u64(rng_seed(false));
    assert_eq!(sup.next_round_id(), 0);
    let out = sup.run_instance(&votes(), Meter::new(), &mut rng).expect("recovered");
    assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint());
    assert!(out.health.resumptions >= 1);
    assert!(tmp.0.join("journal.ckpt").exists(), "the journal file must exist");
    for party in [PartyId::Server1, PartyId::Server2] {
        assert_eq!(
            store.load_latest(0, party).expect("journal readable"),
            None,
            "round 0 snapshots must be cleared after success"
        );
    }

    // A second logical round on the same supervisor: fresh round id,
    // fresh charge. (Different host RNG position — only validity and
    // accounting are asserted, not a fingerprint match.)
    assert_eq!(sup.next_round_id(), 1);
    let out2 = sup.run_instance(&votes(), Meter::new(), &mut rng).expect("second round");
    assert_eq!(out2.label, Some(1));
    assert_eq!(ledger.charges(), 2);
}
