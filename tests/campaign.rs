//! Durable campaign-daemon soak: kill-and-restart resumption with
//! exactly-once RDP charging, admission control at the budget edge,
//! roster churn, stall parking, and whole-shard dropout degradation.
//!
//! The headline invariant: a campaign killed at arbitrary round
//! boundaries and restarted from its directory produces the **same
//! released-label sequence** as an uninterrupted run, spends the **same
//! epsilon to the bit**, and charges every round **exactly once** — the
//! durable ledger refuses duplicate charges during the deterministic
//! replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use consensus_core::campaign::{
    CampaignConfig, CampaignRunner, CampaignStop, RosterChange, RosterEvent,
};
use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::shard::recalibrate_sigma;
use smc::{SessionConfig, SessionKeys, ShardConfig};
use transport::{FaultPlan, Meter, PartyId, Step, TimeoutPolicy};

const USERS: usize = 5;
const CLASSES: usize = 3;

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("campaign-test-{label}-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn onehot(k: usize, classes: usize) -> Vec<f64> {
    let mut v = vec![0.0; classes];
    v[k] = 1.0;
    v
}

/// `n` instances with `rows` unanimous voters each (row count covers the
/// largest roster the campaign can churn up to).
fn unanimous_instances(n: usize, rows: usize) -> Vec<Vec<Vec<f64>>> {
    (0..n).map(|i| vec![onehot(i % CLASSES, CLASSES); rows]).collect()
}

/// The soak campaign: σ₁ = σ₂ = 1.5 (measurable per-round spend), 60%
/// threshold, quorum 2 of 5, fixed campaign seed.
fn campaign_config(budget: f64) -> CampaignConfig {
    CampaignConfig::new(
        ConsensusConfig::paper_default(1.5, 1.5).with_min_users(2),
        USERS,
        CLASSES,
        budget,
        1e-6,
    )
    .with_seed(1234)
}

/// A short receive deadline so injected crashes surface quickly.
fn fast_timeout() -> TimeoutPolicy {
    TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0)
}

/// A fault plan that crashes Server1 mid-pipeline — it re-fires every
/// round, so *every* round of the campaign resumes from checkpoints.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(7).crash(PartyId::Server1, Step::BlindPermute1)
}

fn open_runner(dir: &TempDir, budget: f64) -> CampaignRunner {
    CampaignRunner::open(&dir.0, campaign_config(budget))
        .expect("open campaign")
        .with_timeout(fast_timeout())
        .with_fault_plan(chaos_plan())
}

/// The 30-round chaos soak. Every round is crash-resumed mid-pipeline
/// by the fault plan; on top of that the daemon itself is killed at two
/// round boundaries and restarted from its directory. The interrupted
/// lineage must reproduce the uninterrupted run exactly: same released
/// labels, bitwise-equal epsilon, every round charged exactly once.
#[test]
fn campaign_soak_kill_restart_30_rounds() {
    const ROUNDS: usize = 30;
    let instances = unanimous_instances(ROUNDS, USERS);
    let budget = 1000.0;

    // Reference: one uninterrupted lifetime.
    let reference = {
        let dir = TempDir::new("soak-ref");
        let mut runner = open_runner(&dir, budget);
        runner.run(&instances, Meter::new()).expect("uninterrupted run")
    };
    assert_eq!(reference.stop, CampaignStop::InstancesExhausted);
    assert_eq!(reference.rounds.len(), ROUNDS, "every instance answers");
    assert!(reference.rounds.iter().all(|r| r.charged), "first lifetime charges every round");
    assert!(
        reference.rounds.iter().all(|r| r.resumptions >= 1),
        "the chaos plan must force a resumption every round"
    );
    assert!(reference.epsilon_spent <= budget, "budget never exceeded");

    // Chaos lineage: kill after 9 rounds, again after 21, then finish.
    let dir = TempDir::new("soak-kill");
    {
        let mut runner = open_runner(&dir, budget);
        let partial = runner.run(&instances[..9], Meter::new()).expect("first lifetime");
        assert_eq!(partial.rounds.len(), 9);
        // Runner dropped here = kill -9 at a round boundary.
    }
    {
        let mut runner = open_runner(&dir, budget);
        assert!(
            runner.epsilon_spent() > 0.0,
            "reopened ledger resumes at the epsilon already spent"
        );
        let partial = runner.run(&instances[..21], Meter::new()).expect("second lifetime");
        let replayed = partial.rounds.iter().filter(|r| !r.charged).count();
        assert_eq!(replayed, 9, "the 9 paid rounds replay without re-charging");
    }
    let resumed = {
        let mut runner = open_runner(&dir, budget);
        runner.run(&instances, Meter::new()).expect("final lifetime")
    };

    assert_eq!(
        resumed.released, reference.released,
        "released-label sequence must be bit-identical across kills"
    );
    assert_eq!(
        resumed.epsilon_spent, reference.epsilon_spent,
        "epsilon must resume exactly (same charges, same composition)"
    );
    let replayed = resumed.rounds.iter().filter(|r| !r.charged).count();
    assert_eq!(replayed, 21, "rounds paid by earlier lifetimes are not re-charged");
    let ledger_rounds = {
        let runner = open_runner(&dir, budget);
        runner.ledger().charged_rounds()
    };
    assert_eq!(
        ledger_rounds,
        (0..ROUNDS as u64).collect::<Vec<_>>(),
        "exactly one durable charge per logical round"
    );
}

/// Admission control: the ledger refuses the first round whose
/// *worst-case* spend would exceed the budget — and keeps refusing it
/// after a restart, at the same instance, with the paid prefix replayed
/// for free.
#[test]
fn admission_refuses_first_over_budget_round() {
    // At σ = 1.5, quorum 2/5: one clean round spends ε ≈ 14.1 and the
    // worst-case admission charge is ε ≈ 24.5; admitting a second round
    // would need ε ≈ 30.3. A budget of 28 admits exactly one round.
    let budget = 28.0;
    let instances = unanimous_instances(5, USERS);
    let dir = TempDir::new("budget");

    let first = {
        let mut runner = CampaignRunner::open(&dir.0, campaign_config(budget))
            .expect("open campaign")
            .with_timeout(fast_timeout());
        runner.run(&instances, Meter::new()).expect("run to refusal")
    };
    match first.stop {
        CampaignStop::BudgetExhausted { refused_instance, worst_case_epsilon } => {
            assert_eq!(refused_instance, 1, "round 0 fits, round 1 is refused");
            assert!(worst_case_epsilon > budget, "the refused round would overshoot");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(first.rounds.len(), 1);
    assert!(first.epsilon_spent <= budget, "spend stays under budget");
    assert!(first.epsilon_spent > 0.0);

    // Restart: the paid round replays uncharged, the refusal repeats.
    let second = {
        let mut runner = CampaignRunner::open(&dir.0, campaign_config(budget))
            .expect("reopen campaign")
            .with_timeout(fast_timeout());
        runner.run(&instances, Meter::new()).expect("replay to refusal")
    };
    assert_eq!(second.released, first.released);
    assert_eq!(second.epsilon_spent, first.epsilon_spent, "epsilon resumes exactly");
    assert!(second.rounds.iter().all(|r| !r.charged), "no new charges after restart");
    assert!(matches!(second.stop, CampaignStop::BudgetExhausted { refused_instance: 1, .. }));
}

/// A fault plan alone (no configured `min_users`) makes the engine
/// resilient with an effective quorum of **one** survivor — admission
/// must budget for that deepest legal cohort, not the full roster,
/// or a ragged round could charge past the admitted worst case.
#[test]
fn fault_plan_without_quorum_budgets_for_single_survivor() {
    let (s1, s2) = (1.5, 1.5);
    let delta = 1e-6;
    let round_at = |sigma: f64| {
        dp::rdp::LinearRdp::sparse_vector(sigma)
            .compose(&dp::rdp::LinearRdp::report_noisy_max(sigma))
            .to_epsilon(delta)
    };
    let clean = round_at(s1);
    let worst_single = round_at(recalibrate_sigma(s1, USERS, 1));
    assert!(worst_single > clean);
    // Admits one strict (all-members) round, refuses the quorum-1 worst case.
    let budget = (clean + worst_single) / 2.0;
    let config = CampaignConfig::new(
        ConsensusConfig::paper_default(s1, s2), // deliberately no min_users
        USERS,
        CLASSES,
        budget,
        delta,
    )
    .with_seed(1234);
    let instances = unanimous_instances(1, USERS);

    // Without a fault plan the rounds are strict: every member survives
    // or the round aborts, so the worst case is the clean charge — fits.
    let dir = TempDir::new("strict-fits");
    let strict = CampaignRunner::open(&dir.0, config.clone())
        .expect("open strict campaign")
        .with_timeout(fast_timeout())
        .run(&instances, Meter::new())
        .expect("strict run");
    assert_eq!(strict.stop, CampaignStop::InstancesExhausted);
    assert_eq!(strict.rounds.len(), 1, "the strict round fits the budget");
    assert!(strict.epsilon_spent <= budget);

    // Attaching a fault plan — even one that never fires — drops the
    // engine's effective quorum to 1, so a round may legally realize
    // the single-survivor charge. Admission must refuse it up front.
    let dir = TempDir::new("resilient-refuses");
    let resilient = CampaignRunner::open(&dir.0, config)
        .expect("open resilient campaign")
        .with_timeout(fast_timeout())
        .with_fault_plan(FaultPlan::new(7))
        .run(&instances, Meter::new())
        .expect("resilient run");
    match resilient.stop {
        CampaignStop::BudgetExhausted { refused_instance, worst_case_epsilon } => {
            assert_eq!(refused_instance, 0, "refused before any spend");
            assert!(worst_case_epsilon > budget, "the worst case overshoots");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert!(resilient.rounds.is_empty());
    assert_eq!(resilient.epsilon_spent, 0.0, "a refused round charges nothing");
}

/// Roster churn between rounds: leaves shrink the session, joins grow
/// it, crashes are counted separately — and every epoch still answers.
#[test]
fn roster_churn_rebuilds_sessions_between_rounds() {
    let instances = unanimous_instances(3, USERS + 2);
    let dir = TempDir::new("churn");
    // σ = 0.25: even the shrunken 4-member epoch clears its threshold by
    // >6σ, so every epoch deterministically releases.
    let config = CampaignConfig::new(
        ConsensusConfig::paper_default(0.25, 0.25).with_min_users(2),
        USERS,
        CLASSES,
        1e6,
        1e-6,
    )
    .with_seed(1234);
    let mut runner = CampaignRunner::open(&dir.0, config)
        .expect("open campaign")
        .with_timeout(fast_timeout())
        .with_roster_events(vec![
            RosterEvent::new(1, RosterChange::Leave(1)),
            RosterEvent::new(2, RosterChange::Join(2)),
            RosterEvent::new(2, RosterChange::Crash(1)),
        ]);
    let report = runner.run(&instances, Meter::new()).expect("churned campaign");

    assert_eq!(report.stop, CampaignStop::InstancesExhausted);
    assert_eq!((report.joins, report.leaves, report.crashes), (2, 1, 1));
    let members: Vec<usize> = report.rounds.iter().map(|r| r.members).collect();
    assert_eq!(members, vec![5, 4, 5], "leave → 4, join 2 + crash 1 → 5");
    assert_eq!(report.released.len(), 3, "every epoch still releases");
    for (cost, idx) in report.rounds.iter().zip(0..) {
        assert_eq!(cost.instance, idx);
        assert_eq!(cost.survivors, cost.members, "clean rounds lose nobody");
    }
}

/// Persistent quorum loss: instances burn their retry budget, get
/// parked, and a streak of parked instances stops the run with a typed
/// stall carrying a backoff hint.
#[test]
fn repeated_quorum_loss_parks_and_stalls() {
    // Quorum = all 5 users, but user 3 crashes before its first upload
    // in every round: quorum is unrecoverably lost each time.
    let config = CampaignConfig::new(
        ConsensusConfig::paper_default(1.5, 1.5).with_min_users(USERS),
        USERS,
        CLASSES,
        1000.0,
        1e-6,
    )
    .with_seed(99)
    .with_instance_retries(1)
    .with_stall_threshold(2);
    let dir = TempDir::new("stall");
    let mut runner = CampaignRunner::open(&dir.0, config)
        .expect("open campaign")
        .with_timeout(fast_timeout())
        .with_fault_plan(FaultPlan::new(7).crash(PartyId::User(3), Step::SecureSumVotes));
    let instances = unanimous_instances(5, USERS);
    let report = runner.run(&instances, Meter::new()).expect("stalled campaign");

    match report.stop {
        CampaignStop::Stalled(stall) => {
            assert_eq!(stall.consecutive_failures, 2);
            assert_eq!(stall.at_instance, 1);
            assert!(stall.backoff >= Duration::from_millis(100), "backoff hint grows");
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert_eq!(report.parked, vec![0, 1], "both attempted instances parked");
    assert!(report.rounds.is_empty(), "no round completed");
    assert_eq!(report.epsilon_spent, 0.0, "failed rounds charge nothing");
}

/// Whole-shard dropout: when every member of an aggregation shard
/// crashes, the round completes on the surviving shards with honestly
/// recalibrated noise — and produces the *identical* consensus
/// fingerprint as the flat (unsharded) path under the same faults.
#[test]
fn whole_shard_dropout_recalibrates_and_matches_flat_path() {
    const N: usize = 8;
    // Tiny noise (deterministic outcome), 20% threshold so the two
    // survivors still clear T = 1.6 votes and the release step runs.
    let consensus = ConsensusConfig::new(0.2, 0.05, 0.05).with_min_users(2);
    // Crash users 2..8 before their first upload: survivors {0, 1}
    // occupy at most two of the three shards, so at least one populated
    // shard loses its entire membership.
    let mut plan = FaultPlan::new(7);
    for u in 2..N {
        plan = plan.crash(PartyId::User(u), Step::SecureSumVotes);
    }
    let votes = vec![onehot(1, CLASSES); N];

    let run = |shards: Option<usize>| {
        let mut cfg = SessionConfig::test(N, CLASSES);
        if let Some(k) = shards {
            cfg = cfg.with_shards(ShardConfig::new(k));
        }
        let mut keyrng = StdRng::seed_from_u64(7);
        let keys = SessionKeys::generate(cfg, &mut keyrng);
        let engine = SecureEngine::with_keys(keys, consensus)
            .with_timeout(fast_timeout())
            .with_fault_plan(plan.clone());
        let meter = Meter::new();
        let mut rng = StdRng::seed_from_u64(55);
        let out = engine
            .run_instance(&votes, Arc::clone(&meter), &mut rng)
            .expect("degraded round completes");
        (out, meter.fault_stats())
    };

    let (flat, flat_stats) = run(None);
    let (sharded, sharded_stats) = run(Some(3));

    assert_eq!(
        sharded.consensus_fingerprint(),
        flat.consensus_fingerprint(),
        "shard geometry must not change the consensus"
    );
    assert_eq!(sharded.health.survivors, vec![0, 1]);
    assert_eq!(
        sharded.health.realized_sigma1,
        recalibrate_sigma(consensus.sigma1, N, 2),
        "threshold noise recalibrates to the realized survivor count"
    );
    assert_eq!(sharded.label, Some(1), "the survivors' unanimous class is released");
    let noisy = sharded.health.noisy_survivors.as_ref().expect("release step ran");
    assert_eq!(
        sharded.health.realized_sigma2,
        Some(recalibrate_sigma(consensus.sigma2, N, noisy.len())),
        "argmax noise recalibrates to the step-6 survivor count"
    );
    assert!(
        sharded_stats.shards_dropped >= 1,
        "losing a whole shard must be recorded: {sharded_stats:?}"
    );
    assert_eq!(flat_stats.shards_dropped, 0, "the flat path has no shards to lose");
    // Honest accounting: the degraded round charges more than a clean one.
    let clean = dp::rdp::LinearRdp::sparse_vector(consensus.sigma1)
        .compose(&dp::rdp::LinearRdp::report_noisy_max(consensus.sigma2));
    assert!(
        sharded.health.charged_rdp().coeff() > clean.coeff(),
        "shrunk realized noise must cost more budget"
    );
}

/// The CI smoke slice: two seeds, a kill at a seed-derived round, one
/// restart. Fast enough for every pipeline run; the 30-round soak above
/// covers the rest.
#[test]
fn campaign_soak_smoke() {
    const ROUNDS: usize = 8;
    for seed in [5u64, 6] {
        let instances = unanimous_instances(ROUNDS, USERS);
        let config = campaign_config(1000.0).with_seed(seed);
        let kill_at = 3 + (seed as usize % 4);

        let dir_ref = TempDir::new("smoke-ref");
        let reference = CampaignRunner::open(&dir_ref.0, config.clone())
            .expect("open reference")
            .with_timeout(fast_timeout())
            .with_fault_plan(chaos_plan())
            .run(&instances, Meter::new())
            .expect("uninterrupted smoke");

        let dir = TempDir::new("smoke-kill");
        {
            let mut runner = CampaignRunner::open(&dir.0, config.clone())
                .expect("open first lifetime")
                .with_timeout(fast_timeout())
                .with_fault_plan(chaos_plan());
            runner.run(&instances[..kill_at], Meter::new()).expect("first lifetime");
        }
        let resumed = CampaignRunner::open(&dir.0, config)
            .expect("reopen")
            .with_timeout(fast_timeout())
            .with_fault_plan(chaos_plan())
            .run(&instances, Meter::new())
            .expect("resumed smoke");

        assert_eq!(resumed.released, reference.released, "seed {seed}");
        assert_eq!(resumed.epsilon_spent, reference.epsilon_spent, "seed {seed}");
        assert_eq!(
            resumed.rounds.iter().filter(|r| !r.charged).count(),
            kill_at,
            "seed {seed}: paid prefix replays uncharged"
        );
    }
}
