//! Covert-server audit chaos matrix: commit-and-challenge verification
//! of the blind-permute and restoration steps under injected Byzantine
//! deviations.
//!
//! Every cell of the matrix — each [`ByzantineAction`] by each server at
//! each auditable step — must end in the typed
//! [`SmcError::AuditFailure`] naming the guilty party and step, with the
//! evidence class the deviation implies. Honest rounds must be
//! fingerprint-identical with auditing on and off (the audit layer
//! commits to seeds the protocol already derives; it draws no randomness
//! of its own), including rounds resumed from a mid-round checkpoint.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use consensus_core::config::ConsensusConfig;
use consensus_core::recovery::{RdpLedger, RoundSupervisor};
use consensus_core::secure::SecureEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{AuditEvidence, AuditPolicy, SessionConfig, SessionKeys, SmcError};
use transport::{
    ByzantineAction, CheckpointStore, FaultPlan, MemoryCheckpointStore, Meter, PartyId, Step,
    TcpConfig, TimeoutPolicy, TransportBackend,
};

const USERS: usize = 5;
const CLASSES: usize = 3;

/// One shared keygen: audit runs differ only in policies and fault plans.
fn keys() -> &'static SessionKeys {
    static KEYS: OnceLock<SessionKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(77);
        SessionKeys::generate(SessionConfig::test(USERS, CLASSES), &mut rng)
    })
}

/// An engine with short receive windows and the given fault plan.
fn engine(plan: FaultPlan) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(2),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
    .with_fault_plan(plan)
}

/// Unanimous votes for class 1: the threshold gate passes, so every run
/// reaches all nine steps — both blind-permutes and the restoration.
fn votes() -> Vec<Vec<f64>> {
    let mut v = vec![0.0; CLASSES];
    v[1] = 1.0;
    vec![v; USERS]
}

/// A fault plan carrying exactly one Byzantine deviation.
fn byzantine_plan(action: ByzantineAction, party: PartyId, step: Step) -> FaultPlan {
    let plan = FaultPlan::new(1);
    match action {
        ByzantineAction::Equivocate => plan.equivocate(party, step),
        ByzantineAction::TamperPermutation => plan.tamper_permutation(party, step),
        ByzantineAction::DropMask => plan.drop_mask(party, step),
        ByzantineAction::ReplayStaleFrame => plan.replay_stale_frame(party, step),
    }
}

/// The evidence class each deviation must be convicted with: wire
/// substitutions diverge the transcripts, tampered draws diverge the
/// replayed permutation or masks.
fn expected_evidence(action: ByzantineAction, evidence: &AuditEvidence) -> bool {
    match action {
        ByzantineAction::Equivocate | ByzantineAction::ReplayStaleFrame => {
            matches!(evidence, AuditEvidence::TranscriptDivergence { .. })
        }
        ByzantineAction::TamperPermutation => {
            matches!(evidence, AuditEvidence::PermutationMismatch { .. })
        }
        ByzantineAction::DropMask => matches!(evidence, AuditEvidence::MaskMismatch { .. }),
    }
}

const ACTIONS: [ByzantineAction; 4] = [
    ByzantineAction::Equivocate,
    ByzantineAction::TamperPermutation,
    ByzantineAction::DropMask,
    ByzantineAction::ReplayStaleFrame,
];
const AUDITED_STEPS: [Step; 3] = [Step::BlindPermute1, Step::BlindPermute2, Step::Restoration];

/// S1's restoration sends nothing before its final plaintext message, so
/// there is no earlier same-type frame a stale replay could substitute —
/// the one structurally inapplicable cell of the matrix.
fn applicable(action: ByzantineAction, party: PartyId, step: Step) -> bool {
    !(action == ByzantineAction::ReplayStaleFrame
        && party == PartyId::Server1
        && step == Step::Restoration)
}

/// The full strict-mode matrix: every deviation by every server at every
/// auditable step is convicted — typed abort, guilty party, guilty step,
/// matching evidence class, and the meter counters record the challenge
/// and the conviction.
#[test]
fn strict_audit_convicts_every_byzantine_cell() {
    for action in ACTIONS {
        for party in [PartyId::Server1, PartyId::Server2] {
            for step in AUDITED_STEPS {
                if !applicable(action, party, step) {
                    continue;
                }
                let cell = format!("{action:?} by {party:?} at {step:?}");
                let eng =
                    engine(byzantine_plan(action, party, step)).with_audit(AuditPolicy::strict());
                let meter = Meter::new();
                let mut rng = StdRng::seed_from_u64(30);
                let err = eng
                    .run_instance(&votes(), Arc::clone(&meter), &mut rng)
                    .expect_err(&format!("{cell}: deviation must not yield an outcome"));
                match err {
                    SmcError::AuditFailure { party: guilty, step: at, evidence } => {
                        assert_eq!(guilty, party, "{cell}: wrong party convicted");
                        assert_eq!(at, step, "{cell}: wrong step convicted");
                        assert!(
                            expected_evidence(action, &evidence),
                            "{cell}: wrong evidence class: {evidence}"
                        );
                    }
                    other => panic!("{cell}: expected an audit conviction, got {other}"),
                }
                let stats = meter.fault_stats();
                assert!(stats.audit_challenges > 0, "{cell}: no challenge verified");
                assert!(stats.audit_failures > 0, "{cell}: conviction not counted");
                if matches!(action, ByzantineAction::Equivocate | ByzantineAction::ReplayStaleFrame)
                {
                    assert!(stats.equivocation_detected > 0, "{cell}: equivocation not counted");
                }
            }
        }
    }
}

/// Resilient policy under a deviating server: the abort stays typed and
/// clean — no panic, no label released from tainted data — and a
/// supervised round never charges privacy budget for it, no matter how
/// many resumption attempts re-convict.
#[test]
fn resilient_audit_aborts_cleanly_and_charges_nothing() {
    let plan = byzantine_plan(ByzantineAction::Equivocate, PartyId::Server2, Step::BlindPermute2);
    let eng = engine(plan).with_audit(AuditPolicy::resilient());
    let ledger = Arc::new(RdpLedger::new());
    let store = Arc::new(MemoryCheckpointStore::new());
    let mut sup = RoundSupervisor::new(&eng, Arc::clone(&store) as Arc<dyn CheckpointStore>)
        .with_ledger(Arc::clone(&ledger));
    let mut rng = StdRng::seed_from_u64(31);
    let err = sup.run_instance(&votes(), Meter::new(), &mut rng).unwrap_err();
    assert!(
        matches!(
            err,
            SmcError::AuditFailure { party: PartyId::Server2, step: Step::BlindPermute2, .. }
        ),
        "expected the conviction to survive every attempt, got {err}"
    );
    assert_eq!(ledger.charges(), 0, "a convicted round must never charge the ledger");
}

/// Honest rounds with auditing on are bit-identical to auditing off: the
/// audit layer commits to seeds the pipeline already derives and draws
/// no protocol randomness, so the consensus fingerprint cannot move.
#[test]
fn honest_round_fingerprint_is_audit_invariant() {
    let mut rng = StdRng::seed_from_u64(32);
    let base = engine(FaultPlan::new(2))
        .run_instance(&votes(), Meter::new(), &mut rng)
        .expect("audit-off round completes");
    assert!(base.health.is_clean());
    assert_eq!(base.health.audit_challenges, 0, "auditing off records no challenges");

    let meter = Meter::new();
    let mut rng = StdRng::seed_from_u64(32);
    let out = engine(FaultPlan::new(2))
        .with_audit(AuditPolicy::strict())
        .run_instance(&votes(), Arc::clone(&meter), &mut rng)
        .expect("audited honest round completes");
    assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint());
    assert!(out.health.is_clean(), "a passed challenge is not a fault");
    assert!(out.health.audit_challenges > 0, "every step audit must be surfaced in health");
    let stats = meter.fault_stats();
    assert!(stats.audit_challenges > 0);
    assert_eq!(stats.audit_failures, 0, "honest servers are never convicted");

    // A sampled policy challenges only its seeded fraction of rounds but
    // never perturbs the outcome either way.
    let mut rng = StdRng::seed_from_u64(32);
    let sampled = engine(FaultPlan::new(2))
        .with_audit(AuditPolicy::sampled(0.5, 9))
        .run_instance(&votes(), Meter::new(), &mut rng)
        .expect("sampled-audit round completes");
    assert_eq!(sampled.consensus_fingerprint(), base.consensus_fingerprint());
}

/// The TCP backend carries the commit/open frames over real sockets with
/// the same fingerprint as the in-proc mesh.
#[test]
fn tcp_audited_round_matches_inproc_fingerprint() {
    let mut rng = StdRng::seed_from_u64(33);
    let base = engine(FaultPlan::new(3))
        .run_instance(&votes(), Meter::new(), &mut rng)
        .expect("in-proc round completes");

    let mut rng = StdRng::seed_from_u64(33);
    let out = SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(2),
    )
    .with_timeout(TimeoutPolicy::fast_local())
    .with_transport(TransportBackend::Tcp(TcpConfig::fast_local()))
    .with_audit(AuditPolicy::strict())
    .run_instance(&votes(), Meter::new(), &mut rng)
    .expect("audited tcp round completes");
    assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint());
    assert!(out.health.audit_challenges > 0);
}

/// Crash recovery composed with auditing: the audit commitments live in
/// the round's checkpoints, so a round resumed mid-challenge re-verifies
/// against the seeds committed before the crash. A crash *after* the
/// second blind-permute is the critical cell — the restoration check
/// compares against the peer permutation digest learned at that step,
/// which must survive the checkpoint round-trip.
#[test]
fn resumed_audited_round_keeps_fingerprint_and_charges_once() {
    let mut rng = StdRng::seed_from_u64(34);
    let base = engine(FaultPlan::new(4))
        .run_instance(&votes(), Meter::new(), &mut rng)
        .expect("baseline completes");

    for crash_step in [Step::CompareRank, Step::CompareNoisyRank, Step::Restoration] {
        let cell = format!("crash at {crash_step:?}");
        let eng = engine(FaultPlan::new(4).crash(PartyId::Server1, crash_step))
            .with_audit(AuditPolicy::strict());
        let ledger = Arc::new(RdpLedger::new());
        let store = Arc::new(MemoryCheckpointStore::new());
        let mut sup = RoundSupervisor::new(&eng, Arc::clone(&store) as Arc<dyn CheckpointStore>)
            .with_ledger(Arc::clone(&ledger));
        let mut rng = StdRng::seed_from_u64(34);
        let out = sup
            .run_instance(&votes(), Meter::new(), &mut rng)
            .unwrap_or_else(|e| panic!("{cell}: audited round not recovered: {e}"));
        assert_eq!(
            out.consensus_fingerprint(),
            base.consensus_fingerprint(),
            "{cell}: resumed audited fingerprint diverged"
        );
        assert!(out.health.resumptions >= 1, "{cell}: the crash must force a resumption");
        assert!(out.health.audit_challenges > 0, "{cell}: resumed challenges must re-verify");
        assert_eq!(ledger.charges(), 1, "{cell}: RDP charged exactly once");
        assert!(store.is_empty(), "{cell}: a finished round leaves no snapshots behind");
    }
}

/// The CI smoke slice: one strict conviction and one resilient clean
/// abort per seed — fast enough for every pipeline run; the full matrix
/// covers the rest.
#[test]
fn audit_smoke_two_seeds() {
    for seed in [90u64, 91] {
        let plan = byzantine_plan(
            ByzantineAction::TamperPermutation,
            PartyId::Server1,
            Step::BlindPermute1,
        );
        let eng = engine(plan.clone()).with_audit(AuditPolicy::strict());
        let mut rng = StdRng::seed_from_u64(seed);
        let err = eng.run_instance(&votes(), Meter::new(), &mut rng).unwrap_err();
        assert!(
            matches!(
                err,
                SmcError::AuditFailure { party: PartyId::Server1, step: Step::BlindPermute1, .. }
            ),
            "seed {seed}: expected a conviction, got {err}"
        );

        let eng = engine(plan).with_audit(AuditPolicy::resilient());
        let mut rng = StdRng::seed_from_u64(seed);
        let err = eng.run_instance(&votes(), Meter::new(), &mut rng).unwrap_err();
        assert!(
            matches!(err, SmcError::AuditFailure { .. }),
            "seed {seed}: resilient mode must still convict a real divergence, got {err}"
        );
    }
}
