//! Cross-crate integration: the full experiment pipeline reproduces the
//! paper's qualitative claims at miniature scale.

use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{LabelingMode, PartitionKind, SingleLabelExperiment};
use mlsim::model::TrainConfig;
use mlsim::partition::Division;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn experiment(users: usize, sigma: f64) -> SingleLabelExperiment {
    let mut exp = SingleLabelExperiment::new(
        GaussianMixtureSpec::svhn_like(),
        users,
        ConsensusConfig::paper_default(sigma, sigma),
    );
    exp.train_size = 1500;
    exp.public_size = 250;
    exp.test_size = 400;
    exp.train_config = TrainConfig { epochs: 15, ..TrainConfig::default() };
    exp
}

/// The paper's headline claim (Fig. 3): at a common privacy level and a
/// large user count, consensus labeling beats the noisy-max baseline.
#[test]
fn consensus_beats_baseline_with_many_users() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut cons_acc = 0.0;
    let mut base_acc = 0.0;
    let rounds = 3;
    for _ in 0..rounds {
        let cons = experiment(50, 3.0).with_mode(LabelingMode::Consensus).run(&mut rng);
        let base = experiment(50, 3.0).with_mode(LabelingMode::Baseline).run(&mut rng);
        cons_acc += cons.label_stats.label_accuracy;
        base_acc += base.label_stats.label_accuracy;
    }
    assert!(
        cons_acc > base_acc,
        "consensus label accuracy {cons_acc} must beat baseline {base_acc} over {rounds} rounds"
    );
}

/// Lower privacy (more noise) must not increase label accuracy.
#[test]
fn accuracy_improves_as_privacy_loosens() {
    let mut rng = StdRng::seed_from_u64(11);
    let tight = experiment(50, 12.0).run(&mut rng); // heavy noise
    let loose = experiment(50, 0.5).run(&mut rng); // light noise
    assert!(
        loose.label_stats.label_accuracy >= tight.label_stats.label_accuracy - 0.02,
        "loose {} vs tight {}",
        loose.label_stats.label_accuracy,
        tight.label_stats.label_accuracy
    );
    assert!(loose.epsilon > tight.epsilon, "less noise must cost more ε");
}

/// Table III's driver: retention drops as the split becomes uneven, and
/// whatever *is* retained stays accurately labeled.
#[test]
fn uneven_splits_cut_retention_not_label_accuracy() {
    let mut rng = StdRng::seed_from_u64(12);
    let rounds = 3;
    let mut even_r = 0.0;
    let mut d28_r = 0.0;
    let mut even_l = 0.0;
    let mut d28_l = 0.0;
    let mut d28_rounds = 0usize;
    for _ in 0..rounds {
        // Easy workload + ample data so the 2-8 majority teachers stay
        // informative enough to retain some labels (the paper's regime).
        let mut base = experiment(50, 1.0);
        base.spec = GaussianMixtureSpec::mnist_like();
        base.train_size = 4000;
        let even = base.clone().run(&mut rng);
        let d28 = base.with_partition(PartitionKind::Uneven(Division::D28)).run(&mut rng);
        even_r += even.label_stats.retention();
        d28_r += d28.label_stats.retention();
        even_l += even.label_stats.label_accuracy;
        if d28.label_stats.retained > 0 {
            d28_rounds += 1;
            d28_l += d28.label_stats.label_accuracy;
        }
    }
    assert!(even_r > d28_r, "even retention {even_r} must exceed 2-8 retention {d28_r}");
    assert!(even_l / rounds as f64 > 0.85, "even labels must be accurate: {even_l}");
    if d28_rounds > 0 {
        assert!(
            d28_l / d28_rounds as f64 > 0.7,
            "retained 2-8 labels must stay accurate: {d28_l} over {d28_rounds} rounds"
        );
    }
}

/// The user-accuracy learning curve that drives Fig. 2(a).
#[test]
fn teacher_accuracy_falls_with_user_count() {
    let mut rng = StdRng::seed_from_u64(13);
    let few = experiment(5, 1.0).run(&mut rng).user_accuracy.mean;
    let many = experiment(75, 1.0).run(&mut rng).user_accuracy.mean;
    assert!(few > many, "5 users {few} vs 75 users {many}");
}

/// Privacy reporting is consistent with the analytic Theorem 5 numbers.
#[test]
fn reported_epsilon_matches_accountant() {
    let mut rng = StdRng::seed_from_u64(14);
    let exp = experiment(10, 4.0);
    let out = exp.clone().run(&mut rng);
    let expect = exp.config.epsilon(exp.public_size as u64, exp.delta);
    assert!((out.epsilon - expect).abs() < 1e-9);
}
