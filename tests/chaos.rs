//! Chaos sweep: the dropout-resilient protocol under injected faults.
//!
//! Every run must end in one of exactly two ways — a label consistent
//! with the witness aggregates over the users actually counted, or a
//! typed abort ([`SmcError::QuorumLost`] / transport error). Never a
//! hang, never a panic, and never a label whose realized noise is
//! silently weaker than [`RoundHealth`] reports.

use std::sync::OnceLock;
use std::time::Duration;

use consensus_core::config::{scale_votes, ConsensusConfig};
use consensus_core::secure::{SecureEngine, SecureOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{Parallelism, SessionConfig, SessionKeys, SmcError};
use transport::{
    FaultPlan, LinkKind, Meter, PartyId, Step, TcpConfig, TimeoutPolicy, TransportBackend,
};

const USERS: usize = 5;
const CLASSES: usize = 3;

/// One shared keygen: chaos runs differ only in fault plans and votes.
fn keys() -> &'static SessionKeys {
    static KEYS: OnceLock<SessionKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(99);
        SessionKeys::generate(SessionConfig::test(USERS, CLASSES), &mut rng)
    })
}

/// A resilient engine with tiny noise, a short deadline and one retry.
fn engine(min_users: usize, plan: FaultPlan) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(min_users),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
    .with_fault_plan(plan)
}

fn onehot(k: usize) -> Vec<f64> {
    let mut v = vec![0.0; CLASSES];
    v[k] = 1.0;
    v
}

fn argmax_set(v: &[i64]) -> Vec<usize> {
    let max = *v.iter().max().unwrap();
    (0..v.len()).filter(|&i| v[i] == max).collect()
}

/// Tie-tolerant validity: the servers rank blindly, so any maximizer of
/// the surviving counts is a legal winner slot, and the threshold gate
/// is evaluated at whichever maximizer won. The outcome is valid iff it
/// is explainable by *some* maximizer, and the health record's realized
/// noise matches the surviving-share arithmetic exactly.
fn assert_outcome_valid(out: &SecureOutcome, sigma1: f64, sigma2: f64) {
    let w = &out.witness;
    let h = &out.health;
    assert!(h.survivors.iter().all(|u| h.intended_users.contains(u)));
    if let Some(nv) = &h.noisy_survivors {
        assert!(nv.iter().all(|u| h.survivors.contains(u)));
    }
    let n = h.intended_users.len() as f64;
    let expect1 = sigma1 * (h.survivors.len() as f64 / n).sqrt();
    assert!((h.realized_sigma1 - expect1).abs() < 1e-15, "σ₁ must reflect |U'|/|U|");
    match (&h.noisy_survivors, h.realized_sigma2) {
        (Some(nv), Some(s2)) => {
            let expect2 = sigma2 * (nv.len() as f64 / n).sqrt();
            assert!((s2 - expect2).abs() < 1e-15, "σ₂ must reflect |U''|/|U|");
        }
        (None, None) => {}
        other => panic!("step-6 survivors and realized σ₂ must agree: {other:?}"),
    }

    let winners = argmax_set(&w.counts_scaled);
    let gate: Vec<bool> = winners
        .iter()
        .map(|&i| w.counts_scaled[i] + w.z1_scaled[i] >= w.threshold_scaled)
        .collect();
    match out.label {
        None => {
            assert!(
                gate.iter().any(|&g| !g),
                "a rejection needs a maximizer below the gate: {w:?}"
            );
            assert_eq!(h.noisy_survivors, None, "rejected rounds never run step 6");
        }
        Some(l) => {
            assert!(gate.iter().any(|&g| g), "a release needs a maximizer above the gate: {w:?}");
            let noisy: Vec<i64> =
                w.noisy_counts_scaled.iter().zip(&w.z2_scaled).map(|(&c, &z)| c + z).collect();
            assert!(argmax_set(&noisy).contains(&l), "label {l} is not a noisy maximizer: {w:?}");
            assert!(h.noisy_survivors.is_some(), "a release implies step 6 ran");
        }
    }
}

/// A user crashed before step 2 is excluded from the whole round, the
/// threshold auto-rescales to the surviving offsets, and the round costs
/// more privacy budget than a clean one would.
#[test]
fn crash_before_upload_drops_the_user() {
    let plan = FaultPlan::new(1).crash(PartyId::User(3), Step::SecureSumVotes);
    let eng = engine(3, plan);
    let mut rng = StdRng::seed_from_u64(20);
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(1)).collect();
    let out = eng.run_instance(&votes, Meter::new(), &mut rng).unwrap();
    assert_outcome_valid(&out, 1e-6, 1e-6);
    assert_eq!(out.label, Some(1), "4 unanimous survivors clear the rescaled threshold");
    assert_eq!(out.health.survivors, vec![0, 1, 2, 4]);
    assert_eq!(out.health.dropouts, vec![(3, Step::SecureSumVotes)]);
    assert!(!out.health.is_clean());
    // Counts and threshold both cover exactly the surviving 4/5.
    assert_eq!(out.witness.counts_scaled[1], 4 * 65536);
    let full_t = scale_votes(0.6 * USERS as f64);
    assert!((out.witness.threshold_scaled - full_t * 4 / 5).abs() <= 1, "offset subset-sum");
    // Four surviving shares realize less noise than five: the round must
    // charge *more* ε than a clean round, never silently less.
    let clean = ConsensusConfig::paper_default(1e-6, 1e-6).epsilon(1, 1e-6);
    assert!(out.health.charged_rdp().to_epsilon(1e-6) > clean);
}

/// A user crashed between the two secure sums stays in the threshold
/// check but leaves the release: only σ₂ is degraded.
#[test]
fn crash_between_sums_recalibrates_sigma2_only() {
    let plan = FaultPlan::new(2).crash(PartyId::User(1), Step::SecureSumNoisy);
    let eng = engine(3, plan);
    let mut rng = StdRng::seed_from_u64(21);
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(2)).collect();
    let out = eng.run_instance(&votes, Meter::new(), &mut rng).unwrap();
    assert_outcome_valid(&out, 1e-6, 1e-6);
    assert_eq!(out.label, Some(2));
    assert_eq!(out.health.survivors, vec![0, 1, 2, 3, 4]);
    assert_eq!(out.health.noisy_survivors.as_deref(), Some(&[0, 2, 3, 4][..]));
    assert_eq!(out.health.dropouts, vec![(1, Step::SecureSumNoisy)]);
    assert_eq!(out.health.realized_sigma1, 1e-6, "step 2 saw every share");
    assert_eq!(out.witness.counts_scaled[2], 5 * 65536);
    assert_eq!(out.witness.noisy_counts_scaled[2], 4 * 65536);
}

/// Mass crash below the quorum: both servers abort with the same typed
/// error instead of hanging or releasing a 2-user "consensus".
#[test]
fn quorum_loss_is_a_typed_abort() {
    let plan = FaultPlan::new(3)
        .crash(PartyId::User(1), Step::SecureSumVotes)
        .crash(PartyId::User(2), Step::SecureSumVotes)
        .crash(PartyId::User(3), Step::SecureSumVotes);
    let eng = engine(3, plan);
    let mut rng = StdRng::seed_from_u64(22);
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(0)).collect();
    let err = eng.run_instance(&votes, Meter::new(), &mut rng).unwrap_err();
    assert!(
        matches!(
            err,
            SmcError::QuorumLost { step: Step::SecureSumVotes, survivors: 2, required: 3 }
        ),
        "expected a quorum abort, got {err}"
    );
}

/// Probabilistic uplink loss across seeds: every run ends in a valid
/// outcome or a typed abort — the sweep as a whole must both complete
/// rounds and observe real dropouts.
#[test]
fn lossy_uplink_sweep_never_hangs_or_lies() {
    let votes = vec![onehot(2), onehot(2), onehot(2), onehot(0), onehot(1)];
    let mut released = 0usize;
    let mut dropouts = 0usize;
    let mut aborts = 0usize;
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed).drop_messages(0.2).only_link(LinkKind::UserToServer);
        let eng = engine(1, plan);
        let meter = Meter::new();
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        match eng.run_instance(&votes, meter.clone(), &mut rng) {
            Ok(out) => {
                assert_outcome_valid(&out, 1e-6, 1e-6);
                dropouts += out.health.dropouts.len();
                released += usize::from(out.label.is_some());
            }
            Err(SmcError::QuorumLost { .. }) | Err(SmcError::Transport(_)) => aborts += 1,
            Err(other) => panic!("seed {seed}: untyped failure {other}"),
        }
        assert!(meter.fault_stats().drops_injected > 0, "seed {seed} injected nothing");
    }
    assert!(dropouts > 0, "a 20% lossy uplink must drop someone across 8 seeds");
    assert!(released + aborts < 8 || released > 0, "the sweep must complete some rounds");
}

/// Corrupted uploads are detected by the frame checksum and handled as
/// dropouts of the sender — never as garbage aggregated into the sums.
#[test]
fn corruption_detected_and_treated_as_dropout() {
    let votes: Vec<Vec<f64>> = (0..USERS).map(|u| onehot(u % 2)).collect();
    let mut detected = 0u64;
    for seed in 0..4u64 {
        let plan = FaultPlan::new(seed).corrupt_messages(0.25).only_link(LinkKind::UserToServer);
        let eng = engine(1, plan);
        let meter = Meter::new();
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        match eng.run_instance(&votes, meter.clone(), &mut rng) {
            Ok(out) => assert_outcome_valid(&out, 1e-6, 1e-6),
            Err(SmcError::QuorumLost { .. }) | Err(SmcError::Transport(_)) => {}
            Err(other) => panic!("seed {seed}: untyped failure {other}"),
        }
        detected += meter.fault_stats().corruptions_detected;
    }
    assert!(detected > 0, "25% corruption over 4 seeds must trip the checksum");
}

/// Duplicates are suppressed by sequence-number dedup: the round stays
/// byte-correct with a full surviving set.
#[test]
fn duplicates_are_suppressed_harmlessly() {
    let plan = FaultPlan::new(5).duplicate_messages(1.0);
    let eng = engine(2, plan);
    let meter = Meter::new();
    let mut rng = StdRng::seed_from_u64(23);
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(1)).collect();
    let out = eng.run_instance(&votes, meter.clone(), &mut rng).unwrap();
    assert_outcome_valid(&out, 1e-6, 1e-6);
    assert_eq!(out.label, Some(1));
    assert!(out.health.dropouts.is_empty(), "duplication must not cost anyone");
    assert_eq!(out.health.survivors, vec![0, 1, 2, 3, 4]);
    assert!(meter.fault_stats().duplicates_suppressed > 0);
}

/// Link delays within the retry budget slow the round down but must not
/// change its semantics; delays beyond it become ordinary dropouts.
#[test]
fn delayed_links_degrade_gracefully() {
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(0)).collect();
    for seed in 0..3u64 {
        let plan = FaultPlan::new(seed)
            .delay_messages(0.5, Duration::from_millis(10))
            .only_link(LinkKind::UserToServer);
        let eng = engine(1, plan);
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        match eng.run_instance(&votes, Meter::new(), &mut rng) {
            Ok(out) => assert_outcome_valid(&out, 1e-6, 1e-6),
            Err(SmcError::QuorumLost { .. }) | Err(SmcError::Transport(_)) => {}
            Err(other) => panic!("seed {seed}: untyped failure {other}"),
        }
    }
}

/// Batch runs carry the surviving roster forward: after a crash the next
/// rounds stop waiting for the dead user and recalibrate their noise
/// shares to the smaller roster — realized σ returns to full scale.
#[test]
fn batch_roster_shrinks_and_noise_recalibrates() {
    let plan = FaultPlan::new(6).crash(PartyId::User(2), Step::SecureSumVotes);
    let eng = engine(2, plan);
    let mut rng = StdRng::seed_from_u64(24);
    let instance: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(0)).collect();
    let instances = vec![instance.clone(), instance.clone(), instance];
    let outs = eng.run_batch(&instances, Meter::new(), &mut rng).unwrap();
    assert_eq!(outs.len(), 3);

    // Round 1: launched with everyone, loses user 2, noise degraded.
    assert_eq!(outs[0].health.intended_users, vec![0, 1, 2, 3, 4]);
    assert_eq!(outs[0].health.survivors, vec![0, 1, 3, 4]);
    assert_eq!(outs[0].health.dropouts, vec![(2, Step::SecureSumVotes)]);
    assert!(outs[0].health.realized_sigma1 < 1e-6);

    // Rounds 2-3: the dead user is off the roster; the 4 remaining users
    // draw shares calibrated for 4, so realized noise is back to σ.
    for out in &outs[1..] {
        assert_outcome_valid(out, 1e-6, 1e-6);
        assert_eq!(out.health.intended_users, vec![0, 1, 3, 4]);
        assert!(out.health.is_clean(), "no one left to lose: {:?}", out.health);
        assert_eq!(out.health.realized_sigma1, 1e-6);
        assert_eq!(out.health.realized_sigma2, Some(1e-6));
        assert_eq!(out.label, Some(0));
        assert_eq!(out.witness.threshold_scaled, scale_votes(0.6 * 4.0));
    }
}

/// A resilient engine at the given parallelism. The receive windows are
/// wider than `engine()`'s so that worker-pool scheduling jitter can
/// never turn a healthy link into a retry on one side of the comparison.
fn engine_par(min_users: usize, plan: FaultPlan, par: Parallelism) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone().with_parallelism(par),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(min_users),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(150), 1, 2.0))
    .with_fault_plan(plan)
}

/// The data-parallel engine under chaos: with per-item RNG streams split
/// deterministically, a 4-thread round must replay the sequential round
/// bit-for-bit — same label, same witness, same `RoundHealth` — under
/// every (deterministic) fault plan. Only plans whose injections do not
/// depend on wall-clock timing are swept; probabilistic delay plans
/// legitimately diverge in retry counts.
#[test]
fn parallel_rounds_replay_sequential_rounds_under_faults() {
    type PlanBuilder = fn() -> FaultPlan;
    let plans: Vec<(&str, PlanBuilder)> = vec![
        ("clean", || FaultPlan::new(11)),
        ("crash before upload", || {
            FaultPlan::new(12).crash(PartyId::User(3), Step::SecureSumVotes)
        }),
        ("crash between sums", || FaultPlan::new(13).crash(PartyId::User(1), Step::SecureSumNoisy)),
        ("duplicate everything", || FaultPlan::new(14).duplicate_messages(1.0)),
    ];
    let votes = vec![onehot(2), onehot(2), onehot(2), onehot(0), onehot(2)];
    for (name, plan) in &plans {
        let run = |par: Parallelism| {
            let eng = engine_par(3, plan(), par);
            let mut rng = StdRng::seed_from_u64(4000);
            eng.run_instance(&votes, Meter::new(), &mut rng).unwrap()
        };
        let seq = run(Parallelism::sequential());
        let par = run(Parallelism::new(4));
        assert_outcome_valid(&seq, 1e-6, 1e-6);
        assert_eq!(seq, par, "{name}: parallel outcome diverged from sequential");
    }

    // Quorum loss aborts identically on both paths.
    let lossy = || {
        FaultPlan::new(15)
            .crash(PartyId::User(1), Step::SecureSumVotes)
            .crash(PartyId::User(2), Step::SecureSumVotes)
            .crash(PartyId::User(3), Step::SecureSumVotes)
    };
    let abort = |par: Parallelism| {
        let eng = engine_par(3, lossy(), par);
        let mut rng = StdRng::seed_from_u64(4001);
        eng.run_instance(&votes, Meter::new(), &mut rng).unwrap_err().to_string()
    };
    assert_eq!(abort(Parallelism::sequential()), abort(Parallelism::new(4)));
}

/// The chaos engine rebased onto real loopback sockets: same keys and
/// fault semantics, with the in-proc mesh swapped for TCP links.
fn engine_tcp(min_users: usize, plan: FaultPlan) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(min_users),
    )
    .with_timeout(TimeoutPolicy::fast_local())
    .with_fault_plan(plan)
    .with_transport(TransportBackend::Tcp(TcpConfig::fast_local()))
}

/// The TCP backend is a drop-in for the in-proc mesh: under the same
/// host seed the full secure round over real sockets must produce a
/// consensus fingerprint bit-identical to the channel mesh's. Swept
/// over two seeds; replays, acks and heartbeats must never perturb the
/// per-(sender, step) FIFO order the pipeline depends on.
#[test]
fn tcp_backend_matches_inproc_fingerprint() {
    let votes = vec![onehot(2), onehot(2), onehot(2), onehot(0), onehot(2)];
    for seed in [60u64, 61] {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = engine(3, FaultPlan::new(9))
            .run_instance(&votes, Meter::new(), &mut rng)
            .expect("in-proc round completes");
        assert_outcome_valid(&base, 1e-6, 1e-6);

        let mut rng = StdRng::seed_from_u64(seed);
        let out = engine_tcp(3, FaultPlan::new(9))
            .run_instance(&votes, Meter::new(), &mut rng)
            .expect("tcp round completes");
        assert_outcome_valid(&out, 1e-6, 1e-6);
        assert_eq!(
            out.consensus_fingerprint(),
            base.consensus_fingerprint(),
            "seed {seed}: tcp fingerprint diverged from in-proc"
        );
    }
}

/// Socket-level degradation that never kills a connection: a one-shot
/// read stall on the server spine plus fragmented 3-byte writes on a
/// user uplink. Both must be absorbed inside the retry budget and the
/// round must still match the clean in-proc fingerprint.
#[test]
fn tcp_round_survives_stalls_and_fragmented_writes() {
    let votes: Vec<Vec<f64>> = (0..USERS).map(|_| onehot(1)).collect();
    let mut rng = StdRng::seed_from_u64(62);
    let base = engine(3, FaultPlan::new(10))
        .run_instance(&votes, Meter::new(), &mut rng)
        .expect("in-proc round completes");

    let plan = FaultPlan::new(10)
        .stall_connection(PartyId::Server1, PartyId::Server2, 1_000, Duration::from_millis(40))
        .partial_writes(PartyId::User(0), PartyId::Server1);
    let mut rng = StdRng::seed_from_u64(62);
    let out = engine_tcp(3, plan)
        .run_instance(&votes, Meter::new(), &mut rng)
        .expect("degraded tcp round completes");
    assert_outcome_valid(&out, 1e-6, 1e-6);
    assert_eq!(out.consensus_fingerprint(), base.consensus_fingerprint());
}
