//! Multi-session reactor: fault isolation, admission control, overload
//! shedding, and deadline eviction.
//!
//! The acceptance bar is *bit-identical isolation*: with dozens of
//! concurrent sessions — one crashed mid-round, one equivocating into an
//! audit conviction, one losing quorum — every unaffected session's
//! consensus fingerprint must equal the fingerprint of a solo
//! [`SecureEngine::run_round`] of the same round, and the reactor's RDP
//! ledger must hold exactly one charge per completed session.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use consensus_core::config::ConsensusConfig;
use consensus_core::reactor::{
    Reactor, ReactorConfig, RejectReason, SessionMachine, SessionResult,
};
use consensus_core::secure::{SecureEngine, SecureOutcome};
use dp::rdp::LinearRdp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{AuditPolicy, SessionConfig, SessionKeys, SmcError};
use transport::{FaultPlan, Meter, PartyId, SessionError, SessionFrame, Step, TimeoutPolicy, Wire};

const USERS: usize = 5;
const CLASSES: usize = 3;

/// One shared keygen: sessions differ only in fault plans and votes.
fn keys() -> &'static SessionKeys {
    static KEYS: OnceLock<SessionKeys> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(99);
        SessionKeys::generate(SessionConfig::test(USERS, CLASSES), &mut rng)
    })
}

/// A resilient engine with tiny noise, a short deadline and one retry —
/// identical construction for reactor sessions and solo comparators, so
/// fingerprints are comparable bit for bit.
fn engine(min_users: usize) -> SecureEngine {
    SecureEngine::with_keys(
        keys().clone(),
        ConsensusConfig::paper_default(1e-6, 1e-6).with_min_users(min_users),
    )
    .with_timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 1, 2.0))
}

fn onehot(k: usize) -> Vec<f64> {
    let mut v = vec![0.0; CLASSES];
    v[k] = 1.0;
    v
}

fn full_roster() -> Vec<usize> {
    (0..USERS).collect()
}

/// Clean-session vote pattern `i`: unanimous, class varies by session.
fn votes_for(i: usize) -> Vec<Vec<f64>> {
    vec![onehot(i % CLASSES); USERS]
}

/// The solo-run outcome of the round session `i` runs: a fresh,
/// identically-built engine and an identically-seeded RNG.
fn solo_outcome(i: usize) -> SecureOutcome {
    let mut rng = StdRng::seed_from_u64(1000 + i as u64);
    engine(3)
        .run_round(&votes_for(i), &full_roster(), Meter::new(), &mut rng)
        .expect("solo run of a clean round")
}

/// Ingests every frame through the wire codec, interleaved round-robin
/// across sessions — the arrival order a multiplexed link produces.
fn ingest_interleaved(reactor: &mut Reactor, frame_sets: Vec<Vec<SessionFrame>>) {
    let max = frame_sets.iter().map(Vec::len).max().unwrap_or(0);
    for slot in 0..max {
        for frames in &frame_sets {
            if let Some(frame) = frames.get(slot) {
                reactor.ingest_encoded(frame.to_bytes()).expect("admitted session");
            }
        }
    }
}

/// The acceptance test: ≥ 32 concurrent sessions with a killed, an
/// equivocating, and a quorum-losing session in the mix. Every clean
/// session's fingerprint must be bit-identical to its solo run, and the
/// ledger must hold exactly one charge per completed session.
#[test]
fn chaos_sessions_are_bit_identically_isolated() {
    const CLEAN: usize = 29;
    let meter = Meter::new();
    let mut reactor = Reactor::new(
        ReactorConfig { max_sessions: 64, deadline: Duration::from_secs(120) },
        Arc::clone(&meter),
    )
    .with_budget(1e18, 1e-6, LinearRdp::from_coeff(1.0));

    let mut frame_sets = Vec::new();

    // 29 clean sessions, ids 0..29.
    for i in 0..CLEAN {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let (machine, frames) = SessionMachine::new(
            i as u64,
            Arc::new(engine(3)),
            &votes_for(i),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare clean session");
        assert_eq!(reactor.admit(machine).expect("admit clean session"), i as u64);
        frame_sets.push(frames);
    }

    // Session 100: Server1 crashes mid-round (at the first
    // Blind-and-Permute), so its peer times out — a transport failure
    // confined to this session.
    {
        let eng = engine(3)
            .with_fault_plan(FaultPlan::new(1).crash(PartyId::Server1, Step::BlindPermute1));
        let mut rng = StdRng::seed_from_u64(77);
        let (machine, frames) = SessionMachine::new(
            100,
            Arc::new(eng),
            &votes_for(1),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare crash session");
        reactor.admit(machine).expect("admit crash session");
        frame_sets.push(frames);
    }

    // Session 101: Server1 equivocates at the first Blind-and-Permute
    // under a strict audit policy — convicted, not silently tolerated.
    {
        let eng = engine(3)
            .with_fault_plan(FaultPlan::new(2).equivocate(PartyId::Server1, Step::BlindPermute1))
            .with_audit(AuditPolicy::strict());
        let mut rng = StdRng::seed_from_u64(78);
        let (machine, frames) = SessionMachine::new(
            101,
            Arc::new(eng),
            &votes_for(1),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare equivocating session");
        reactor.admit(machine).expect("admit equivocating session");
        frame_sets.push(frames);
    }

    // Session 102: three of five users crash before uploading, leaving
    // 2 < 3 survivors — the typed quorum-lost abort.
    {
        let plan = FaultPlan::new(3)
            .crash(PartyId::User(0), Step::SecureSumVotes)
            .crash(PartyId::User(1), Step::SecureSumVotes)
            .crash(PartyId::User(2), Step::SecureSumVotes);
        let eng = engine(3).with_fault_plan(plan);
        let mut rng = StdRng::seed_from_u64(79);
        let (machine, frames) = SessionMachine::new(
            102,
            Arc::new(eng),
            &votes_for(2),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare quorum-loss session");
        reactor.admit(machine).expect("admit quorum-loss session");
        frame_sets.push(frames);
    }

    assert_eq!(reactor.live_sessions(), CLEAN + 3);
    ingest_interleaved(&mut reactor, frame_sets);
    let polls = reactor.run_until_idle();
    assert!(polls > 0);
    assert_eq!(reactor.live_sessions(), 0, "every session must terminate");

    // The three faulty sessions fail with their own typed errors.
    match reactor.take_result(100) {
        Some(SessionResult::Failed(SmcError::Transport(_))) => {}
        other => panic!("crashed session must fail with a transport error, got {other:?}"),
    }
    match reactor.take_result(101) {
        Some(SessionResult::Failed(SmcError::AuditFailure { party, .. })) => {
            assert_eq!(party, PartyId::Server1, "audit must convict the equivocator");
        }
        other => panic!("equivocating session must be convicted, got {other:?}"),
    }
    match reactor.take_result(102) {
        Some(SessionResult::Failed(SmcError::QuorumLost { survivors, required, .. })) => {
            assert_eq!((survivors, required), (2, 3));
        }
        other => panic!("quorum-loss session must abort typed, got {other:?}"),
    }

    // Every clean session: Done, with a fingerprint bit-identical to the
    // solo run of the same round.
    let mut charged_total = LinearRdp::zero();
    for i in 0..CLEAN {
        let solo = solo_outcome(i);
        match reactor.take_result(i as u64) {
            Some(SessionResult::Done(out)) => {
                assert_eq!(
                    out.consensus_fingerprint(),
                    solo.consensus_fingerprint(),
                    "session {i} diverged from its solo run"
                );
                charged_total = charged_total.compose(&out.health.charged_rdp());
            }
            other => panic!("clean session {i} must complete, got {other:?}"),
        }
    }

    // Exactly-once RDP accounting: one charge per completed session, and
    // the composed total matches the outcomes' own costs.
    let ledger = reactor.ledger().expect("budget attached");
    assert_eq!(ledger.charges(), CLEAN, "one charge per Done session, none for failures");
    let total = ledger.total().expect("clean sessions charged");
    assert!((total.coeff() - charged_total.coeff()).abs() <= 1e-9 * charged_total.coeff().abs());

    // Scheduler telemetry: all admissions counted, no evictions, one
    // Done-latency sample per completed session.
    let stats = meter.fault_stats();
    assert_eq!(stats.sessions_admitted, (CLEAN + 3) as u64);
    assert_eq!(stats.sessions_evicted, 0);
    assert_eq!(reactor.latencies().len(), CLEAN);
}

/// CI smoke: 16 concurrent clean sessions, two seeds, every session
/// releases the unanimous label.
#[test]
fn sixteen_session_smoke() {
    for seed in [11u64, 22] {
        let meter = Meter::new();
        let mut reactor = Reactor::new(
            ReactorConfig { max_sessions: 16, deadline: Duration::from_secs(120) },
            Arc::clone(&meter),
        );
        let mut frame_sets = Vec::new();
        for i in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(seed * 1000 + i);
            let (machine, frames) = SessionMachine::new(
                i,
                Arc::new(engine(3)),
                &vec![onehot(1); USERS],
                &full_roster(),
                Arc::clone(&meter),
                &mut rng,
            )
            .expect("prepare smoke session");
            reactor.admit(machine).expect("admit smoke session");
            frame_sets.push(frames);
        }
        ingest_interleaved(&mut reactor, frame_sets);
        reactor.run_until_idle();
        for i in 0..16u64 {
            match reactor.take_result(i) {
                Some(SessionResult::Done(out)) => {
                    assert_eq!(out.label, Some(1), "unanimous round must release class 1");
                }
                other => panic!("smoke session {i} (seed {seed}) must complete, got {other:?}"),
            }
        }
        assert_eq!(meter.fault_stats().sessions_admitted, 16);
    }
}

/// A session whose client stops sending mid-upload is evicted by the
/// watchdog — and its neighbors' fingerprints are untouched.
#[test]
fn stalled_session_is_evicted_without_touching_neighbors() {
    let meter = Meter::new();
    let mut reactor = Reactor::new(
        ReactorConfig { max_sessions: 8, deadline: Duration::from_millis(300) },
        Arc::clone(&meter),
    );
    let mut frame_sets = Vec::new();
    for i in 0..2usize {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let (machine, frames) = SessionMachine::new(
            i as u64,
            Arc::new(engine(3)),
            &votes_for(i),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare neighbor session");
        reactor.admit(machine).expect("admit neighbor session");
        frame_sets.push(frames);
    }
    // Session 50 delivers only half its upload frames, then goes silent.
    let mut rng = StdRng::seed_from_u64(50);
    let (machine, frames) = SessionMachine::new(
        50,
        Arc::new(engine(3)),
        &votes_for(0),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare stalling session");
    reactor.admit(machine).expect("admit stalling session");
    frame_sets.push(frames.into_iter().take(USERS * 3).collect());

    ingest_interleaved(&mut reactor, frame_sets);
    reactor.run_until_idle();

    match reactor.take_result(50) {
        Some(SessionResult::Evicted { stalled_for }) => {
            assert!(stalled_for >= Duration::from_millis(300));
        }
        other => panic!("stalled session must be evicted, got {other:?}"),
    }
    for i in 0..2usize {
        let solo = solo_outcome(i);
        match reactor.take_result(i as u64) {
            Some(SessionResult::Done(out)) => assert_eq!(
                out.consensus_fingerprint(),
                solo.consensus_fingerprint(),
                "neighbor {i} must be untouched by the eviction"
            ),
            other => panic!("neighbor session {i} must complete, got {other:?}"),
        }
    }
    let stats = meter.fault_stats();
    assert_eq!(stats.sessions_evicted, 1);
    assert_eq!(stats.sessions_admitted, 3);
    // Frames for the evicted session now fail typed at the demux.
    let err = reactor
        .ingest(SessionFrame {
            session: 50,
            from: PartyId::User(0),
            to: PartyId::Server1,
            step: Step::SecureSumVotes,
            seq: 999,
            payload: bytes::Bytes::new(),
        })
        .unwrap_err();
    assert_eq!(err, SessionError::UnknownSession(50));
}

/// Overload shedding: admissions past the session cap are refused with a
/// typed error and counted, and capacity frees once sessions finish.
#[test]
fn admission_sheds_load_past_capacity() {
    let meter = Meter::new();
    let mut reactor = Reactor::new(
        ReactorConfig { max_sessions: 2, deadline: Duration::from_secs(120) },
        Arc::clone(&meter),
    );
    let mut frame_sets = Vec::new();
    for i in 0..2u64 {
        let mut rng = StdRng::seed_from_u64(1000 + i);
        let (machine, frames) = SessionMachine::new(
            i,
            Arc::new(engine(3)),
            &votes_for(i as usize),
            &full_roster(),
            Arc::clone(&meter),
            &mut rng,
        )
        .expect("prepare session");
        reactor.admit(machine).expect("admit under cap");
        frame_sets.push(frames);
    }
    // Third admission: shed.
    let mut rng = StdRng::seed_from_u64(1002);
    let (overflow, overflow_frames) = SessionMachine::new(
        2,
        Arc::new(engine(3)),
        &votes_for(2),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare overflow session");
    let rejected = reactor.admit(overflow).unwrap_err();
    assert_eq!(rejected.session, 2);
    assert_eq!(rejected.reason, RejectReason::CapacityExhausted { limit: 2 });
    // Its frames bounce typed too: the session was never registered.
    assert_eq!(
        reactor.ingest(overflow_frames[0].clone()).unwrap_err(),
        SessionError::UnknownSession(2)
    );

    ingest_interleaved(&mut reactor, frame_sets);
    reactor.run_until_idle();

    // Capacity freed: a fresh session admits and completes.
    let mut rng = StdRng::seed_from_u64(1003);
    let (machine, frames) = SessionMachine::new(
        3,
        Arc::new(engine(3)),
        &votes_for(0),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare post-drain session");
    reactor.admit(machine).expect("admit after drain");
    ingest_interleaved(&mut reactor, vec![frames]);
    reactor.run_until_idle();
    assert!(matches!(reactor.take_result(3), Some(SessionResult::Done(_))));

    let stats = meter.fault_stats();
    assert_eq!(stats.sessions_admitted, 3);
    assert_eq!(stats.sessions_rejected, 1);
}

/// Budget admission reserves the worst case of every in-flight session:
/// the second concurrent admission is refused even though nothing has
/// been charged yet, and a duplicate session id is refused typed.
#[test]
fn admission_enforces_budget_and_unique_ids() {
    let worst = LinearRdp::from_coeff(0.1);
    let delta = 1e-6;
    // Fits one reserved session, not two.
    let budget = (worst.to_epsilon(delta) + worst.repeat(2).to_epsilon(delta)) / 2.0;
    let meter = Meter::new();
    let mut reactor = Reactor::new(
        ReactorConfig { max_sessions: 8, deadline: Duration::from_secs(120) },
        Arc::clone(&meter),
    )
    .with_budget(budget, delta, worst);

    let mut rng = StdRng::seed_from_u64(1);
    let (first, _) = SessionMachine::new(
        10,
        Arc::new(engine(3)),
        &votes_for(0),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare first");
    reactor.admit(first).expect("first session fits the budget");

    let (second, _) = SessionMachine::new(
        11,
        Arc::new(engine(3)),
        &votes_for(1),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare second");
    match reactor.admit(second).unwrap_err().reason {
        RejectReason::BudgetExhausted { remaining_epsilon } => {
            assert!(remaining_epsilon < budget);
        }
        other => panic!("expected a budget rejection, got {other:?}"),
    }

    let (dup, _) = SessionMachine::new(
        10,
        Arc::new(engine(3)),
        &votes_for(2),
        &full_roster(),
        Arc::clone(&meter),
        &mut rng,
    )
    .expect("prepare duplicate");
    assert_eq!(reactor.admit(dup).unwrap_err().reason, RejectReason::DuplicateSession);

    let stats = meter.fault_stats();
    assert_eq!(stats.sessions_admitted, 1);
    assert_eq!(stats.sessions_rejected, 2);
}

/// Frames for sessions the reactor never admitted surface as typed
/// errors, both pre-decoded and raw off the wire.
#[test]
fn unknown_and_malformed_frames_are_typed_errors() {
    let meter = Meter::new();
    let mut reactor = Reactor::new(ReactorConfig::default(), meter);
    let frame = SessionFrame {
        session: 424242,
        from: PartyId::User(0),
        to: PartyId::Server1,
        step: Step::SecureSumVotes,
        seq: 0,
        payload: bytes::Bytes::new(),
    };
    assert_eq!(reactor.ingest(frame.clone()).unwrap_err(), SessionError::UnknownSession(424242));
    assert_eq!(
        reactor.ingest_encoded(frame.to_bytes()).unwrap_err(),
        SessionError::UnknownSession(424242)
    );
    assert!(matches!(
        reactor.ingest_encoded(bytes::Bytes::from(b"\xFFgarbage".to_vec())).unwrap_err(),
        SessionError::Codec(_)
    ));
}
