//! Offline functional shim for the `criterion 0.5` surface this
//! workspace's benches use. Runs each closure once (smoke execution, no
//! statistics) so `cargo bench` compiles and exercises code offline.

use std::fmt::Display;
use std::hint;

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Batch sizing hint (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs the routine once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }

    /// Runs setup then the routine once.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
    }

    /// Runs setup then the routine (by reference) once.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        black_box(routine(&mut input));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut routine: R) {
        eprintln!("bench {}/{} (shim: single run)", self.name, id);
        routine(&mut Bencher { _private: () });
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) {
        eprintln!("bench {}/{} (shim: single run)", self.name, id);
        routine(&mut Bencher { _private: () }, input);
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        eprintln!("bench {} (shim: single run)", id);
        routine(&mut Bencher { _private: () });
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )*
        }
    };
}

/// Declares the benchmark main function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}
