//! Offline functional shim for the `serde 1.x` surface this workspace
//! uses: the core traits, a string-capable `Serializer`/`Deserializer`
//! model, and the `de::value` helpers the bigint tests exercise.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt::{self, Display};

/// Serialization backends.
pub mod ser {
    use super::*;

    /// Serialization error contract.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// The subset of serde's `Serializer` this workspace calls.
    pub trait Serializer: Sized {
        /// Success value.
        type Ok;
        /// Error value.
        type Error: Error;

        /// Serializes a string.
        ///
        /// # Errors
        ///
        /// Backend-defined.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

        /// Serializes a u64.
        ///
        /// # Errors
        ///
        /// Backend-defined.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_str(&v.to_string())
        }
    }
}

/// Deserialization backends.
pub mod de {
    use super::*;

    /// Deserialization error contract.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Driver of a [`Deserializer`]'s output.
    pub trait Visitor<'de>: Sized {
        /// Produced value.
        type Value;

        /// Describes what the visitor expects (for error messages).
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits a borrowed string.
        ///
        /// # Errors
        ///
        /// Defaults to a type-mismatch error.
        fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
            Err(E::custom(Expected(self)))
        }

        /// Visits a u64.
        ///
        /// # Errors
        ///
        /// Defaults to a type-mismatch error.
        fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
            Err(E::custom(Expected(self)))
        }

        /// Visits an i64.
        ///
        /// # Errors
        ///
        /// Defaults to a type-mismatch error.
        fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
            Err(E::custom(Expected(self)))
        }
    }

    struct Expected<V>(V);

    impl<'de, V: Visitor<'de>> Display for Expected<V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "invalid type, expected ")?;
            self.0.expecting(f)
        }
    }

    /// The subset of serde's `Deserializer` this workspace calls.
    pub trait Deserializer<'de>: Sized {
        /// Error value.
        type Error: Error;

        /// Hands the backend's natural representation to `visitor`.
        ///
        /// # Errors
        ///
        /// Backend-defined.
        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    }

    /// Conversion into a ready-made deserializer.
    pub trait IntoDeserializer<'de, E: Error = value::Error> {
        /// The deserializer produced.
        type Deserializer: Deserializer<'de, Error = E>;
        /// Converts self.
        fn into_deserializer(self) -> Self::Deserializer;
    }

    /// Ready-made in-memory deserializers.
    pub mod value {
        use super::*;
        use std::marker::PhantomData;

        /// String-message error.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error {
            msg: String,
        }

        impl Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.msg)
            }
        }

        impl std::error::Error for Error {}

        impl super::Error for Error {
            fn custom<T: Display>(msg: T) -> Self {
                Error { msg: msg.to_string() }
            }
        }

        /// Deserializer over a borrowed string.
        pub struct StrDeserializer<'a, E> {
            value: &'a str,
            marker: PhantomData<E>,
        }

        impl<'a, E> StrDeserializer<'a, E> {
            /// Wraps a string slice.
            pub fn new(value: &'a str) -> Self {
                StrDeserializer { value, marker: PhantomData }
            }
        }

        impl<'de, 'a, E: super::Error> Deserializer<'de> for StrDeserializer<'a, E> {
            type Error = E;
            fn deserialize_any<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Self::Error> {
                visitor.visit_str(self.value)
            }
        }

        impl<'de, 'a, E: super::Error> IntoDeserializer<'de, E> for &'a str {
            type Deserializer = StrDeserializer<'a, E>;
            fn into_deserializer(self) -> Self::Deserializer {
                StrDeserializer::new(self)
            }
        }
    }
}

pub use de::{Deserializer, IntoDeserializer};
pub use ser::Serializer;

/// A type serializable through any [`Serializer`].
pub trait SerializeTrait {
    /// Serializes self.
    ///
    /// # Errors
    ///
    /// Backend-defined.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type deserializable through any [`Deserializer`].
pub trait DeserializeTrait<'de>: Sized {
    /// Deserializes a value.
    ///
    /// # Errors
    ///
    /// Backend-defined.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// The derive macros and the traits share names in serde; in this shim the
// macro names come from `serde_derive` (macro namespace) and these trait
// aliases occupy the type namespace under the same names.
pub use DeserializeTrait as Deserialize;
pub use SerializeTrait as Serialize;
