//! Offline shim: `#[derive(Serialize, Deserialize)]` that expands to
//! nothing. The workspace derives these traits for config/metrics types
//! but never serializes them at runtime, so empty impl-free expansion is
//! sufficient offline.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
