//! Offline functional shim for the `parking_lot 0.12` surface used by
//! this workspace (`Mutex` without lock poisoning), backed by std.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock that ignores poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
