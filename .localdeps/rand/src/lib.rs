//! Offline functional shim for the `rand 0.8` API surface used by this
//! workspace. Deterministic SplitMix64/xoshiro-style generator; uniform
//! sampling is statistically reasonable but NOT the upstream stream —
//! seeded tests may observe different draws than with real `rand`.

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values producible from raw bits (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait FromBits {
    /// Draws one value.
    fn draw_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_bits_int {
    ($($t:ty),*) => {$(
        impl FromBits for $t {
            fn draw_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut wide: u128 = rng.next_u64() as u128;
                if std::mem::size_of::<$t>() > 8 {
                    wide |= (rng.next_u64() as u128) << 64;
                }
                wide as $t
            }
        }
    )*};
}
from_bits_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl FromBits for bool {
    fn draw_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromBits for f64 {
    fn draw_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FromBits for f32 {
    fn draw_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A range usable with [`Rng::gen_range`] producing `T` (generic over
/// the output so integer-literal ranges infer from the use site, like
/// upstream `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let draw = <$u>::draw_from(rng) % span;
                (self.start as $u).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span == <$u>::MAX {
                    return <$u>::draw_from(rng) as $t;
                }
                let draw = <$u>::draw_from(rng) % (span + 1);
                (start as $u).wrapping_add(draw) as $t
            }
        }
    )*};
}
sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t>::draw_from(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = <$t>::draw_from(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// User-facing convenience methods (auto-implemented for every RngCore).
pub trait Rng: RngCore {
    /// Draws a value of any primitive type.
    fn gen<T: FromBits>(&mut self) -> T {
        T::draw_from(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw_from(self) < p
    }

    /// Fills a byte slice (mirror of `RngCore::fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy (shim: time-derived).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators.
pub mod rngs {
    use super::*;

    /// Deterministic 64-bit generator (SplitMix64 core; not the upstream
    /// ChaCha stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x5851f42d4c957f2d }
        }
    }

    /// Handle to a thread-local generator.
    #[derive(Debug, Clone)]
    pub struct ThreadRng;

    thread_local! {
        pub(crate) static THREAD_RNG: RefCell<StdRng> = RefCell::new(StdRng::from_entropy());
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }
}

/// A handle to a thread-local generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// Upstream compatibility alias: `rand::random()`.
pub fn random<T: FromBits>() -> T {
    thread_rng().gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[a.gen_range(0..4usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        for _ in 0..100 {
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let x = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = a.gen_range(0..=3u32);
            assert!(i <= 3);
        }
    }
}
