//! Offline functional shim for the `bytes 1.x` API surface used by this
//! workspace: `Bytes` (cheap-clone immutable buffer), `BytesMut`
//! (growable builder) and the `Buf`/`BufMut` trait methods the wire codec
//! calls.

use std::sync::Arc;

/// Read-side cursor methods.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes into `dst` (must fit).
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advances the cursor.
    fn advance(&mut self, n: usize);
    /// Peeks the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Pops one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Pops a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Pops a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Pops a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Pops a little-endian i128.
    fn get_i128_le(&mut self) -> i128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        i128::from_le_bytes(b)
    }

    /// Pops a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

/// Write-side appender methods.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian i128.
    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable, cheaply clonable byte buffer with a consuming cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length of the unconsumed view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the current view.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// A builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(42);
        b.put_i64_le(-42);
        b.put_i128_le(-(1i128 << 100));
        b.put_f64_le(1.5);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_i128_le(), -(1i128 << 100));
        assert_eq!(r.get_f64_le(), 1.5);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2, 3]);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&*s, &[2, 3]);
        assert_eq!(b.len(), 4);
    }
}
