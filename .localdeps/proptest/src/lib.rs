//! Offline functional shim for the `proptest 1.x` surface used by this
//! workspace. Each `proptest!` test runs a fixed number of cases with a
//! deterministic generator — weaker shrinking-free checking than real
//! proptest, but it executes the same properties.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Cases per property (real proptest default is 256; kept smaller because
/// several properties run Paillier/DGK keygen per case).
pub const CASES: u32 = 24;

/// Sentinel message distinguishing `prop_assume!` rejection from failure.
pub const ASSUME_REJECTED: &str = "__proptest_shim_assume_rejected__";

/// A source of sampled values.
pub trait Strategy {
    /// Sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects sampled values failing `pred` (resamples, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Uniformly permutes sampled vectors (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence);
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Output of [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn sample(&self, rng: &mut StdRng) -> Vec<T> {
        let mut v = self.inner.sample(rng);
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

/// One of several same-valued strategies, chosen uniformly per sample —
/// the runtime half of [`prop_oneof!`]. Unlike real proptest the shim
/// ignores weights (none of the workspace properties use them).
pub struct OneOf<V> {
    options: Vec<Box<dyn Fn(&mut StdRng) -> V>>,
}

impl<V> OneOf<V> {
    /// Builds from the boxed samplers [`prop_oneof!`] collects.
    pub fn new(options: Vec<Box<dyn Fn(&mut StdRng) -> V>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        (self.options[i])(rng)
    }
}

/// Chooses one of the given strategies uniformly per sampled case. All
/// branches must share one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut rand::rngs::StdRng) -> _>,
        > = ::std::vec::Vec::new();
        $(
            let __s = $strat;
            __options.push(::std::boxed::Box::new(
                move |__rng: &mut rand::rngs::StdRng| $crate::Strategy::sample(&__s, __rng),
            ));
        )+
        $crate::OneOf::new(__options)
    }};
}

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(element)` otherwise (real
    /// proptest's default 1-in-4 `None` weight).
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy { inner: element }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy.
pub trait ArbitraryShim: Sized {
    /// Draws an arbitrary value, biased toward edge cases.
    fn arbitrary(rng: &mut StdRng, case: u64) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryShim for $t {
            fn arbitrary(rng: &mut StdRng, case: u64) -> Self {
                // First samples hit the classic edge cases, then random.
                match case {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.gen(),
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl ArbitraryShim for bool {
    fn arbitrary(rng: &mut StdRng, _case: u64) -> Self {
        rng.gen()
    }
}

impl ArbitraryShim for f64 {
    fn arbitrary(rng: &mut StdRng, case: u64) -> Self {
        match case {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => rng.gen_range(-1e9..1e9),
        }
    }
}

/// `any::<T>()` strategy.
pub struct Any<T> {
    case: std::cell::Cell<u64>,
    marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryShim> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let case = self.case.get();
        self.case.set(case + 1);
        T::arbitrary(rng, case)
    }
}

/// The default strategy for `T`.
pub fn any<T: ArbitraryShim>() -> Any<T> {
    Any { case: std::cell::Cell::new(0), marker: std::marker::PhantomData }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_inclusive_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
range_from_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A size specifier for [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Builds a vector strategy.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

/// Runner configuration (accepted, largely ignored by the shim).
#[derive(Debug, Clone, Default)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Sets the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test seed derived from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines property tests (shim: fixed-case loop, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($( $(#[$attr:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let mut __shim_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                $(let $arg = &($strat);)*
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample($arg, &mut __shim_rng);)*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        Ok(()) => {}
                        Err(e) if e == $crate::ASSUME_REJECTED => continue,
                        Err(e) => panic!("property '{}' failed on case {}: {}", stringify!($name), __case, e),
                    }
                }
            }
        )*
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a), stringify!($b), left
            ));
        }
    }};
}

/// Skips cases whose inputs fail a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_REJECTED.to_string());
        }
    };
}

/// Everything a property test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}
