//! Offline functional shim for the `crossbeam 0.8` channel surface used
//! by this workspace, backed by `std::sync::mpsc`.

/// MPSC channels with timeout-aware receive.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half (clonable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the window.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// `Timeout` if the window elapsed, `Disconnected` if all senders
        /// are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// `Empty` when no message is ready, `Disconnected` when all
        /// senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_timeout_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }
}
