//! Offline functional shim for the `crossbeam 0.8` channel surface used
//! by this workspace, backed by `std::sync::mpsc`.

/// MPSC channels (bounded and unbounded) with timeout-aware receive.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// The two `std::sync::mpsc` sender flavors behind one surface.
    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half (clonable).
    pub struct Sender<T> {
        inner: Flavor<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently at capacity.
        Full(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the window.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                Flavor::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Non-blocking enqueue.
        ///
        /// # Errors
        ///
        /// `Full` when a bounded channel is at capacity, `Disconnected`
        /// when the receiver was dropped. Unbounded channels never report
        /// `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
                }
                Flavor::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// `Timeout` if the window elapsed, `Disconnected` if all senders
        /// are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// `Empty` when no message is ready, `Disconnected` when all
        /// senders are gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: Flavor::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// Creates a bounded channel holding at most `cap` queued messages;
    /// [`Sender::send`] blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: Flavor::Bounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_timeout_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1u32).unwrap();
        tx.try_send(2u32).unwrap();
        assert_eq!(tx.try_send(3u32), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3u32).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4u32), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Blocks until the consumer below makes room.
                tx.send(2u32).unwrap();
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
    }
}
