//! Property-based tests for the SMC building blocks: permutation algebra,
//! share-domain arithmetic, and the comparison encoding.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::{Permutation, ShareDomain};

proptest! {
    #[test]
    fn permutation_inverse_roundtrips(seed in any::<u64>(), k in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(k, &mut rng);
        let xs: Vec<usize> = (0..k).collect();
        prop_assert_eq!(p.inverse().apply(&p.apply(&xs)), xs.clone());
        prop_assert_eq!(p.apply(&p.inverse().apply(&xs)), xs);
    }

    #[test]
    fn permutation_composition_associates(seed in any::<u64>(), k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Permutation::random(k, &mut rng);
        let b = Permutation::random(k, &mut rng);
        let c = Permutation::random(k, &mut rng);
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn permutation_apply_index_tracks_elements(seed in any::<u64>(), k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(k, &mut rng);
        let xs: Vec<usize> = (100..100 + k).collect();
        let ys = p.apply(&xs);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(ys[p.apply_index(i)], x);
        }
    }

    #[test]
    fn double_permutation_is_uniformly_composable(seed in any::<u64>(), k in 2usize..8, label in 0usize..8) {
        // The protocol's core permutation identity: the winner slot under
        // π = π1∘π2 is found by composing, never by applying twice.
        prop_assume!(label < k);
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = Permutation::random(k, &mut rng);
        let p2 = Permutation::random(k, &mut rng);
        let composed = p1.compose(&p2);
        let xs: Vec<usize> = (0..k).collect();
        prop_assert_eq!(composed.apply(&xs), p1.apply(&p2.apply(&xs)));
        let slot = composed.apply_index(label);
        prop_assert_eq!(composed.apply(&xs)[slot], label);
    }

    #[test]
    fn shares_always_reconstruct(value in -(1i128 << 40)..(1i128 << 40), seed in any::<u64>()) {
        let domain = ShareDomain::paper();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = domain.split(value, &mut rng);
        prop_assert_eq!(a + b, value);
        prop_assert!(a.abs() <= 1 << domain.share_bits);
    }

    #[test]
    fn compare_encoding_is_monotone(x in -(1i128 << 24)..(1i128 << 24), y in -(1i128 << 24)..(1i128 << 24)) {
        let domain = ShareDomain::test();
        let ex = domain.encode_compare(x).unwrap();
        let ey = domain.encode_compare(y).unwrap();
        prop_assert_eq!(x >= y, ex >= ey);
        prop_assert_eq!(domain.decode_compare(ex), x);
    }

    #[test]
    fn eqn7_transform_preserves_comparisons(
        a_i in -(1i128 << 20)..(1i128 << 20),
        a_j in -(1i128 << 20)..(1i128 << 20),
        b_i in -(1i128 << 20)..(1i128 << 20),
        b_j in -(1i128 << 20)..(1i128 << 20),
        bias in 0i128..(1i128 << 20),
    ) {
        // Eqn. 7 with a common scalar bias r on every masked entry:
        // c_i ≥ c_j ⟺ (ã_i − ã_j) ≥ (b̃_j − b̃_i).
        let c_i = a_i + b_i;
        let c_j = a_j + b_j;
        let lhs = (a_i + bias) - (a_j + bias);
        let rhs = (b_j + bias) - (b_i + bias);
        prop_assert_eq!(c_i >= c_j, lhs >= rhs);
    }

    #[test]
    fn eqn6_transform_preserves_threshold(
        a in -(1i128 << 20)..(1i128 << 20),
        b in -(1i128 << 20)..(1i128 << 20),
        t in 0i128..(1i128 << 20),
        noise in -(1i128 << 16)..(1i128 << 16),
        bias in 0i128..(1i128 << 20),
    ) {
        // Eqn. 6: c + z ≥ T ⟺ (a − T/2 + z_a + r) ≥ (T/2 − b − z_b + r)
        // with z = z_a + z_b and exact integer threshold halves.
        let t_half_a = t / 2;
        let t_half_b = t - t_half_a;
        let z_a = noise / 2;
        let z_b = noise - z_a;
        let lhs = a - t_half_a + z_a + bias;
        let rhs = t_half_b - b - z_b + bias;
        prop_assert_eq!(a + b + noise >= t, lhs >= rhs);
    }
}
