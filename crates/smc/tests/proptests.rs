//! Property-based tests for the SMC building blocks: permutation algebra,
//! share-domain arithmetic, the comparison encoding, and thread-count
//! invariance of the data-parallel protocol loops.

use paillier::{Ciphertext, Keypair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::audit::{commit_seed, fnv1a, fnv1a_start};
use smc::blind_permute::{server1_blind_permute, server2_blind_permute, BlindPermuteOutput};
use smc::secure_sum::{
    aggregate_user_vectors, aggregate_user_vectors_sharded, send_encrypted_vector,
};
use smc::shard::intersect_sorted;
use smc::{
    AuditTap, Parallelism, Permutation, SessionConfig, SessionKeys, ShardConfig, ShardPlan,
    ShareDomain,
};
use transport::{Network, PartyId, Step};

proptest! {
    #[test]
    fn permutation_inverse_roundtrips(seed in any::<u64>(), k in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(k, &mut rng);
        let xs: Vec<usize> = (0..k).collect();
        prop_assert_eq!(p.inverse().apply(&p.apply(&xs)), xs.clone());
        prop_assert_eq!(p.apply(&p.inverse().apply(&xs)), xs);
    }

    #[test]
    fn permutation_composition_associates(seed in any::<u64>(), k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Permutation::random(k, &mut rng);
        let b = Permutation::random(k, &mut rng);
        let c = Permutation::random(k, &mut rng);
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    #[test]
    fn permutation_apply_index_tracks_elements(seed in any::<u64>(), k in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(k, &mut rng);
        let xs: Vec<usize> = (100..100 + k).collect();
        let ys = p.apply(&xs);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(ys[p.apply_index(i)], x);
        }
    }

    #[test]
    fn double_permutation_is_uniformly_composable(seed in any::<u64>(), k in 2usize..8, label in 0usize..8) {
        // The protocol's core permutation identity: the winner slot under
        // π = π1∘π2 is found by composing, never by applying twice.
        prop_assume!(label < k);
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = Permutation::random(k, &mut rng);
        let p2 = Permutation::random(k, &mut rng);
        let composed = p1.compose(&p2);
        let xs: Vec<usize> = (0..k).collect();
        prop_assert_eq!(composed.apply(&xs), p1.apply(&p2.apply(&xs)));
        let slot = composed.apply_index(label);
        prop_assert_eq!(composed.apply(&xs)[slot], label);
    }

    #[test]
    fn permutation_composed_with_inverse_is_identity(seed in any::<u64>(), k in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(k, &mut rng);
        let identity: Vec<usize> = (0..k).collect();
        let xs: Vec<usize> = (7..7 + k).collect();
        prop_assert_eq!(p.compose(&p.inverse()).apply(&xs), xs.clone());
        prop_assert_eq!(p.inverse().compose(&p).apply(&xs), xs);
        for (i, &x) in identity.iter().enumerate() {
            prop_assert_eq!(p.compose(&p.inverse()).apply_index(i), x);
        }
    }

    #[test]
    fn audit_commitment_reopens_from_same_coordinates(
        audit_seed in any::<u64>(),
        step_idx in 0usize..9,
        round_id in any::<u64>(),
    ) {
        // Commit/open round-trip: re-deriving the commitment from the
        // opened (seed, step, round) always matches what was committed.
        let step = Step::ALL[step_idx];
        let committed = commit_seed(audit_seed, step, round_id);
        prop_assert_eq!(commit_seed(audit_seed, step, round_id), committed);
    }

    #[test]
    fn audit_commitment_binds_every_coordinate(
        audit_seed in any::<u64>(),
        step_idx in 0usize..9,
        round_id in any::<u64>(),
        other_seed in any::<u64>(),
        other_round in any::<u64>(),
        other_step_idx in 0usize..9,
    ) {
        // Binding: changing ANY of (seed, step, round) changes the
        // commitment, so an equivocating server cannot reopen a stale
        // commitment under fresh coordinates.
        let step = Step::ALL[step_idx];
        let committed = commit_seed(audit_seed, step, round_id);
        if other_seed != audit_seed {
            prop_assert_ne!(commit_seed(other_seed, step, round_id), committed);
        }
        if other_round != round_id {
            prop_assert_ne!(commit_seed(audit_seed, step, other_round), committed);
        }
        if other_step_idx != step_idx {
            prop_assert_ne!(
                commit_seed(audit_seed, Step::ALL[other_step_idx], round_id),
                committed
            );
        }
    }

    #[test]
    fn audit_transcript_digest_rejects_single_byte_mutation(
        transcript in proptest::collection::vec(any::<u8>(), 1..64),
        at in any::<usize>(),
        flip in 1u8..255,
    ) {
        // Any single-byte substitution in an opened transcript changes
        // its digest — the property the challenge verification relies on
        // to catch tampered replays.
        let mut mutated = transcript.clone();
        let i = at % mutated.len();
        mutated[i] ^= flip;
        prop_assert_ne!(
            fnv1a(fnv1a_start(), &mutated),
            fnv1a(fnv1a_start(), &transcript)
        );
    }

    #[test]
    fn shares_always_reconstruct(value in -(1i128 << 40)..(1i128 << 40), seed in any::<u64>()) {
        let domain = ShareDomain::paper();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = domain.split(value, &mut rng);
        prop_assert_eq!(a + b, value);
        prop_assert!(a.abs() <= 1 << domain.share_bits);
    }

    #[test]
    fn compare_encoding_is_monotone(x in -(1i128 << 24)..(1i128 << 24), y in -(1i128 << 24)..(1i128 << 24)) {
        let domain = ShareDomain::test();
        let ex = domain.encode_compare(x).unwrap();
        let ey = domain.encode_compare(y).unwrap();
        prop_assert_eq!(x >= y, ex >= ey);
        prop_assert_eq!(domain.decode_compare(ex), x);
    }

    #[test]
    fn eqn7_transform_preserves_comparisons(
        a_i in -(1i128 << 20)..(1i128 << 20),
        a_j in -(1i128 << 20)..(1i128 << 20),
        b_i in -(1i128 << 20)..(1i128 << 20),
        b_j in -(1i128 << 20)..(1i128 << 20),
        bias in 0i128..(1i128 << 20),
    ) {
        // Eqn. 7 with a common scalar bias r on every masked entry:
        // c_i ≥ c_j ⟺ (ã_i − ã_j) ≥ (b̃_j − b̃_i).
        let c_i = a_i + b_i;
        let c_j = a_j + b_j;
        let lhs = (a_i + bias) - (a_j + bias);
        let rhs = (b_j + bias) - (b_i + bias);
        prop_assert_eq!(c_i >= c_j, lhs >= rhs);
    }

    #[test]
    fn eqn6_transform_preserves_threshold(
        a in -(1i128 << 20)..(1i128 << 20),
        b in -(1i128 << 20)..(1i128 << 20),
        t in 0i128..(1i128 << 20),
        noise in -(1i128 << 16)..(1i128 << 16),
        bias in 0i128..(1i128 << 20),
    ) {
        // Eqn. 6: c + z ≥ T ⟺ (a − T/2 + z_a + r) ≥ (T/2 − b − z_b + r)
        // with z = z_a + z_b and exact integer threshold halves.
        let t_half_a = t / 2;
        let t_half_b = t - t_half_a;
        let z_a = noise / 2;
        let z_b = noise - z_a;
        let lhs = a - t_half_a + z_a + bias;
        let rhs = t_half_b - b - z_b + bias;
        prop_assert_eq!(a + b + noise >= t, lhs >= rhs);
    }
}

/// One shared Paillier keypair for the aggregation invariance property.
fn agg_keypair() -> &'static Keypair {
    use std::sync::OnceLock;
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(&mut StdRng::seed_from_u64(417), 64))
}

/// Receives `num_users` uploads over a fresh network and aggregates them
/// with the given parallelism. Uploads are re-sent per call so both the
/// sequential and the parallel run see identical ciphertexts.
fn aggregate_uploads(uploads: &[Vec<Ciphertext>], par: &Parallelism) -> Vec<Ciphertext> {
    let num_users = uploads.len();
    let num_classes = uploads[0].len();
    let mut net = Network::new(num_users);
    let mut server = net.take_endpoint(PartyId::Server1);
    for (u, vec) in uploads.iter().enumerate() {
        let ep = net.take_endpoint(PartyId::User(u));
        ep.send(PartyId::Server1, Step::SecureSumVotes, vec).unwrap();
    }
    aggregate_user_vectors(
        &mut server,
        Step::SecureSumVotes,
        num_users,
        num_classes,
        agg_keypair().public_key(),
        par,
    )
    .unwrap()
}

/// Like [`aggregate_uploads`], but drains the same uploads through the
/// sharded streaming path under the given plan.
fn aggregate_uploads_sharded(
    uploads: &[Vec<Ciphertext>],
    plan: &ShardPlan,
    par: &Parallelism,
) -> Vec<Ciphertext> {
    let num_users = uploads.len();
    let num_classes = uploads[0].len();
    let mut net = Network::new(num_users);
    let mut server = net.take_endpoint(PartyId::Server1);
    for (u, vec) in uploads.iter().enumerate() {
        let ep = net.take_endpoint(PartyId::User(u));
        ep.send(PartyId::Server1, Step::SecureSumVotes, vec).unwrap();
    }
    aggregate_user_vectors_sharded(
        &mut server,
        Step::SecureSumVotes,
        plan,
        num_classes,
        agg_keypair().public_key(),
        par,
    )
    .unwrap()
}

/// Runs a batched blind-and-permute over real channels with the given
/// per-server parallelism, deterministically in every RNG stream.
fn run_blind_permute(
    seed: u64,
    a_vec: &[i128],
    b_vec: &[i128],
    par: Parallelism,
) -> (BlindPermuteOutput, BlindPermuteOutput) {
    let k = a_vec.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = SessionKeys::generate(SessionConfig::test(1, k), &mut rng).with_parallelism(par);
    let s1_ctx = keys.server1();
    let s2_ctx = keys.server2();
    let user_ctx = keys.user();

    let mut net = Network::new(1);
    let mut s1 = net.take_endpoint(PartyId::Server1);
    let mut s2 = net.take_endpoint(PartyId::Server2);
    let user = net.take_endpoint(PartyId::User(0));

    send_encrypted_vector(
        &user,
        PartyId::Server1,
        Step::Setup,
        a_vec,
        user_ctx.pk2(),
        user_ctx.parallelism(),
        &mut rng,
    )
    .unwrap();
    send_encrypted_vector(
        &user,
        PartyId::Server2,
        Step::Setup,
        b_vec,
        user_ctx.pk1(),
        user_ctx.parallelism(),
        &mut rng,
    )
    .unwrap();

    std::thread::scope(|scope| {
        let h1 = scope.spawn(move || {
            let enc_a: Vec<Ciphertext> = s1.recv(PartyId::User(0), Step::Setup).unwrap();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
            server1_blind_permute(
                &mut s1,
                &s1_ctx,
                &[enc_a],
                Step::BlindPermute1,
                &mut rng,
                &mut AuditTap::disabled(),
            )
            .unwrap()
        });
        let h2 = scope.spawn(move || {
            let enc_b: Vec<Ciphertext> = s2.recv(PartyId::User(0), Step::Setup).unwrap();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
            server2_blind_permute(
                &mut s2,
                &s2_ctx,
                &[enc_b],
                Step::BlindPermute1,
                &mut rng,
                &mut AuditTap::disabled(),
            )
            .unwrap()
        });
        (h1.join().unwrap(), h2.join().unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn secure_sum_aggregation_is_thread_count_invariant(
        votes in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 1..6), 1..5),
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        // |U| = 1 and K = 1 degenerates are in range, as are class counts
        // below the min-batch split threshold.
        let num_classes = votes[0].len();
        let pk = agg_keypair().public_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let uploads: Vec<Vec<Ciphertext>> = votes
            .iter()
            .map(|row| {
                (0..num_classes)
                    .map(|k| pk.encrypt_u64(row[k % row.len()] as u64, &mut rng))
                    .collect()
            })
            .collect();
        let seq = aggregate_uploads(&uploads, &Parallelism::sequential());
        let par = aggregate_uploads(&uploads, &Parallelism::new(threads));
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn sharded_aggregation_is_bit_identical_to_flat(
        votes in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 1..6), 1..40),
        num_shards in 1usize..9,
        threads in 1usize..5,
        shard_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        // The tentpole invariant: hashing the roster into any number of
        // shards, streaming each shard's uploads through chunked running
        // folds and tree-combining the partials must reproduce the flat
        // fold bit for bit — Paillier addition is a canonical modular
        // multiplication, so grouping cannot change the product.
        let num_classes = votes[0].len();
        let pk = agg_keypair().public_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let uploads: Vec<Vec<Ciphertext>> = votes
            .iter()
            .map(|row| {
                (0..num_classes)
                    .map(|k| pk.encrypt_u64(row[k % row.len()] as u64, &mut rng))
                    .collect()
            })
            .collect();
        let roster: Vec<usize> = (0..uploads.len()).collect();
        let plan = ShardPlan::derive(shard_seed, &roster, ShardConfig::new(num_shards));
        let flat = aggregate_uploads(&uploads, &Parallelism::sequential());
        let sharded = aggregate_uploads_sharded(&uploads, &plan, &Parallelism::new(threads));
        prop_assert_eq!(flat, sharded);
    }

    #[test]
    fn shard_plan_partitions_exactly(
        roster_len in 1usize..200,
        num_shards in 1usize..40,
        shard_seed in any::<u64>(),
    ) {
        let roster: Vec<usize> = (0..roster_len).collect();
        let plan = ShardPlan::derive(shard_seed, &roster, ShardConfig::new(num_shards));
        prop_assert_eq!(plan.num_shards(), num_shards.min(roster_len));
        let mut all: Vec<usize> = plan.shards().iter().flatten().copied().collect();
        for shard in plan.shards() {
            prop_assert!(shard.windows(2).all(|w| w[0] < w[1]));
        }
        all.sort_unstable();
        prop_assert_eq!(all, roster);
    }

    #[test]
    fn intersect_sorted_matches_set_semantics(
        a_raw in proptest::collection::vec(0usize..500, 0..60),
        b_raw in proptest::collection::vec(0usize..500, 0..60),
    ) {
        let ascending = |mut v: Vec<usize>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        let a = ascending(a_raw);
        let b = ascending(b_raw);
        let expect: Vec<usize> = a.iter().copied().filter(|u| b.contains(u)).collect();
        prop_assert_eq!(intersect_sorted(&a, &b), expect);
    }

    #[test]
    fn blind_permute_is_thread_count_invariant(
        a_vec in proptest::collection::vec(-1000i128..1000, 1..6),
        b_vec_raw in proptest::collection::vec(-1000i128..1000, 1..6),
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        // K = 1 exercises the no-split degenerate; larger K the real
        // mask/rerandomize fan-out on both servers.
        let b_vec: Vec<i128> =
            (0..a_vec.len()).map(|i| b_vec_raw[i % b_vec_raw.len()]).collect();
        let (s1_seq, s2_seq) =
            run_blind_permute(seed, &a_vec, &b_vec, Parallelism::sequential());
        let (s1_par, s2_par) =
            run_blind_permute(seed, &a_vec, &b_vec, Parallelism::new(threads));
        prop_assert_eq!(s1_seq.sequences, s1_par.sequences);
        prop_assert_eq!(s2_seq.sequences, s2_par.sequences);
        prop_assert_eq!(s1_seq.own_permutation, s1_par.own_permutation);
        prop_assert_eq!(s2_seq.own_permutation, s2_par.own_permutation);
    }
}
