//! Unified error type for SMC protocol runs.

use std::error::Error;
use std::fmt;

use crate::domain::SharesOutOfRange;

/// Errors surfaced while executing a secure sub-protocol.
#[derive(Debug)]
pub enum SmcError {
    /// The transport layer failed (disconnect, timeout, codec).
    Transport(transport::TransportError),
    /// A Paillier operation failed.
    Paillier(paillier::PaillierError),
    /// A DGK operation failed.
    Dgk(dgk::DgkError),
    /// A value escaped the configured share domain.
    Domain(SharesOutOfRange),
    /// The two parties' vector lengths disagree.
    LengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Received element count.
        got: usize,
    },
    /// An uploaded Paillier ciphertext failed server-side validation:
    /// zero, not reduced modulo `n²`, or sharing a factor with `n`. Such
    /// a value is either garbage or an active probe; it is rejected
    /// before any homomorphic work touches it.
    InvalidCiphertext {
        /// Who uploaded the bad ciphertext.
        from: transport::PartyId,
        /// Position of the offending element in the uploaded vector.
        index: usize,
    },
    /// The same (sender, step, sequence) tuple was submitted twice.
    /// The transport already de-duplicates redelivered envelopes; this
    /// application-level guard catches a peer that *re-numbers* a replay.
    DuplicateSubmission {
        /// The replaying sender.
        from: transport::PartyId,
        /// The protocol step of the replay.
        step: transport::Step,
        /// The per-link sequence number seen twice.
        seq: u64,
    },
    /// Too few users survived a collection step to continue the round —
    /// the typed clean abort of the dropout-resilient path. Both servers
    /// reach this verdict from the same reconciled survivor set, so the
    /// protocol never releases a partial result.
    QuorumLost {
        /// The step at which the round was abandoned.
        step: transport::Step,
        /// How many users' contributions actually arrived at both servers.
        survivors: usize,
        /// The configured quorum the round needed.
        required: usize,
    },
    /// A covert-security audit challenge convicted a server: its opened
    /// commitment, attested transcript, or replayed permutation/mask
    /// draws are inconsistent with what actually happened. Distinct from
    /// [`SmcError::QuorumLost`]; the round aborts without releasing a
    /// label and the evidence names the deviation.
    AuditFailure {
        /// The server the audit convicted.
        party: transport::PartyId,
        /// The protocol step the deviation occurred at.
        step: transport::Step,
        /// What the challenge found inconsistent.
        evidence: crate::audit::AuditEvidence,
    },
}

impl fmt::Display for SmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcError::Transport(e) => write!(f, "transport failure: {e}"),
            SmcError::Paillier(e) => write!(f, "paillier failure: {e}"),
            SmcError::Dgk(e) => write!(f, "dgk failure: {e}"),
            SmcError::Domain(e) => write!(f, "domain violation: {e}"),
            SmcError::LengthMismatch { expected, got } => {
                write!(f, "vector length mismatch: expected {expected}, got {got}")
            }
            SmcError::InvalidCiphertext { from, index } => {
                write!(f, "invalid ciphertext from {from:?} at index {index}")
            }
            SmcError::DuplicateSubmission { from, step, seq } => {
                write!(f, "duplicate submission from {from:?} at {step} (seq {seq})")
            }
            SmcError::QuorumLost { step, survivors, required } => {
                write!(f, "quorum lost at {step}: {survivors} survivors < {required} required")
            }
            SmcError::AuditFailure { party, step, evidence } => {
                write!(f, "audit failure: {party} deviated at {step}: {evidence}")
            }
        }
    }
}

impl Error for SmcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmcError::Transport(e) => Some(e),
            SmcError::Paillier(e) => Some(e),
            SmcError::Dgk(e) => Some(e),
            SmcError::Domain(e) => Some(e),
            SmcError::LengthMismatch { .. }
            | SmcError::InvalidCiphertext { .. }
            | SmcError::DuplicateSubmission { .. }
            | SmcError::QuorumLost { .. }
            | SmcError::AuditFailure { .. } => None,
        }
    }
}

impl From<transport::TransportError> for SmcError {
    fn from(e: transport::TransportError) -> Self {
        SmcError::Transport(e)
    }
}

impl From<paillier::PaillierError> for SmcError {
    fn from(e: paillier::PaillierError) -> Self {
        SmcError::Paillier(e)
    }
}

impl From<dgk::DgkError> for SmcError {
    fn from(e: dgk::DgkError) -> Self {
        SmcError::Dgk(e)
    }
}

impl From<SharesOutOfRange> for SmcError {
    fn from(e: SharesOutOfRange) -> Self {
        SmcError::Domain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SmcError::LengthMismatch { expected: 3, got: 5 };
        assert!(e.to_string().contains("3"));
        assert!(e.source().is_none());
        let t: SmcError = transport::TransportError::Timeout(transport::PartyId::Server1).into();
        assert!(t.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SmcError>();
    }
}
