//! The serializable round state machine behind crash recovery.
//!
//! The secure pipeline of Alg. 5 is a fixed nine-step sequence; each
//! server's position in it, plus the working data it owns at that
//! position, is reified here as a [`RoundState`] — one variant per
//! [`Step`], tagged on the wire by the step's ordinal. After completing a
//! step a server snapshots its state through [`transport::Wire`] into a
//! [`transport::checkpoint::CheckpointStore`]; after a crash, a
//! supervisor restores the latest consistent S1/S2 snapshot pair and
//! re-enters the pipeline at the following step.
//!
//! A state carries exactly what the *next* steps still need — aggregated
//! ciphertext sums, masked permuted sequences, the server's own
//! Blind-and-Permute permutation, the reconciled survivor sets, the
//! winning slot. It deliberately carries nothing else: no private keys,
//! no decrypted peer data, no in-flight DGK randomness (comparisons are
//! atomic within a step and re-run from the step boundary on recovery).
//! See DESIGN.md §"Recovery model".

use bytes::{Buf, BufMut, Bytes, BytesMut};
use paillier::Ciphertext;
use transport::{Step, Wire, WireError};

use crate::permutation::Permutation;

impl Wire for Permutation {
    fn encode(&self, buf: &mut BytesMut) {
        let indices: Vec<u64> = self.as_indices().iter().map(|&i| i as u64).collect();
        indices.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let indices: Vec<u64> = Vec::decode(buf)?;
        let indices: Vec<usize> = indices
            .into_iter()
            .map(usize::try_from)
            .collect::<Result<_, _>>()
            .map_err(|_| WireError::Malformed("permutation index exceeds usize"))?;
        Permutation::from_indices(indices)
            .ok_or(WireError::Malformed("permutation indices are not a bijection"))
    }
}

/// A server's position in the nine-step pipeline, carrying the working
/// data it owns at that point. Each variant is the state *after* the
/// correspondingly named step completed; [`RoundState::Start`] is the
/// state after [`Step::Setup`] (keys distributed, nothing collected).
///
/// Both servers share this one type: the pipeline is symmetric enough
/// that at every boundary the two sides hold the same *shape* of data
/// (their own shares, sequences and permutations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundState {
    /// After [`Step::Setup`]: session established, nothing collected.
    Start,
    /// After [`Step::SecureSumVotes`]: aggregated encrypted vote and
    /// threshold-share sums over the reconciled survivor set.
    Summed {
        /// Per-class encrypted vote-share sums (under the peer's key).
        votes: Vec<Ciphertext>,
        /// Per-class encrypted threshold-comparison share sums.
        thresh: Vec<Ciphertext>,
        /// Users whose uploads reached both servers, ascending.
        survivors: Vec<usize>,
    },
    /// After [`Step::BlindPermute1`]: masked share sequences in the
    /// jointly permuted domain, plus this server's own permutation.
    Permuted {
        /// Masked vote-share sequence `π(a + r)` (this server's half).
        votes_seq: Vec<i128>,
        /// Masked threshold-share sequence in the same permuted order.
        thresh_seq: Vec<i128>,
        /// This server's Blind-and-Permute permutation (π1 or π2).
        permutation: Permutation,
        /// Carried through from [`RoundState::Summed`].
        survivors: Vec<usize>,
    },
    /// After [`Step::CompareRank`]: the winning permuted slot `π(i*)`.
    Ranked {
        /// The permuted slot both servers agreed ranks highest.
        slot: usize,
        /// Threshold-share sequence, still needed for the gate check.
        thresh_seq: Vec<i128>,
        /// Carried through for the noisy phase collection roster.
        survivors: Vec<usize>,
    },
    /// After [`Step::ThresholdCheck`] *passed*. (A failed gate goes
    /// straight to [`RoundState::Done`] with `label: None`.)
    Gated {
        /// Carried through: the roster for the noisy collection.
        survivors: Vec<usize>,
    },
    /// After [`Step::SecureSumNoisy`]: aggregated encrypted noisy-share
    /// sums over the (possibly further shrunken) noisy survivor set.
    SummedNoisy {
        /// Per-class encrypted noisy-share sums.
        noisy: Vec<Ciphertext>,
        /// The step-2 survivor set (the collection roster used).
        survivors: Vec<usize>,
        /// The reconciled noisy cohort; `None` in the strict (non-
        /// resilient) mode where it is the full roster by construction.
        noisy_survivors: Option<Vec<usize>>,
    },
    /// After [`Step::BlindPermute2`]: the noisy sequence in the second
    /// joint permutation, plus this server's second permutation.
    PermutedNoisy {
        /// Masked noisy-share sequence in the permuted domain.
        noisy_seq: Vec<i128>,
        /// This server's second Blind-and-Permute permutation.
        permutation: Permutation,
        /// Carried through.
        survivors: Vec<usize>,
        /// Carried through.
        noisy_survivors: Option<Vec<usize>>,
    },
    /// After [`Step::CompareNoisyRank`]: the noisy winner's permuted slot.
    RankedNoisy {
        /// The permuted slot of the noisy maximum `π′(ĩ*)`.
        noisy_slot: usize,
        /// The second permutation, needed by restoration.
        permutation: Permutation,
        /// Carried through.
        survivors: Vec<usize>,
        /// Carried through.
        noisy_survivors: Option<Vec<usize>>,
    },
    /// After [`Step::Restoration`] — terminal, the round's result.
    Done {
        /// The released label, or `None` if the threshold gate rejected.
        label: Option<usize>,
        /// The final survivor set.
        survivors: Vec<usize>,
        /// The final noisy cohort (`None` in strict mode or on rejection).
        noisy_survivors: Option<Vec<usize>>,
    },
}

impl RoundState {
    /// The step this state is a snapshot *after* (also its wire tag).
    pub fn completed_step(&self) -> Step {
        match self {
            RoundState::Start => Step::Setup,
            RoundState::Summed { .. } => Step::SecureSumVotes,
            RoundState::Permuted { .. } => Step::BlindPermute1,
            RoundState::Ranked { .. } => Step::CompareRank,
            RoundState::Gated { .. } => Step::ThresholdCheck,
            RoundState::SummedNoisy { .. } => Step::SecureSumNoisy,
            RoundState::PermutedNoisy { .. } => Step::BlindPermute2,
            RoundState::RankedNoisy { .. } => Step::CompareNoisyRank,
            RoundState::Done { .. } => Step::Restoration,
        }
    }

    /// The next step to execute from this state, or `None` if terminal.
    pub fn next_step(&self) -> Option<Step> {
        if self.is_terminal() {
            return None;
        }
        Step::from_ordinal(self.completed_step().ordinal() + 1)
    }

    /// True for [`RoundState::Done`] (including a rejected round).
    pub fn is_terminal(&self) -> bool {
        matches!(self, RoundState::Done { .. })
    }

    /// The survivor set this state carries ([`RoundState::Start`] has
    /// none yet).
    pub fn survivors(&self) -> Option<&[usize]> {
        match self {
            RoundState::Start => None,
            RoundState::Summed { survivors, .. }
            | RoundState::Permuted { survivors, .. }
            | RoundState::Ranked { survivors, .. }
            | RoundState::Gated { survivors }
            | RoundState::SummedNoisy { survivors, .. }
            | RoundState::PermutedNoisy { survivors, .. }
            | RoundState::RankedNoisy { survivors, .. }
            | RoundState::Done { survivors, .. } => Some(survivors),
        }
    }
}

impl Wire for RoundState {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.completed_step().ordinal());
        match self {
            RoundState::Start => {}
            RoundState::Summed { votes, thresh, survivors } => {
                votes.encode(buf);
                thresh.encode(buf);
                survivors.encode(buf);
            }
            RoundState::Permuted { votes_seq, thresh_seq, permutation, survivors } => {
                votes_seq.encode(buf);
                thresh_seq.encode(buf);
                permutation.encode(buf);
                survivors.encode(buf);
            }
            RoundState::Ranked { slot, thresh_seq, survivors } => {
                slot.encode(buf);
                thresh_seq.encode(buf);
                survivors.encode(buf);
            }
            RoundState::Gated { survivors } => {
                survivors.encode(buf);
            }
            RoundState::SummedNoisy { noisy, survivors, noisy_survivors } => {
                noisy.encode(buf);
                survivors.encode(buf);
                noisy_survivors.encode(buf);
            }
            RoundState::PermutedNoisy { noisy_seq, permutation, survivors, noisy_survivors } => {
                noisy_seq.encode(buf);
                permutation.encode(buf);
                survivors.encode(buf);
                noisy_survivors.encode(buf);
            }
            RoundState::RankedNoisy { noisy_slot, permutation, survivors, noisy_survivors } => {
                noisy_slot.encode(buf);
                permutation.encode(buf);
                survivors.encode(buf);
                noisy_survivors.encode(buf);
            }
            RoundState::Done { label, survivors, noisy_survivors } => {
                label.encode(buf);
                survivors.encode(buf);
                noisy_survivors.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        let step = Step::from_ordinal(tag).ok_or(WireError::InvalidTag(tag))?;
        Ok(match step {
            Step::Setup => RoundState::Start,
            Step::SecureSumVotes => RoundState::Summed {
                votes: Vec::decode(buf)?,
                thresh: Vec::decode(buf)?,
                survivors: Vec::decode(buf)?,
            },
            Step::BlindPermute1 => RoundState::Permuted {
                votes_seq: Vec::decode(buf)?,
                thresh_seq: Vec::decode(buf)?,
                permutation: Permutation::decode(buf)?,
                survivors: Vec::decode(buf)?,
            },
            Step::CompareRank => RoundState::Ranked {
                slot: usize::decode(buf)?,
                thresh_seq: Vec::decode(buf)?,
                survivors: Vec::decode(buf)?,
            },
            Step::ThresholdCheck => RoundState::Gated { survivors: Vec::decode(buf)? },
            Step::SecureSumNoisy => RoundState::SummedNoisy {
                noisy: Vec::decode(buf)?,
                survivors: Vec::decode(buf)?,
                noisy_survivors: Option::decode(buf)?,
            },
            Step::BlindPermute2 => RoundState::PermutedNoisy {
                noisy_seq: Vec::decode(buf)?,
                permutation: Permutation::decode(buf)?,
                survivors: Vec::decode(buf)?,
                noisy_survivors: Option::decode(buf)?,
            },
            Step::CompareNoisyRank => RoundState::RankedNoisy {
                noisy_slot: usize::decode(buf)?,
                permutation: Permutation::decode(buf)?,
                survivors: Vec::decode(buf)?,
                noisy_survivors: Option::decode(buf)?,
            },
            Step::Restoration => RoundState::Done {
                label: Option::decode(buf)?,
                survivors: Vec::decode(buf)?,
                noisy_survivors: Option::decode(buf)?,
            },
        })
    }
}

/// What actually goes into a durable round checkpoint: the pipeline
/// [`RoundState`] plus, when auditing is on, the commit-and-challenge
/// material accumulated so far ([`crate::audit::AuditCheckpoint`]). A
/// resumed round re-verifies from the same commitments instead of
/// re-charging the privacy budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// The server's position in the pipeline.
    pub state: RoundState,
    /// Audit commitments and cross-step digests; `None` when auditing
    /// is off (and for checkpoints written before the audit layer).
    pub audit: Option<crate::audit::AuditCheckpoint>,
}

impl Wire for CheckpointImage {
    fn encode(&self, buf: &mut BytesMut) {
        self.state.encode(buf);
        self.audit.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let state = RoundState::decode(buf)?;
        // Pre-audit checkpoints end right after the state; treat the
        // missing trailer as "no audit material" rather than truncation.
        let audit = if buf.has_remaining() { Option::decode(buf)? } else { None };
        Ok(CheckpointImage { state, audit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigint::Ubig;

    fn ct(v: u64) -> Ciphertext {
        Ciphertext::from_raw(Ubig::from(v))
    }

    /// One representative value per variant, used by round-trip tests
    /// here and by the chaos matrix to label checkpoints.
    pub(crate) fn sample_states() -> Vec<RoundState> {
        let pi = Permutation::from_indices(vec![2, 0, 1]).unwrap();
        vec![
            RoundState::Start,
            RoundState::Summed {
                votes: vec![ct(11), ct(12)],
                thresh: vec![ct(13), ct(14)],
                survivors: vec![0, 2, 3],
            },
            RoundState::Permuted {
                votes_seq: vec![5, -6, 7],
                thresh_seq: vec![-1, 2, -3],
                permutation: pi.clone(),
                survivors: vec![0, 1],
            },
            RoundState::Ranked { slot: 2, thresh_seq: vec![9, -9, 0], survivors: vec![1, 2] },
            RoundState::Gated { survivors: vec![0, 1, 2, 3, 4] },
            RoundState::SummedNoisy {
                noisy: vec![ct(21)],
                survivors: vec![0, 1],
                noisy_survivors: Some(vec![1]),
            },
            RoundState::PermutedNoisy {
                noisy_seq: vec![i128::MIN, i128::MAX],
                permutation: pi.clone(),
                survivors: vec![0],
                noisy_survivors: None,
            },
            RoundState::RankedNoisy {
                noisy_slot: 0,
                permutation: pi,
                survivors: vec![3],
                noisy_survivors: Some(vec![]),
            },
            RoundState::Done { label: Some(1), survivors: vec![0, 4], noisy_survivors: None },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for state in sample_states() {
            let bytes = state.to_bytes();
            let back = RoundState::from_bytes(bytes).unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn wire_tag_is_the_completed_step_ordinal() {
        for state in sample_states() {
            let bytes = state.to_bytes();
            assert_eq!(bytes[0], state.completed_step().ordinal());
        }
    }

    #[test]
    fn step_progression_covers_the_pipeline() {
        let states = sample_states();
        for (i, state) in states.iter().enumerate() {
            assert_eq!(state.completed_step(), Step::ALL[i]);
            if state.is_terminal() {
                assert_eq!(state.next_step(), None);
            } else {
                assert_eq!(state.next_step(), Some(Step::ALL[i + 1]));
            }
        }
        assert!(states.last().unwrap().is_terminal());
    }

    #[test]
    fn survivors_accessor() {
        assert_eq!(RoundState::Start.survivors(), None);
        let gated = RoundState::Gated { survivors: vec![1, 2] };
        assert_eq!(gated.survivors(), Some(&[1usize, 2][..]));
    }

    #[test]
    fn truncated_decode_is_typed() {
        for state in sample_states() {
            let bytes = state.to_bytes();
            for cut in 0..bytes.len() {
                let err = RoundState::from_bytes(bytes.slice(0..cut)).unwrap_err();
                assert!(
                    matches!(err, WireError::Truncated | WireError::InvalidTag(_)),
                    "cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn invalid_permutation_rejected_as_malformed() {
        // Hand-encode a Permuted state whose permutation repeats index 0.
        let mut buf = BytesMut::new();
        buf.put_u8(Step::BlindPermute1.ordinal());
        Vec::<i128>::new().encode(&mut buf);
        Vec::<i128>::new().encode(&mut buf);
        vec![0u64, 0u64].encode(&mut buf);
        Vec::<usize>::new().encode(&mut buf);
        let err = RoundState::from_bytes(buf.freeze()).unwrap_err();
        assert_eq!(err, WireError::Malformed("permutation indices are not a bijection"));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(42);
        assert_eq!(RoundState::from_bytes(buf.freeze()), Err(WireError::InvalidTag(42)));
    }

    #[test]
    fn checkpoint_image_roundtrips_with_and_without_audit() {
        let audit = crate::audit::AuditCheckpoint {
            commitments: vec![(Step::BlindPermute1, 7)],
            peer_perm: Some(9),
        };
        for state in sample_states() {
            for audit in [None, Some(audit.clone())] {
                let image = CheckpointImage { state: state.clone(), audit };
                assert_eq!(CheckpointImage::from_bytes(image.to_bytes()).unwrap(), image);
            }
        }
    }

    #[test]
    fn pre_audit_checkpoint_bytes_decode_as_image() {
        // A bare RoundState payload (what PR 4 checkpoints wrote) must
        // decode as an image with no audit material.
        for state in sample_states() {
            let image = CheckpointImage::from_bytes(state.to_bytes()).unwrap();
            assert_eq!(image, CheckpointImage { state, audit: None });
        }
    }

    #[test]
    fn permutation_roundtrips_standalone() {
        let pi = Permutation::from_indices(vec![3, 1, 0, 2]).unwrap();
        let back = Permutation::from_bytes(pi.to_bytes()).unwrap();
        assert_eq!(back, pi);
    }
}
