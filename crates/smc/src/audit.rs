//! Covert-security audit of the blind-permute-and-mask steps.
//!
//! The paper's two servers are honest-but-curious; this module upgrades
//! them to *covert* adversaries — a server may deviate (mis-permute,
//! drop a mask, equivocate between what it sends and what it attests,
//! replay a stale frame) but is caught with tunable probability and
//! named when caught.
//!
//! The mechanism is commit-and-challenge over the existing S1↔S2 link:
//!
//! 1. **Commit** — before executing an audited step (both
//!    Blind-and-Permute runs and Restoration), each server sends the
//!    peer a hash commitment over `(step seed, step, round id)`. The
//!    step seed is the value its permutation and mask draws derive from
//!    (see `step_rng` in `consensus-core`), so committing to it commits
//!    to every random choice the server is about to make.
//! 2. **Transcript** — during the step, each server folds the frames it
//!    sends, the frames it receives, the permutation it applies and the
//!    masks it uses into running FNV-1a digests (an [`AuditTap`]).
//! 3. **Challenge** — in a seeded fraction of rounds
//!    ([`AuditPolicy::challenge_rate`]) each server *opens* its
//!    commitment after its last content send of the step: it reveals
//!    the seed and its attested digests. The counterpart replays the
//!    permutation/mask draws from the opened seed and cross-checks
//!    every digest before using any data the peer produced.
//!
//! Any inconsistency yields a typed [`SmcError::AuditFailure`] naming
//! the guilty party, the step and the [`AuditEvidence`] — distinct from
//! `QuorumLost` and never releasing a label. The FNV-1a fold is
//! injective per byte position (every fold step is invertible mod
//! 2^64), so any single-byte substitution in an attested transcript
//! provably changes its digest — pinned by proptests.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transport::{
    ByzantineAction, Endpoint, FaultEvent, PartyId, Step, TransportError, Wire, WireError,
};

use crate::domain::ShareDomain;
use crate::error::SmcError;
use crate::permutation::Permutation;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running 64-bit FNV-1a digest.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A fresh FNV-1a digest state.
pub fn fnv1a_start() -> u64 {
    FNV_OFFSET
}

/// SplitMix64-style avalanche of `h` and `salt` (the same construction
/// the transport's fault injector uses; duplicated because it is three
/// lines and the transport keeps its copy private).
fn mix(h: u64, salt: u64) -> u64 {
    let mut z = h ^ salt.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The hash commitment a server sends before executing an audited step:
/// binding to the step seed, the step and the round id.
pub fn commit_seed(seed: u64, step: Step, round_id: u64) -> u64 {
    let mut h = mix(seed, 0xa0d1_7000);
    h = mix(h, u64::from(step.ordinal()) + 1);
    mix(h, round_id ^ 0x5eed_c0de)
}

/// Why an audit challenge failed — carried inside
/// [`SmcError::AuditFailure`] and rendered in health reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvidence {
    /// The frames the peer attested to sending differ from the frames
    /// that actually arrived (equivocation or a stale-frame replay).
    TranscriptDivergence {
        /// Digest of the frames the peer claims it sent.
        attested: u64,
        /// Digest of the frames that actually arrived.
        observed: u64,
    },
    /// The permutation the peer used is not the one its committed seed
    /// derives (or, at Restoration, not the one it used at the second
    /// Blind-and-Permute).
    PermutationMismatch {
        /// Digest of the permutation the committed seed derives.
        expected: u64,
        /// Digest of the permutation the peer attested to using.
        used: u64,
    },
    /// The masks the peer used are not the ones its committed seed
    /// derives (a dropped or altered blinding mask).
    MaskMismatch {
        /// Digest of the masks the committed seed derives.
        expected: u64,
        /// Digest of the masks the peer attested to using.
        used: u64,
    },
    /// The opened seed does not match the commitment exchanged before
    /// the step ran.
    CommitmentMismatch {
        /// The commitment received before the step.
        committed: u64,
        /// The commitment recomputed from the opened seed.
        reopened: u64,
    },
    /// The peer failed to produce a well-formed opening when challenged.
    MissingOpening,
}

impl std::fmt::Display for AuditEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditEvidence::TranscriptDivergence { attested, observed } => write!(
                f,
                "attested transcript {attested:#018x} differs from observed {observed:#018x}"
            ),
            AuditEvidence::PermutationMismatch { expected, used } => {
                write!(f, "permutation {used:#018x} is not the committed draw {expected:#018x}")
            }
            AuditEvidence::MaskMismatch { expected, used } => {
                write!(f, "masks {used:#018x} are not the committed draws {expected:#018x}")
            }
            AuditEvidence::CommitmentMismatch { committed, reopened } => write!(
                f,
                "opened seed recommits to {reopened:#018x}, not the committed {committed:#018x}"
            ),
            AuditEvidence::MissingOpening => write!(f, "no well-formed opening arrived"),
        }
    }
}

/// The audit configuration attached to a `SecureEngine`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditPolicy {
    /// Fraction of rounds run as challenge rounds (0.0 ..= 1.0). A
    /// covert server deviating in a uniformly chosen round is caught
    /// with this probability.
    pub challenge_rate: f64,
    /// In strict mode a peer that fails to open when challenged is
    /// treated as guilty ([`AuditEvidence::MissingOpening`]); in
    /// resilient mode the missing opening surfaces as the transport
    /// failure it may innocently be (a crash), and only *inconsistent*
    /// openings convict.
    pub strict: bool,
    /// Seed of the deterministic challenge-round schedule.
    pub seed: u64,
}

impl AuditPolicy {
    /// Challenge every round; missing openings convict.
    pub fn strict() -> AuditPolicy {
        AuditPolicy { challenge_rate: 1.0, strict: true, seed: 0 }
    }

    /// Challenge every round; missing openings degrade to transport
    /// errors (crash-tolerant), inconsistent openings still convict.
    pub fn resilient() -> AuditPolicy {
        AuditPolicy { challenge_rate: 1.0, strict: false, seed: 0 }
    }

    /// Challenge a seeded `rate` fraction of rounds, strict.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn sampled(rate: f64, seed: u64) -> AuditPolicy {
        assert!((0.0..=1.0).contains(&rate), "challenge rate out of range");
        AuditPolicy { challenge_rate: rate, strict: true, seed }
    }

    /// Whether `round_id` is a challenge round under this policy: a
    /// deterministic function of the policy seed and the round id, so
    /// both servers agree without coordination.
    pub fn is_challenge(&self, round_id: u64) -> bool {
        if self.challenge_rate >= 1.0 {
            return true;
        }
        if self.challenge_rate <= 0.0 {
            return false;
        }
        let h = mix(self.seed ^ 0xc4a1_1e46_e5ee_d000, round_id);
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.challenge_rate
    }
}

/// The audit bookkeeping one server carries across a round attempt:
/// policy, challenge decision, and cross-step context (the peer's
/// verified second-Blind-and-Permute permutation digest, which
/// Restoration is checked against).
#[derive(Debug, Clone)]
pub struct AuditContext {
    policy: Option<AuditPolicy>,
    round_id: u64,
    self_party: PartyId,
    challenge: bool,
    /// Replayed digest of the peer's BP2 permutation, learned when the
    /// second Blind-and-Permute was challenge-verified (or restored
    /// from a checkpoint). Restoration's permutation must match it.
    peer_perm: Option<u64>,
    /// `(step, commitment)` pairs this server has sent so far, persisted
    /// into checkpoints so a resumed round re-verifies with the same
    /// committed material.
    commitments: Vec<(Step, u64)>,
}

impl AuditContext {
    /// A context for one server's round attempt. `policy: None` disables
    /// auditing entirely (no frames, no digests).
    pub fn new(policy: Option<AuditPolicy>, round_id: u64, self_party: PartyId) -> AuditContext {
        let challenge = policy.as_ref().is_some_and(|p| p.is_challenge(round_id));
        AuditContext {
            policy,
            round_id,
            self_party,
            challenge,
            peer_perm: None,
            commitments: Vec::new(),
        }
    }

    /// A disabled context (no auditing).
    pub fn disabled(self_party: PartyId) -> AuditContext {
        AuditContext::new(None, 0, self_party)
    }

    /// Whether this round is a challenge round.
    pub fn is_challenge(&self) -> bool {
        self.challenge
    }

    /// Builds the tap for one audited step. `step_seed` must be the
    /// seed the server's step RNG is built from; `byzantine` is the
    /// covert deviation the fault plan schedules here, if any.
    pub fn tap(
        &mut self,
        step: Step,
        step_seed: u64,
        byzantine: Option<ByzantineAction>,
    ) -> AuditTap {
        let Some(policy) = self.policy else {
            // A planned deviation still fires with auditing off — the
            // attack does not care whether the defense is watching.
            return AuditTap { byzantine, inner: None };
        };
        let commitment = commit_seed(step_seed, step, self.round_id);
        if !self.commitments.iter().any(|&(s, _)| s == step) {
            self.commitments.push((step, commitment));
        }
        AuditTap {
            byzantine,
            inner: Some(Box::new(TapInner {
                step,
                round_id: self.round_id,
                peer: peer_of(self.self_party),
                seed: step_seed,
                commitment,
                challenge: self.challenge,
                strict: policy.strict,
                sent: fnv1a_start(),
                received: fnv1a_start(),
                perm: fnv1a_start(),
                masks: fnv1a_start(),
                peer_commitment: None,
                expected_peer_perm: self.peer_perm,
                learned_peer_perm: None,
            })),
        }
    }

    /// Absorbs what a completed step's tap learned (the peer's verified
    /// BP2 permutation digest, needed later by Restoration).
    pub fn complete(&mut self, tap: &AuditTap) {
        if let Some(inner) = &tap.inner {
            if inner.step == Step::BlindPermute2 {
                if let Some(d) = inner.learned_peer_perm {
                    self.peer_perm = Some(d);
                }
            }
        }
    }

    /// Snapshot for durable round checkpoints.
    pub fn checkpoint(&self) -> AuditCheckpoint {
        AuditCheckpoint { commitments: self.commitments.clone(), peer_perm: self.peer_perm }
    }

    /// Restores a context from a checkpointed snapshot: the same policy
    /// and round id, plus the persisted cross-step audit material — a
    /// resumed round re-verifies from the same commitments instead of
    /// re-charging.
    pub fn restore(
        policy: Option<AuditPolicy>,
        round_id: u64,
        self_party: PartyId,
        ckpt: AuditCheckpoint,
    ) -> AuditContext {
        let mut ctx = AuditContext::new(policy, round_id, self_party);
        ctx.peer_perm = ckpt.peer_perm;
        ctx.commitments = ckpt.commitments;
        ctx
    }
}

/// The other server.
fn peer_of(party: PartyId) -> PartyId {
    match party {
        PartyId::Server1 => PartyId::Server2,
        PartyId::Server2 => PartyId::Server1,
        PartyId::User(_) => unreachable!("only servers are audited"),
    }
}

/// The durable audit state embedded in round checkpoints alongside the
/// [`crate::RoundState`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditCheckpoint {
    /// `(step, commitment)` pairs sent before the crash.
    pub commitments: Vec<(Step, u64)>,
    /// The peer's verified BP2 permutation digest, if learned.
    pub peer_perm: Option<u64>,
}

impl Wire for AuditCheckpoint {
    fn encode(&self, buf: &mut BytesMut) {
        (self.commitments.len() as u32).encode(buf);
        for &(step, c) in &self.commitments {
            step.encode(buf);
            c.encode(buf);
        }
        self.peer_perm.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        if n > Step::ALL.len() {
            return Err(WireError::Malformed("more audit commitments than steps"));
        }
        let mut commitments = Vec::with_capacity(n);
        for _ in 0..n {
            commitments.push((Step::decode(buf)?, u64::decode(buf)?));
        }
        Ok(AuditCheckpoint { commitments, peer_perm: Option::decode(buf)? })
    }
}

/// An audit frame on the S1↔S2 link, tagged with the audited step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMsg {
    /// The pre-step hash commitment over `(seed, step, round_id)`.
    Commit(u64),
    /// A challenge-round opening: the seed plus the attested digests.
    Open {
        /// The step seed the commitment binds.
        seed: u64,
        /// Digest of every content frame the server sent this step.
        sent: u64,
        /// Digest of the permutation the server applied.
        perm: u64,
        /// Digest of the masks the server used.
        masks: u64,
    },
}

impl Wire for AuditMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            AuditMsg::Commit(c) => {
                buf.put_u8(0);
                c.encode(buf);
            }
            AuditMsg::Open { seed, sent, perm, masks } => {
                buf.put_u8(1);
                seed.encode(buf);
                sent.encode(buf);
                perm.encode(buf);
                masks.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(AuditMsg::Commit(u64::decode(buf)?)),
            1 => Ok(AuditMsg::Open {
                seed: u64::decode(buf)?,
                sent: u64::decode(buf)?,
                perm: u64::decode(buf)?,
                masks: u64::decode(buf)?,
            }),
            tag => Err(WireError::InvalidTag(tag)),
        }
    }
}

/// Everything the tap tracks for one audited step on one server.
#[derive(Debug, Clone)]
struct TapInner {
    step: Step,
    round_id: u64,
    peer: PartyId,
    seed: u64,
    commitment: u64,
    challenge: bool,
    strict: bool,
    sent: u64,
    received: u64,
    perm: u64,
    masks: u64,
    peer_commitment: Option<u64>,
    expected_peer_perm: Option<u64>,
    learned_peer_perm: Option<u64>,
}

/// The per-step audit transcript recorder threaded through the
/// Blind-and-Permute and Restoration protocol functions. A disabled tap
/// (audit off) is a zero-cost no-op on every call.
#[derive(Debug, Clone)]
pub struct AuditTap {
    byzantine: Option<ByzantineAction>,
    inner: Option<Box<TapInner>>,
}

impl AuditTap {
    /// A tap that records nothing and exchanges no frames — what
    /// non-audited runs and unit tests pass.
    pub fn disabled() -> AuditTap {
        AuditTap { byzantine: None, inner: None }
    }

    /// A recording-disabled tap that still carries a planned covert
    /// deviation — what the engine builds when a Byzantine fault is
    /// scheduled but auditing is off.
    pub fn with_byzantine(action: ByzantineAction) -> AuditTap {
        AuditTap { byzantine: Some(action), inner: None }
    }

    /// Whether the tap is live (audit enabled for this step).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The covert deviation the fault plan schedules at this step for
    /// this server, if any — protocol functions consult this at each
    /// deviation site.
    pub fn byzantine(&self) -> Option<ByzantineAction> {
        self.byzantine
    }

    /// Exchanges pre-step commitments: sends this server's commitment,
    /// receives the peer's. Must be the first thing an audited protocol
    /// function does, so the commitment frame leads every content frame
    /// in the step's FIFO stream.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn begin(&mut self, endpoint: &mut Endpoint) -> Result<(), SmcError> {
        let Some(inner) = self.inner.as_deref_mut() else { return Ok(()) };
        endpoint.send(inner.peer, inner.step, &AuditMsg::Commit(inner.commitment))?;
        match endpoint.recv::<AuditMsg>(inner.peer, inner.step)? {
            AuditMsg::Commit(c) => inner.peer_commitment = Some(c),
            AuditMsg::Open { .. } => {
                return Err(SmcError::AuditFailure {
                    party: inner.peer,
                    step: inner.step,
                    evidence: AuditEvidence::MissingOpening,
                })
            }
        }
        Ok(())
    }

    /// Attests to a content frame this server is about to send.
    pub fn record_sent<T: Wire>(&mut self, value: &T) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.sent = fnv1a(inner.sent, &value.to_bytes());
        }
    }

    /// Records a content frame received from the peer.
    pub fn record_received<T: Wire>(&mut self, value: &T) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.received = fnv1a(inner.received, &value.to_bytes());
        }
    }

    /// Attests to the permutation this server actually applied.
    pub fn permutation(&mut self, pi: &Permutation) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.perm = fold_permutation(inner.perm, pi);
        }
    }

    /// Attests to masks this server actually used (appended in draw
    /// order).
    pub fn masks(&mut self, masks: &[i128]) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.masks = fold_masks(inner.masks, masks);
        }
    }

    /// In a challenge round, opens this server's commitment: sends the
    /// seed and the attested digests. Call after the step's *last*
    /// content send, so the opening trails every content frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn flush_opening(&mut self, endpoint: &mut Endpoint) -> Result<(), SmcError> {
        let Some(inner) = self.inner.as_deref_mut() else { return Ok(()) };
        if !inner.challenge {
            return Ok(());
        }
        let open = AuditMsg::Open {
            seed: inner.seed,
            sent: inner.sent,
            perm: inner.perm,
            masks: inner.masks,
        };
        endpoint.send(inner.peer, inner.step, &open)?;
        Ok(())
    }

    /// In a challenge round, receives and verifies the peer's opening:
    /// commitment binding, transcript digest, and a full replay of the
    /// permutation/mask draws from the opened seed. Call after the
    /// step's *last* content receive and **before** using any data the
    /// peer produced.
    ///
    /// `k` is the permuted vector length, `m` the number of per-vector
    /// masks the peer drew this step.
    ///
    /// # Errors
    ///
    /// [`SmcError::AuditFailure`] naming the peer on any mismatch;
    /// transport errors when the opening never arrives (strict mode
    /// converts those to [`AuditEvidence::MissingOpening`]).
    pub fn verify_peer(
        &mut self,
        endpoint: &mut Endpoint,
        k: usize,
        m: usize,
        domain: &ShareDomain,
    ) -> Result<(), SmcError> {
        let Some(inner) = self.inner.as_deref_mut() else { return Ok(()) };
        if !inner.challenge {
            return Ok(());
        }
        let meter = std::sync::Arc::clone(endpoint.meter());
        meter.record_fault(FaultEvent::AuditChallenge);
        let fail = |evidence: AuditEvidence| {
            meter.record_fault(FaultEvent::AuditFailureDetected);
            if matches!(
                evidence,
                AuditEvidence::TranscriptDivergence { .. }
                    | AuditEvidence::CommitmentMismatch { .. }
            ) {
                meter.record_fault(FaultEvent::EquivocationDetected);
            }
            Err(SmcError::AuditFailure { party: inner.peer, step: inner.step, evidence })
        };
        let open = match endpoint.recv::<AuditMsg>(inner.peer, inner.step) {
            Ok(AuditMsg::Open { seed, sent, perm, masks }) => (seed, sent, perm, masks),
            Ok(AuditMsg::Commit(_)) => return fail(AuditEvidence::MissingOpening),
            Err(TransportError::Timeout(_) | TransportError::Disconnected(_)) if inner.strict => {
                return fail(AuditEvidence::MissingOpening);
            }
            Err(e) => return Err(e.into()),
        };
        let (seed, sent, perm, masks) = open;
        let committed = inner.peer_commitment.unwrap_or(0);
        let reopened = commit_seed(seed, inner.step, inner.round_id);
        if reopened != committed {
            return fail(AuditEvidence::CommitmentMismatch { committed, reopened });
        }
        if sent != inner.received {
            return fail(AuditEvidence::TranscriptDivergence {
                attested: sent,
                observed: inner.received,
            });
        }
        // Replay the peer's draws from the opened seed.
        let (expected_perm, expected_masks) =
            replay_draws(seed, inner.step, inner.peer, k, m, domain);
        match expected_perm {
            Some(expected) if expected != perm => {
                return fail(AuditEvidence::PermutationMismatch { expected, used: perm });
            }
            Some(expected) => {
                if inner.step == Step::BlindPermute2 {
                    inner.learned_peer_perm = Some(expected);
                }
            }
            // Restoration: the permutation is not drawn here — it must
            // match the peer's verified BP2 permutation.
            None => {
                if let Some(expected) = inner.expected_peer_perm {
                    if expected != perm {
                        return fail(AuditEvidence::PermutationMismatch { expected, used: perm });
                    }
                }
            }
        }
        if expected_masks != masks {
            return fail(AuditEvidence::MaskMismatch { expected: expected_masks, used: masks });
        }
        Ok(())
    }
}

/// Folds a permutation's index vector into a digest.
fn fold_permutation(h: u64, pi: &Permutation) -> u64 {
    let mut h = h;
    for &i in pi.as_indices() {
        h = fnv1a(h, &(i as u64).to_le_bytes());
    }
    h
}

/// Folds masks (in draw order) into a digest.
fn fold_masks(h: u64, masks: &[i128]) -> u64 {
    let mut h = h;
    for &m in masks {
        h = fnv1a(h, &m.to_le_bytes());
    }
    h
}

/// Replays the permutation and mask draws a server makes at an audited
/// step from its (opened) seed, returning their digests. The draw order
/// mirrors the protocol implementations exactly:
///
/// * Blind-and-Permute (either server): one `Permutation::random(k)`
///   then `m` scalar mask draws;
/// * Restoration S1: `k` mask draws (the permutation comes from BP2);
/// * Restoration S2: `k` encryption seeds (the indicator encryption
///   consumes one `u64` per entry *before* the masks), then `k` mask
///   draws.
fn replay_draws(
    seed: u64,
    step: Step,
    party: PartyId,
    k: usize,
    m: usize,
    domain: &ShareDomain,
) -> (Option<u64>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    match step {
        Step::Restoration => {
            if party == PartyId::Server2 {
                for _ in 0..k {
                    let _: u64 = rng.gen();
                }
            }
            let masks: Vec<i128> = (0..k).map(|_| domain.random_mask(&mut rng)).collect();
            (None, fold_masks(fnv1a_start(), &masks))
        }
        _ => {
            let pi = Permutation::random(k, &mut rng);
            let masks: Vec<i128> = (0..m).map(|_| domain.random_mask(&mut rng)).collect();
            (Some(fold_permutation(fnv1a_start(), &pi)), fold_masks(fnv1a_start(), &masks))
        }
    }
}

/// Swaps the first two images of `pi` — the deterministic
/// "tampered permutation" a Byzantine server substitutes for its
/// committed draw. With `k < 2` there is nothing to swap and the
/// deviation is a no-op (and undetectable, since the tampered
/// permutation equals the committed one).
pub fn transpose01(pi: &Permutation) -> Permutation {
    let mut indices = pi.as_indices().to_vec();
    if indices.len() >= 2 {
        indices.swap(0, 1);
    }
    Permutation::from_indices(indices).expect("swapping two entries preserves the bijection")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> ShareDomain {
        ShareDomain::test()
    }

    #[test]
    fn fnv_single_byte_substitution_changes_digest() {
        let base = fnv1a(fnv1a_start(), b"transcript");
        for i in 0..b"transcript".len() {
            let mut copy = b"transcript".to_vec();
            copy[i] ^= 0x01;
            assert_ne!(fnv1a(fnv1a_start(), &copy), base, "byte {i}");
        }
    }

    #[test]
    fn commitment_binds_all_three_coordinates() {
        let c = commit_seed(7, Step::BlindPermute1, 3);
        assert_eq!(c, commit_seed(7, Step::BlindPermute1, 3));
        assert_ne!(c, commit_seed(8, Step::BlindPermute1, 3));
        assert_ne!(c, commit_seed(7, Step::BlindPermute2, 3));
        assert_ne!(c, commit_seed(7, Step::BlindPermute1, 4));
    }

    #[test]
    fn challenge_schedule_is_deterministic_and_rate_shaped() {
        let all = AuditPolicy::strict();
        let none = AuditPolicy::sampled(0.0, 9);
        let half = AuditPolicy::sampled(0.5, 9);
        assert!((0..32).all(|r| all.is_challenge(r)));
        assert!((0..32).all(|r| !none.is_challenge(r)));
        let hits = (0..2000).filter(|&r| half.is_challenge(r)).count();
        assert!((800..=1200).contains(&hits), "expected ~1000 challenges, got {hits}");
        // Deterministic: both servers agree round by round.
        for r in 0..64 {
            assert_eq!(half.is_challenge(r), half.is_challenge(r));
        }
    }

    #[test]
    fn audit_msg_roundtrips() {
        for msg in
            [AuditMsg::Commit(0xdead_beef), AuditMsg::Open { seed: 1, sent: 2, perm: 3, masks: 4 }]
        {
            assert_eq!(AuditMsg::from_bytes(msg.to_bytes()).unwrap(), msg);
        }
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert_eq!(AuditMsg::from_bytes(buf.freeze()), Err(WireError::InvalidTag(9)));
    }

    #[test]
    fn audit_checkpoint_roundtrips() {
        let ckpt = AuditCheckpoint {
            commitments: vec![(Step::BlindPermute1, 11), (Step::BlindPermute2, 22)],
            peer_perm: Some(33),
        };
        assert_eq!(AuditCheckpoint::from_bytes(ckpt.to_bytes()).unwrap(), ckpt);
        let empty = AuditCheckpoint::default();
        assert_eq!(AuditCheckpoint::from_bytes(empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn replay_matches_protocol_draw_order_for_blind_permute() {
        // The protocol draws pi then m masks from the step RNG; replaying
        // from the same seed must reproduce both digests.
        let seed = 0x5eed;
        let (k, m) = (5, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let pi = Permutation::random(k, &mut rng);
        let masks: Vec<i128> = (0..m).map(|_| domain().random_mask(&mut rng)).collect();
        let (perm_d, mask_d) =
            replay_draws(seed, Step::BlindPermute1, PartyId::Server1, k, m, &domain());
        assert_eq!(perm_d, Some(fold_permutation(fnv1a_start(), &pi)));
        assert_eq!(mask_d, fold_masks(fnv1a_start(), &masks));
    }

    #[test]
    fn replay_skips_indicator_seeds_for_s2_restoration() {
        let seed = 0xabc;
        let k = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..k {
            let _: u64 = rng.gen();
        }
        let masks: Vec<i128> = (0..k).map(|_| domain().random_mask(&mut rng)).collect();
        let (perm_d, mask_d) =
            replay_draws(seed, Step::Restoration, PartyId::Server2, k, 0, &domain());
        assert_eq!(perm_d, None);
        assert_eq!(mask_d, fold_masks(fnv1a_start(), &masks));
        // S1 draws masks immediately — a different digest for the same seed.
        let (_, s1_masks) =
            replay_draws(seed, Step::Restoration, PartyId::Server1, k, 0, &domain());
        assert_ne!(s1_masks, mask_d);
    }

    #[test]
    fn transpose01_swaps_and_preserves_bijection() {
        let pi = Permutation::from_indices(vec![2, 0, 1]).unwrap();
        let t = transpose01(&pi);
        assert_eq!(t.as_indices(), &[0, 2, 1]);
        let single = Permutation::identity(1);
        assert_eq!(transpose01(&single), single);
    }

    #[test]
    fn disabled_tap_is_inert() {
        let mut tap = AuditTap::disabled();
        assert!(!tap.is_enabled());
        assert_eq!(tap.byzantine(), None);
        tap.permutation(&Permutation::identity(3));
        tap.masks(&[1, 2, 3]);
        tap.record_sent(&42u64);
        // begin/flush/verify need an endpoint; the disabled guard makes
        // them no-ops, exercised end to end by the engine tests.
    }

    #[test]
    fn context_learns_peer_perm_only_from_bp2() {
        let mut ctx = AuditContext::new(Some(AuditPolicy::strict()), 0, PartyId::Server1);
        assert!(ctx.is_challenge());
        let mut tap = ctx.tap(Step::BlindPermute2, 99, None);
        tap.inner.as_deref_mut().unwrap().learned_peer_perm = Some(123);
        ctx.complete(&tap);
        assert_eq!(ctx.checkpoint().peer_perm, Some(123));
        // Restored contexts carry it into Restoration taps.
        let restored = AuditContext::restore(
            Some(AuditPolicy::strict()),
            0,
            PartyId::Server1,
            ctx.checkpoint(),
        );
        let mut r = restored.clone();
        let tap = r.tap(Step::Restoration, 7, None);
        assert_eq!(tap.inner.as_deref().unwrap().expected_peer_perm, Some(123));
    }
}
