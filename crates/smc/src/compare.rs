//! Secure comparison of server-held signed values over channels.
//!
//! Wraps the DGK protocol (see [`dgk::comparison`]) in the form Alg. 5
//! needs: S1 privately holds `x`, S2 privately holds `y`, and both learn
//! the single bit `x ≥ y`. Following Eqn. 6/7 this decides both the vote
//! ranking (with `x = ã_i − ã_j`, `y = b̃_j − b̃_i`) and the threshold
//! check (with `x`, `y` the two sides' threshold sequences at the winning
//! slot).
//!
//! Signed inputs are shifted by the public domain offset before the
//! bitwise protocol, which preserves order. The underlying DGK
//! encryptions and zero tests run on the key's cached exponentiation
//! state, shared by both servers' cloned contexts. S1 is always the DGK
//! evaluator: it bit-encrypts `x`, S2 blinds with `y`, S1 zero-tests and
//! shares the outcome — `x ≥ y ⟺ ¬(y > x)`.

use dgk::comparison::{
    blinder_build_witnesses_par, evaluator_decide_par, evaluator_encrypt_bits_par,
    BlindedWitnesses, EvaluatorBits,
};
use rand::Rng;
use transport::{Endpoint, PartyId, Step};

use crate::error::SmcError;
use crate::session::ServerContext;

/// S1's side: compare own `x` against S2's hidden `y`; returns `x ≥ y`.
///
/// # Errors
///
/// Fails if `x` escapes the comparison domain or on transport errors.
pub fn server1_compare_geq<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    x: i128,
    step: Step,
    rng: &mut R,
) -> Result<bool, SmcError> {
    let encoded = ctx.domain().encode_compare(x)?;
    let keys = ctx.dgk_keys();
    let par = ctx.parallelism();
    let round1 = evaluator_encrypt_bits_par(encoded, keys.public_key(), par, rng)?;
    endpoint.send(PartyId::Server2, step, &round1)?;
    let round2: BlindedWitnesses = endpoint.recv(PartyId::Server2, step)?;
    let y_gt_x = evaluator_decide_par(&round2, keys.private_key(), par)?;
    let geq = !y_gt_x;
    endpoint.send(PartyId::Server2, step, &geq)?;
    Ok(geq)
}

/// S2's side: compare S1's hidden `x` against own `y`; returns `x ≥ y`.
///
/// # Errors
///
/// Fails if `y` escapes the comparison domain or on transport errors.
pub fn server2_compare_geq<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    y: i128,
    step: Step,
    rng: &mut R,
) -> Result<bool, SmcError> {
    let encoded = ctx.domain().encode_compare(y)?;
    let round1: EvaluatorBits = endpoint.recv(PartyId::Server1, step)?;
    let round2 =
        blinder_build_witnesses_par(encoded, &round1, ctx.dgk_public(), ctx.parallelism(), rng)?;
    endpoint.send(PartyId::Server1, step, &round2)?;
    let geq: bool = endpoint.recv(PartyId::Server1, step)?;
    Ok(geq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use transport::Network;

    fn keys() -> &'static SessionKeys {
        static KEYS: OnceLock<SessionKeys> = OnceLock::new();
        KEYS.get_or_init(|| {
            SessionKeys::generate(SessionConfig::test(1, 2), &mut StdRng::seed_from_u64(31))
        })
    }

    fn run_compare(x: i128, y: i128, seed: u64) -> (bool, bool) {
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                server1_compare_geq(&mut s1, &s1_ctx, x, Step::CompareRank, &mut rng).unwrap()
            });
            let h2 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                server2_compare_geq(&mut s2, &s2_ctx, y, Step::CompareRank, &mut rng).unwrap()
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
    }

    #[test]
    fn both_servers_agree_on_outcome() {
        for (x, y) in [(5i128, 3i128), (3, 5), (7, 7), (-10, 2), (2, -10), (-4, -4), (0, 0)] {
            let (r1, r2) = run_compare(x, y, 100 + (x + 2 * y + 40) as u64);
            assert_eq!(r1, r2, "servers disagree for ({x}, {y})");
            assert_eq!(r1, x >= y, "wrong outcome for ({x}, {y})");
        }
    }

    #[test]
    fn near_domain_boundary() {
        let offset = keys().config().domain.compare_offset();
        let big = offset - 1;
        assert!(run_compare(big, -big, 7).0);
        assert!(!run_compare(-big, big, 8).0);
        assert!(run_compare(big, big, 9).0);
    }

    #[test]
    fn out_of_domain_rejected_locally() {
        let s1_ctx = keys().server1();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let offset = s1_ctx.domain().compare_offset();
        let mut rng = StdRng::seed_from_u64(1);
        let err =
            server1_compare_geq(&mut s1, &s1_ctx, offset, Step::CompareRank, &mut rng).unwrap_err();
        assert!(matches!(err, SmcError::Domain(_)));
    }

    #[test]
    fn comparison_traffic_is_metered() {
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        let meter = std::sync::Arc::clone(net.meter());
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2);
                server1_compare_geq(&mut s1, &s1_ctx, 9, Step::ThresholdCheck, &mut rng).unwrap()
            });
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(3);
                server2_compare_geq(&mut s2, &s2_ctx, 4, Step::ThresholdCheck, &mut rng).unwrap()
            });
        });
        let report = meter.report();
        // ℓ bit encryptions + ℓ witnesses + 1 result bit — substantial traffic.
        assert!(report.step_bytes(Step::ThresholdCheck) > 100);
    }
}
