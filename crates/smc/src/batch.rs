//! Batched secure ranking — a round-complexity optimization.
//!
//! The paper's step 4/8 runs `K(K−1)/2` DGK comparisons *sequentially*,
//! each a 3-message dialogue: `O(K²)` network rounds. Over a WAN (see
//! [`transport::latency`]) latency dominates, so this module batches all
//! pairwise comparisons of one ranking into exactly **three** messages:
//!
//! 1. S1 bit-encrypts all `K(K−1)/2` left-hand differences and ships
//!    them in one message;
//! 2. S2 blinds all witnesses against its right-hand differences and
//!    ships them back in one message;
//! 3. S1 zero-tests everything and broadcasts the outcome bit-vector.
//!
//! Computation and traffic volume are unchanged (same DGK work, same
//! bytes, all of it on the DGK key's cached contexts and fixed-base
//! tables); only the round count drops. The outcome is bit-identical to
//! the sequential [`crate::argmax`] (asserted by tests), making this the
//! "batched vs sequential" ablation DESIGN.md §5 calls for.

use dgk::comparison::{
    blinder_build_witnesses_par, evaluator_encrypt_bits_par, BlindedWitnesses, EvaluatorBits,
};
use rand::Rng;
use transport::{Endpoint, PartyId, Step};

use crate::costs;
use crate::error::SmcError;
use crate::session::ServerContext;

/// The ordered index pairs `(i, j), i < j` of a `K`-element ranking.
fn pairs(k: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            out.push((i, j));
        }
    }
    out
}

/// Shared tally: winner slot from the pairwise outcome bits (same logic
/// as the sequential argmax, kept in lockstep by tests).
fn winner_from_outcomes(k: usize, outcomes: &[bool]) -> usize {
    let mut wins = vec![0usize; k];
    for ((i, j), &geq) in pairs(k).into_iter().zip(outcomes) {
        if geq {
            wins[i] += 1;
        } else {
            wins[j] += 1;
        }
    }
    let best = *wins.iter().max().expect("k >= 1");
    wins.iter().position(|&w| w == best).expect("max exists")
}

/// S1's side of the batched all-pairs argmax. Returns the winning
/// permuted slot.
///
/// # Errors
///
/// Fails on domain, cryptosystem or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server1_argmax_batched<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    let k = sequence.len();
    assert!(k >= 1, "argmax needs at least one element");
    let keys = ctx.dgk_keys();
    let domain = ctx.domain();
    let par = ctx.parallelism();

    // Round 1: bit-encrypt every left-hand difference in one message.
    // The K(K-1)/2 pairs fan out, each pair's ℓ bit encryptions on its
    // own seed-derived RNG stream.
    let leg_par = par.with_item_cost_ns(costs::dgk_compare_leg_cost_ns(keys.public_key()));
    let round1: Vec<EvaluatorBits> =
        leg_par.try_map_seeded(&pairs(k), rng, |_, &(i, j), item_rng| {
            let encoded = domain.encode_compare(sequence[i] - sequence[j])?;
            Ok::<_, SmcError>(evaluator_encrypt_bits_par(
                encoded,
                keys.public_key(),
                &parallel::Parallelism::sequential(),
                item_rng,
            )?)
        })?;
    endpoint.send(PartyId::Server2, step, &round1)?;

    // Round 2: all blinded witness sets come back together.
    let round2: Vec<BlindedWitnesses> = endpoint.recv(PartyId::Server2, step)?;
    if round2.len() != round1.len() {
        return Err(SmcError::LengthMismatch { expected: round1.len(), got: round2.len() });
    }

    // Round 3: zero-test everything, broadcast the outcome bits. The
    // per-pair zero tests are RNG-free, so the fan-out is a plain map;
    // each pair's ℓ witnesses run through the scratch-reusing batched CRT
    // zero test. (Unlike the sequential early-exit scan, the batched test
    // surfaces a malformed ciphertext even when a zero precedes it —
    // strictly stricter, and identical on honest traffic.)
    let outcomes: Vec<bool> = leg_par.try_map(&round2, |_, w| {
        let zeros = keys.private_key().is_zero_batch(&w.witnesses)?;
        Ok::<_, SmcError>(!zeros.into_iter().any(|z| z))
    })?;
    endpoint.send(PartyId::Server2, step, &outcomes)?;

    Ok(winner_from_outcomes(k, &outcomes))
}

/// S2's side of the batched all-pairs argmax.
///
/// # Errors
///
/// Fails on domain, cryptosystem or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server2_argmax_batched<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    let k = sequence.len();
    assert!(k >= 1, "argmax needs at least one element");
    let pk = ctx.dgk_public();
    let domain = ctx.domain();
    let par = ctx.parallelism();

    let round1: Vec<EvaluatorBits> = endpoint.recv(PartyId::Server1, step)?;
    let expected = k * (k - 1) / 2;
    if round1.len() != expected {
        return Err(SmcError::LengthMismatch { expected, got: round1.len() });
    }

    // The witness builds dominate the round's cost: fan out per pair,
    // each pair blinding on its own seed-derived RNG stream.
    let leg_par = par.with_item_cost_ns(costs::dgk_compare_leg_cost_ns(pk));
    let round2: Vec<BlindedWitnesses> =
        leg_par.try_map_seeded(&pairs(k), rng, |p, &(i, j), item_rng| {
            let encoded = domain.encode_compare(sequence[j] - sequence[i])?;
            Ok::<_, SmcError>(blinder_build_witnesses_par(
                encoded,
                &round1[p],
                pk,
                &parallel::Parallelism::sequential(),
                item_rng,
            )?)
        })?;
    endpoint.send(PartyId::Server1, step, &round2)?;

    let outcomes: Vec<bool> = endpoint.recv(PartyId::Server1, step)?;
    if outcomes.len() != expected {
        return Err(SmcError::LengthMismatch { expected, got: outcomes.len() });
    }
    Ok(winner_from_outcomes(k, &outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use transport::{LinkKind, Network};

    fn keys() -> &'static SessionKeys {
        static KEYS: OnceLock<SessionKeys> = OnceLock::new();
        KEYS.get_or_init(|| {
            SessionKeys::generate(SessionConfig::test(1, 4), &mut StdRng::seed_from_u64(61))
        })
    }

    fn run_batched(xs: Vec<i128>, ys: Vec<i128>, seed: u64) -> (usize, usize, u64) {
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(transport::PartyId::Server1);
        let mut s2 = net.take_endpoint(transport::PartyId::Server2);
        let meter = std::sync::Arc::clone(net.meter());
        let (w1, w2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                server1_argmax_batched(&mut s1, &s1_ctx, &xs, Step::CompareRank, &mut rng).unwrap()
            });
            let h2 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                server2_argmax_batched(&mut s2, &s2_ctx, &ys, Step::CompareRank, &mut rng).unwrap()
            });
            (h1.join().unwrap(), h2.join().unwrap())
        });
        let messages =
            meter.report().link_stats(Step::CompareRank, LinkKind::ServerToServer).messages;
        (w1, w2, messages)
    }

    fn plain_argmax(totals: &[i128]) -> usize {
        let mut best = 0;
        for (i, &v) in totals.iter().enumerate() {
            if v > totals[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn batched_finds_the_hidden_maximum() {
        let cases = [
            (vec![100i128, -5, 30, 2], vec![1i128, 2, 3, 4]),
            (vec![0i128, 0, 0, 1], vec![0i128, 0, 0, 0]),
            (vec![-50i128, -40, -60, -45], vec![10i128, -10, 25, 3]),
        ];
        for (seed, (xs, ys)) in cases.into_iter().enumerate() {
            let totals: Vec<i128> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
            let expect = plain_argmax(&totals);
            let (w1, w2, _) = run_batched(xs, ys, 700 + seed as u64);
            assert_eq!(w1, w2, "servers must agree");
            assert_eq!(w1, expect, "case {seed}");
        }
    }

    #[test]
    fn exactly_three_messages() {
        let (_, _, messages) = run_batched(vec![5, 1, 9, 3], vec![0, 0, 0, 0], 800);
        assert_eq!(messages, 3, "batched ranking is a 3-message protocol");
    }

    #[test]
    fn ties_break_identically_to_sequential() {
        // Same tally logic as argmax::winner_from_pairwise: slot 0 wins
        // the [5, 5, 1, 5] tie.
        let (w1, w2, _) = run_batched(vec![5, 5, 1, 5], vec![0, 0, 0, 0], 801);
        assert_eq!((w1, w2), (0, 0));
    }

    #[test]
    fn singleton_needs_no_comparison() {
        let s1_ctx = keys().server1();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(transport::PartyId::Server1);
        let mut s2 = net.take_endpoint(transport::PartyId::Server2);
        let s2_ctx = keys().server2();
        std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1);
                server1_argmax_batched(&mut s1, &s1_ctx, &[7], Step::CompareRank, &mut rng).unwrap()
            });
            let h2 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2);
                server2_argmax_batched(&mut s2, &s2_ctx, &[7], Step::CompareRank, &mut rng).unwrap()
            });
            assert_eq!(h1.join().unwrap(), 0);
            assert_eq!(h2.join().unwrap(), 0);
        });
    }
}
