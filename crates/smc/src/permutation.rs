//! Uniformly random permutations and their algebra.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A permutation of `{0, …, K−1}`, stored as the image list: element at
/// input position `i` moves to output position `perm.apply_index(i)`.
///
/// Concretely, `apply(&xs)[j] = xs[indices[j]]` — `indices[j]` names which
/// input lands at output slot `j`.
///
/// # Examples
///
/// ```
/// use smc::Permutation;
///
/// let p = Permutation::from_indices(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
/// let inv = p.inverse();
/// assert_eq!(inv.apply(&p.apply(&[10, 20, 30])), vec![10, 20, 30]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permutation {
    /// `indices[j]` = the input position that lands at output slot `j`.
    indices: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `k` elements.
    pub fn identity(k: usize) -> Self {
        Permutation { indices: (0..k).collect() }
    }

    /// Samples a uniform permutation on `k` elements (Fisher–Yates).
    pub fn random<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let mut indices: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        Permutation { indices }
    }

    /// Builds from an explicit image list; returns `None` if it is not a
    /// permutation of `0..len`.
    pub fn from_indices(indices: Vec<usize>) -> Option<Self> {
        let mut seen = vec![false; indices.len()];
        for &i in &indices {
            if i >= indices.len() || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(Permutation { indices })
    }

    /// The number of elements permuted.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether this permutes zero elements.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The raw image list.
    pub fn as_indices(&self) -> &[usize] {
        &self.indices
    }

    /// Applies to a slice, producing the permuted vector.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != self.len()`.
    pub fn apply<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "length mismatch");
        self.indices.iter().map(|&i| xs[i].clone()).collect()
    }

    /// Where input position `i` ends up in the output.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn apply_index(&self, i: usize) -> usize {
        self.indices.iter().position(|&x| x == i).expect("index within permutation size")
    }

    /// Which input position feeds output slot `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len`.
    pub fn preimage_of(&self, j: usize) -> usize {
        self.indices[j]
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.len()];
        for (j, &i) in self.indices.iter().enumerate() {
            inv[i] = j;
        }
        Permutation { indices: inv }
    }

    /// Composition: `(self ∘ other)` applies `other` first, then `self`
    /// (matching `self.apply(&other.apply(xs))`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch");
        Permutation { indices: self.indices.iter().map(|&j| other.indices[j]).collect() }
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π{:?}", self.indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(4);
        assert_eq!(p.apply(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(p.apply_index(2), 2);
    }

    #[test]
    fn apply_moves_elements() {
        let p = Permutation::from_indices(vec![1, 2, 0]).unwrap();
        // output[0]=xs[1], output[1]=xs[2], output[2]=xs[0]
        assert_eq!(p.apply(&[10, 20, 30]), vec![20, 30, 10]);
        assert_eq!(p.apply_index(0), 2);
        assert_eq!(p.preimage_of(0), 1);
    }

    #[test]
    fn inverse_undoes() {
        let mut rng = StdRng::seed_from_u64(5);
        for k in [1usize, 2, 5, 10] {
            let p = Permutation::random(k, &mut rng);
            let xs: Vec<usize> = (0..k).collect();
            assert_eq!(p.inverse().apply(&p.apply(&xs)), xs);
            assert_eq!(p.compose(&p.inverse()), Permutation::identity(k));
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let mut rng = StdRng::seed_from_u64(6);
        let p1 = Permutation::random(6, &mut rng);
        let p2 = Permutation::random(6, &mut rng);
        let xs: Vec<u32> = (0..6).collect();
        assert_eq!(p1.compose(&p2).apply(&xs), p1.apply(&p2.apply(&xs)));
    }

    #[test]
    fn apply_index_consistent_with_apply() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Permutation::random(8, &mut rng);
        let xs: Vec<usize> = (0..8).collect();
        let ys = p.apply(&xs);
        for i in 0..8 {
            assert_eq!(ys[p.apply_index(i)], i);
        }
    }

    #[test]
    fn invalid_indices_rejected() {
        assert!(Permutation::from_indices(vec![0, 0]).is_none());
        assert!(Permutation::from_indices(vec![0, 2]).is_none());
        assert!(Permutation::from_indices(vec![]).is_some());
    }

    #[test]
    fn random_covers_all_orderings() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Permutation::random(3, &mut rng).indices.clone());
        }
        assert_eq!(seen.len(), 6, "all 3! orderings should appear");
    }

    #[test]
    fn empty_and_singleton() {
        let e = Permutation::random(0, &mut StdRng::seed_from_u64(9));
        assert!(e.is_empty());
        let s = Permutation::random(1, &mut StdRng::seed_from_u64(9));
        assert_eq!(s.apply(&[42]), vec![42]);
    }
}
