//! Adversarial input validation for the servers' receive paths.
//!
//! Every party is honest-but-curious in the paper's model. This
//! implementation hardens both directions of that assumption: *user*
//! encodings are never trusted — a flipped bit, a replayed upload or a
//! deliberately malformed ciphertext must be rejected with a typed
//! error before any homomorphic work touches it, never absorbed, never
//! a panic — and the *servers* themselves are held to covert security
//! by the commit-and-challenge layer in [`crate::audit`], which catches
//! a server deviating from its committed randomness with tunable
//! probability. [`UploadValidator`] centralizes the user-facing half:
//! the three checks every encrypted upload must pass:
//!
//! 1. **freshness** — the (sender, step, sequence) tuple has not been
//!    seen before (the transport de-duplicates redelivered envelopes;
//!    this catches a peer that re-numbers a replay);
//! 2. **arity** — the vector has exactly one entry per class;
//! 3. **well-formedness** — each ciphertext is a unit of `Z_{n²}`:
//!    non-zero, fully reduced, and coprime with `n`. This mirrors the
//!    check `PrivateKey::decrypt` performs, but runs it on the *public*
//!    side so a hostile value is refused at the door of the server that
//!    cannot decrypt it.
//!
//! Every rejection increments the matching [`transport::FaultEvent`]
//! counter on the round's [`Meter`], so chaos runs and operators can see
//! exactly what was refused and why.

use std::collections::HashMap;

use bigint::gcd::gcd;
use paillier::{Ciphertext, PublicKey};
use transport::{FaultEvent, Meter, PartyId, Step};

use crate::error::SmcError;

/// Stateful validator for one server's inbound uploads within a round.
///
/// Keep one instance per collection phase (its replay window is the set
/// of tuples it has seen); it is cheap — the per-ciphertext gcd is the
/// only non-trivial work, and it runs once per upload element.
///
/// The replay window is keyed per sender so the streaming aggregation
/// paths can [`UploadValidator::retire`] a user the moment its upload is
/// folded: a million-user round then holds freshness state only for the
/// handful of users currently in flight, not O(|U|) tuples for the whole
/// collection. Retiring is safe because the server *pulls* per-sender
/// streams — once a user's expected messages are drained and folded,
/// nothing is ever received from that user under that step again, so a
/// late replay is simply never read.
#[derive(Debug)]
pub struct UploadValidator {
    num_classes: usize,
    /// Per-sender freshness window: the (step, seq) tuples seen from each
    /// sender that has not been retired yet. A sender contributes at most
    /// a few entries (one per expected vector), so the inner scan is a
    /// short linear probe.
    seen: HashMap<PartyId, Vec<(Step, u64)>>,
}

impl UploadValidator {
    /// A validator expecting `num_classes` entries per uploaded vector.
    pub fn new(num_classes: usize) -> UploadValidator {
        UploadValidator { num_classes, seen: HashMap::new() }
    }

    /// Drops all freshness state held for `from` — called by the
    /// streaming aggregation paths once the sender's upload has been
    /// folded into a running partial sum (or the sender has been marked
    /// dropped), so validator memory tracks the in-flight window instead
    /// of growing O(|U|) over the round.
    pub fn retire(&mut self, from: PartyId) {
        self.seen.remove(&from);
    }

    /// Number of senders currently holding live freshness state — the
    /// streaming paths keep this bounded by one shard, not |U|.
    pub fn live_senders(&self) -> usize {
        self.seen.len()
    }

    /// Validates one received upload. On failure, records the matching
    /// rejection counter on `meter` and returns the typed error; the
    /// caller decides whether that is fatal (strict collection) or a
    /// dropout (resilient collection).
    ///
    /// # Errors
    ///
    /// [`SmcError::DuplicateSubmission`], [`SmcError::LengthMismatch`]
    /// or [`SmcError::InvalidCiphertext`], checked in that order.
    pub fn check(
        &mut self,
        meter: &Meter,
        from: PartyId,
        step: Step,
        seq: u64,
        shares: &[Ciphertext],
        key: &PublicKey,
    ) -> Result<(), SmcError> {
        let window = self.seen.entry(from).or_default();
        if window.contains(&(step, seq)) {
            meter.record_fault(FaultEvent::RejectedDuplicate);
            return Err(SmcError::DuplicateSubmission { from, step, seq });
        }
        window.push((step, seq));
        if shares.len() != self.num_classes {
            meter.record_fault(FaultEvent::RejectedArity);
            return Err(SmcError::LengthMismatch { expected: self.num_classes, got: shares.len() });
        }
        let n = key.modulus();
        let n2 = key.modulus_squared();
        for (index, share) in shares.iter().enumerate() {
            let raw = share.as_raw();
            if raw.is_zero() || raw >= n2 || !gcd(raw, n).is_one() {
                meter.record_fault(FaultEvent::RejectedCiphertext);
                return Err(SmcError::InvalidCiphertext { from, index });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use bigint::Ubig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PublicKey, Vec<Ciphertext>) {
        let mut rng = StdRng::seed_from_u64(77);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let key = keys.server1().peer_public().clone();
        let good: Vec<Ciphertext> =
            (0..2).map(|v| key.encrypt(&Ubig::from(v as u64 + 1), &mut rng).unwrap()).collect();
        (key, good)
    }

    #[test]
    fn well_formed_upload_passes() {
        let (key, good) = setup();
        let key = &key;
        let meter = Meter::new();
        let mut v = UploadValidator::new(2);
        v.check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, key).unwrap();
        let stats = meter.fault_stats();
        assert_eq!(stats.rejected_ciphertexts, 0);
        assert_eq!(stats.rejected_arity, 0);
        assert_eq!(stats.rejected_duplicates, 0);
    }

    #[test]
    fn replayed_sequence_number_is_rejected() {
        let (key, good) = setup();
        let key = &key;
        let meter = Meter::new();
        let mut v = UploadValidator::new(2);
        v.check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, key).unwrap();
        let err =
            v.check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, key).unwrap_err();
        assert!(matches!(
            err,
            SmcError::DuplicateSubmission {
                from: PartyId::User(0),
                step: Step::SecureSumVotes,
                seq: 1
            }
        ));
        assert_eq!(meter.fault_stats().rejected_duplicates, 1);
        // Same seq from a different sender or step is fine.
        v.check(&meter, PartyId::User(1), Step::SecureSumVotes, 1, &good, key).unwrap();
        v.check(&meter, PartyId::User(0), Step::SecureSumNoisy, 1, &good, key).unwrap();
    }

    #[test]
    fn retired_senders_free_their_state() {
        let (key, good) = setup();
        let key = &key;
        let meter = Meter::new();
        let mut v = UploadValidator::new(2);
        for u in 0..8 {
            v.check(&meter, PartyId::User(u), Step::SecureSumVotes, 1, &good, key).unwrap();
            v.check(&meter, PartyId::User(u), Step::SecureSumVotes, 2, &good, key).unwrap();
        }
        assert_eq!(v.live_senders(), 8);
        // Streaming fold retires each user once its upload is absorbed:
        // the validator's window must shrink, not grow O(|U|).
        for u in 0..8 {
            v.retire(PartyId::User(u));
        }
        assert_eq!(v.live_senders(), 0);
        // Retiring is idempotent and does not disturb later senders.
        v.retire(PartyId::User(3));
        v.check(&meter, PartyId::User(9), Step::SecureSumVotes, 1, &good, key).unwrap();
        assert_eq!(v.live_senders(), 1);
    }

    #[test]
    fn wrong_arity_is_rejected_and_counted() {
        let (key, good) = setup();
        let key = &key;
        let meter = Meter::new();
        let mut v = UploadValidator::new(3);
        let err =
            v.check(&meter, PartyId::User(0), Step::SecureSumVotes, 1, &good, key).unwrap_err();
        assert!(matches!(err, SmcError::LengthMismatch { expected: 3, got: 2 }));
        assert_eq!(meter.fault_stats().rejected_arity, 1);
    }

    #[test]
    fn hostile_ciphertexts_are_rejected_and_counted() {
        let (key, good) = setup();
        let key = &key;
        let meter = Meter::new();
        let zero = Ciphertext::from_raw(Ubig::from(0u64));
        let unreduced = Ciphertext::from_raw(key.modulus_squared().clone());
        // A multiple of n shares a factor with n, so it is not a unit.
        let non_unit = Ciphertext::from_raw(key.modulus().clone());
        for (seq, bad) in [zero, unreduced, non_unit].into_iter().enumerate() {
            let mut shares = good.clone();
            shares[1] = bad;
            let mut v = UploadValidator::new(2);
            let err = v
                .check(&meter, PartyId::User(0), Step::SecureSumVotes, seq as u64, &shares, key)
                .unwrap_err();
            assert!(
                matches!(err, SmcError::InvalidCiphertext { from: PartyId::User(0), index: 1 }),
                "seq {seq}: {err:?}"
            );
        }
        assert_eq!(meter.fault_stats().rejected_ciphertexts, 3);
    }
}
