//! Session configuration, key material and per-party contexts.
//!
//! A consensus session involves `|U|` users and two servers:
//!
//! * **S1** owns Paillier keypair 1 *and* the DGK keypair (it plays the
//!   evaluator in every secure comparison);
//! * **S2** owns Paillier keypair 2.
//!
//! Users encrypt the share destined for S1 under *S2's* key and vice
//! versa, so the aggregating server can combine ciphertexts it cannot
//! read (Alg. 5, step 2).

use dgk::{DgkKeypair, DgkParams, DgkPublicKey};
use paillier::{Keypair, PrivateKey, PublicKey, SignedCodec};
use parallel::Parallelism;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::domain::ShareDomain;

/// Which server a context belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerRole {
    /// Server S1 (Paillier key 1, DGK evaluator).
    Server1,
    /// Server S2 (Paillier key 2, DGK blinder).
    Server2,
}

/// Cryptographic and domain parameters of one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Number of participating users `|U|`.
    pub num_users: usize,
    /// Number of classes `K`.
    pub num_classes: usize,
    /// Paillier modulus size (the paper's prototype: 64).
    pub paillier_bits: u64,
    /// DGK parameters; `dgk.compare_bits` must equal
    /// `domain.compare_bits`.
    pub dgk: DgkParams,
    /// Share/mask/comparison bit budget.
    pub domain: ShareDomain,
    /// How the roster is partitioned for streaming aggregation. Defaults
    /// to the flat single-shard path; every shard count produces the
    /// identical consensus fingerprint (`serde(default)` keeps old
    /// serialized configs valid).
    #[serde(default)]
    pub shards: crate::shard::ShardConfig,
}

impl SessionConfig {
    /// Paper-scale parameters (64-bit Paillier, ℓ = 40 comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `num_users == 0` or `num_classes == 0`.
    pub fn paper(num_users: usize, num_classes: usize) -> Self {
        let cfg = SessionConfig {
            num_users,
            num_classes,
            paillier_bits: 96,
            dgk: DgkParams::paper(),
            domain: ShareDomain::paper(),
            shards: crate::shard::ShardConfig::flat(),
        };
        cfg.validate();
        cfg
    }

    /// Small, fast parameters for tests (ℓ = 16 comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `num_users == 0` or `num_classes == 0`.
    pub fn test(num_users: usize, num_classes: usize) -> Self {
        let cfg = SessionConfig {
            num_users,
            num_classes,
            paillier_bits: 64,
            dgk: DgkParams::insecure_test(),
            domain: ShareDomain::test(),
            shards: crate::shard::ShardConfig::flat(),
        };
        cfg.validate();
        cfg
    }

    /// Selects the sharded streaming aggregation geometry. The shard
    /// count only changes *how* the servers fold uploads (memory and
    /// parallel shape), never *what* they compute — fingerprints are
    /// identical for every value.
    pub fn with_shards(mut self, shards: crate::shard::ShardConfig) -> Self {
        self.shards = shards;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the DGK comparison width disagrees with the share domain,
    /// if the Paillier window cannot hold masked aggregates, or on empty
    /// user/class counts.
    pub fn validate(&self) {
        assert!(self.num_users > 0, "need at least one user");
        assert!(self.num_classes > 0, "need at least one class");
        assert_eq!(
            self.dgk.compare_bits, self.domain.compare_bits,
            "DGK compare width must match the share domain"
        );
        // Signed window (−n/2, n/2) must hold |masked aggregate| which is
        // below 2^(compare_bits) by the domain budget, with headroom.
        assert!(
            self.paillier_bits >= self.domain.compare_bits as u64 + 4,
            "Paillier modulus too small for the share domain"
        );
    }
}

/// All key material of a session, held by the trusted dealer / PKI that
/// provisions parties (the paper assumes a PKI distributes public keys).
#[derive(Clone)]
pub struct SessionKeys {
    config: SessionConfig,
    paillier1: Keypair,
    paillier2: Keypair,
    dgk: DgkKeypair,
    parallelism: Parallelism,
}

impl std::fmt::Debug for SessionKeys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SessionKeys({} users, {} classes)",
            self.config.num_users, self.config.num_classes
        )
    }
}

impl SessionKeys {
    /// Generates fresh key material for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    pub fn generate<R: Rng + ?Sized>(config: SessionConfig, rng: &mut R) -> SessionKeys {
        config.validate();
        let paillier1 = Keypair::generate(rng, config.paillier_bits);
        let paillier2 = Keypair::generate(rng, config.paillier_bits);
        let dgk = DgkKeypair::generate(rng, &config.dgk);
        let keys = SessionKeys {
            config,
            paillier1,
            paillier2,
            dgk,
            parallelism: Parallelism::sequential(),
        };
        keys.precompute();
        keys
    }

    /// Sets the data-parallelism config every party context built from
    /// these keys will use for its crypto hot loops. Defaults to
    /// sequential; results are bit-identical for every setting (see the
    /// `parallel` crate).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// In-place variant of [`SessionKeys::with_parallelism`].
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The data-parallelism config party contexts inherit.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Warms every per-key exponentiation cache (Paillier `n²`/`p²`/`q²`
    /// Montgomery contexts, the DGK `n`/`p` contexts and the `g`/`h`
    /// fixed-base tables). Because the caches live behind shared cells,
    /// every [`ServerContext`]/[`UserContext`] cloned from these keys
    /// reuses the warmed state — no party pays the setup cost on its
    /// first protocol message. Called automatically by
    /// [`SessionKeys::generate`]; idempotent.
    pub fn precompute(&self) {
        self.paillier1.private_key().precompute();
        self.paillier2.private_key().precompute();
        self.dgk.private_key().precompute();
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Builds S1's context (Paillier private key 1, S2's public key, DGK
    /// keypair).
    pub fn server1(&self) -> ServerContext {
        ServerContext {
            role: ServerRole::Server1,
            config: self.config.clone(),
            own_private: self.paillier1.private_key().clone(),
            peer_public: self.paillier2.public_key().clone(),
            dgk_private: Some(self.dgk.clone()),
            dgk_public: self.dgk.public_key().clone(),
            parallelism: self.parallelism,
        }
    }

    /// Builds S2's context (Paillier private key 2, S1's public key, DGK
    /// public key only).
    pub fn server2(&self) -> ServerContext {
        ServerContext {
            role: ServerRole::Server2,
            config: self.config.clone(),
            own_private: self.paillier2.private_key().clone(),
            peer_public: self.paillier1.public_key().clone(),
            dgk_private: None,
            dgk_public: self.dgk.public_key().clone(),
            parallelism: self.parallelism,
        }
    }

    /// Builds a user's context (both public keys).
    pub fn user(&self) -> UserContext {
        UserContext {
            config: self.config.clone(),
            pk1: self.paillier1.public_key().clone(),
            pk2: self.paillier2.public_key().clone(),
            parallelism: self.parallelism,
        }
    }
}

/// A server's key material and helpers.
#[derive(Clone)]
pub struct ServerContext {
    role: ServerRole,
    config: SessionConfig,
    own_private: PrivateKey,
    peer_public: PublicKey,
    dgk_private: Option<DgkKeypair>,
    dgk_public: DgkPublicKey,
    parallelism: Parallelism,
}

impl std::fmt::Debug for ServerContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerContext({:?})", self.role)
    }
}

impl ServerContext {
    /// Which server this context belongs to.
    pub fn role(&self) -> ServerRole {
        self.role
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The share-domain budget.
    pub fn domain(&self) -> ShareDomain {
        self.config.domain
    }

    /// This server's own Paillier private key.
    pub fn own_private(&self) -> &PrivateKey {
        &self.own_private
    }

    /// This server's own Paillier public key.
    pub fn own_public(&self) -> &PublicKey {
        self.own_private.public_key()
    }

    /// The *other* server's Paillier public key.
    pub fn peer_public(&self) -> &PublicKey {
        &self.peer_public
    }

    /// Signed codec for this server's own modulus.
    pub fn own_codec(&self) -> SignedCodec {
        SignedCodec::new(self.own_public())
    }

    /// Signed codec for the peer's modulus.
    pub fn peer_codec(&self) -> SignedCodec {
        SignedCodec::new(&self.peer_public)
    }

    /// The DGK keypair — present only on S1 (the evaluator).
    ///
    /// # Panics
    ///
    /// Panics when called on S2; that is always a protocol-role bug.
    pub fn dgk_keys(&self) -> &DgkKeypair {
        self.dgk_private.as_ref().expect("DGK private key lives on S1; S2 must use dgk_public()")
    }

    /// The DGK public key (both servers).
    pub fn dgk_public(&self) -> &DgkPublicKey {
        &self.dgk_public
    }

    /// The data-parallelism config for this server's crypto hot loops.
    pub fn parallelism(&self) -> &Parallelism {
        &self.parallelism
    }
}

/// A user's key material: both servers' public keys.
#[derive(Clone)]
pub struct UserContext {
    config: SessionConfig,
    pk1: PublicKey,
    pk2: PublicKey,
    parallelism: Parallelism,
}

impl std::fmt::Debug for UserContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UserContext")
    }
}

impl UserContext {
    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The share-domain budget.
    pub fn domain(&self) -> ShareDomain {
        self.config.domain
    }

    /// S1's Paillier public key.
    pub fn pk1(&self) -> &PublicKey {
        &self.pk1
    }

    /// S2's Paillier public key.
    pub fn pk2(&self) -> &PublicKey {
        &self.pk2
    }

    /// The data-parallelism config for this user's crypto hot loops.
    pub fn parallelism(&self) -> &Parallelism {
        &self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_and_build_contexts() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys = SessionKeys::generate(SessionConfig::test(3, 4), &mut rng);
        let s1 = keys.server1();
        let s2 = keys.server2();
        let user = keys.user();
        assert_eq!(s1.role(), ServerRole::Server1);
        assert_eq!(s2.role(), ServerRole::Server2);
        // Cross-wiring: S1's own public key is what users call pk1.
        assert_eq!(s1.own_public(), user.pk1());
        assert_eq!(s2.own_public(), user.pk2());
        // Peers see each other.
        assert_eq!(s1.peer_public(), s2.own_public());
        assert_eq!(s2.peer_public(), s1.own_public());
    }

    #[test]
    fn dgk_lives_on_s1_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let _ = keys.server1().dgk_keys(); // fine
        assert_eq!(keys.server1().dgk_public(), keys.server2().dgk_public());
    }

    #[test]
    #[should_panic(expected = "DGK private key lives on S1")]
    fn s2_dgk_access_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let _ = keys.server2().dgk_keys();
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let _ = SessionConfig::test(0, 2);
    }

    #[test]
    #[should_panic(expected = "compare width must match")]
    fn mismatched_compare_bits_rejected() {
        let mut cfg = SessionConfig::test(1, 2);
        cfg.dgk.compare_bits = 20;
        cfg.validate();
    }

    #[test]
    fn cross_server_encryption_path() {
        // A user encrypts under pk2; S2 (not S1) can decrypt.
        let mut rng = StdRng::seed_from_u64(4);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let user = keys.user();
        let c = user.pk2().encrypt_u64(9, &mut rng);
        assert_eq!(keys.server2().own_private().decrypt_u64(&c), 9);
    }
}
