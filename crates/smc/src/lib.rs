//! Secure multiparty sub-protocols of the private consensus scheme.
//!
//! Everything in this crate is a *two-server* (S1/S2) or *users + two
//! servers* interactive protocol running over [`transport`] channels:
//!
//! * [`permutation`] — uniformly random permutations and their algebra;
//! * [`domain`] — the signed share/mask/comparison bit-width bookkeeping
//!   that keeps every value inside the cryptosystems' plaintext windows;
//! * [`session`] — key material and per-party contexts (who holds which
//!   Paillier key, who evaluates DGK);
//! * [`secure_sum`] — step 2/6 of Alg. 5: users upload encrypted additive
//!   shares, servers aggregate homomorphically;
//! * [`shard`] — hierarchical sharded streaming aggregation: the
//!   deterministic shard plan, running partial-sum accumulators, and the
//!   sorted-merge survivor intersection that keep server memory bounded
//!   by shard geometry instead of |U|;
//! * [`blind_permute`] — Alg. 2, the Blind-and-Permute protocol;
//! * [`compare`] — the DGK comparison of §III-B run over channels between
//!   the servers, plus the shared-value comparison forms of Eqn. 6/7;
//! * [`argmax`] — pairwise secure ranking (step 4/8) in the permuted
//!   domain;
//! * [`restoration`] — Alg. 3, recovering the true label index of a
//!   permuted position;
//! * [`audit`] — covert-security commit-and-challenge verification of
//!   the blind-permute/restoration transcripts (typed audit aborts);
//! * [`state`] — the serializable per-step round state machine behind
//!   crash recovery (checkpointed through [`transport::checkpoint`]);
//! * [`validate`] — adversarial validation of inbound uploads
//!   (ciphertext well-formedness, arity, replay freshness).
//!
//! Each protocol has a deterministic plaintext *reference model* used by
//! tests to pin the secure execution to its specification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod argmax;
pub mod audit;
pub mod batch;
pub mod blind_permute;
pub mod compare;
mod costs;
pub mod domain;
mod error;
pub mod permutation;
pub mod restoration;
pub mod secure_sum;
pub mod session;
pub mod shard;
pub mod state;
pub mod validate;

pub use audit::{AuditCheckpoint, AuditContext, AuditEvidence, AuditPolicy, AuditTap};
pub use domain::{ShareDomain, SharesOutOfRange};
pub use error::SmcError;
pub use parallel::Parallelism;
pub use permutation::Permutation;
pub use session::{ServerContext, ServerRole, SessionConfig, SessionKeys, UserContext};
pub use shard::{ShardAccumulator, ShardConfig, ShardPlan};
pub use state::{CheckpointImage, RoundState};
pub use validate::UploadValidator;
