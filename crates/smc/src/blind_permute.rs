//! Blind-and-Permute — Alg. 2 of the paper, batched.
//!
//! Input: S1 holds vectors of Paillier ciphertexts under **pk2**
//! (aggregated `a`-shares), S2 holds the matching vectors under **pk1**
//! (aggregated `b`-shares). Output: S1 holds the *plaintext* sequences
//! `π(a + r)`, S2 holds `π(b + r)`, where `π = π1∘π2` is known to neither
//! server in full and `r = r1 + r2` combines one secret scalar mask from
//! each server.
//!
//! Two fidelity notes (see DESIGN.md §5):
//!
//! * The per-vector masks `r1`, `r2` are **scalars broadcast across the
//!   K entries** — the paper's "common bias". Per-entry masks would break
//!   the cross-index comparisons of Eqn. 7 that step 4 runs on these
//!   outputs (the bias must cancel between positions `i` and `j`).
//! * The step-4 mask `r3` *is* per-entry: it only has to hide `b` from S1
//!   during the re-encryption bounce and is removed exactly.
//!
//! The homomorphic mask additions and rerandomizations below all run
//! under the Paillier keys' cached `n²` Montgomery contexts, so the
//! per-entry cost is one table-driven exponentiation.
//!
//! The batch form runs several vectors through one protocol instance with
//! the *same* `π1, π2` but independent masks — exactly what Alg. 5 step 3
//! needs (the vote sums and the noisy threshold sequence must share a
//! permutation).

use paillier::Ciphertext;
use rand::Rng;
use transport::{ByzantineAction, Endpoint, PartyId, Step};

use crate::audit::{transpose01, AuditTap};
use crate::error::SmcError;
use crate::permutation::Permutation;
use crate::session::ServerContext;

/// Result of a Blind-and-Permute run on one server: the masked plaintext
/// sequences (one per input vector, all permuted by the same hidden `π`)
/// and this server's own permutation share.
#[derive(Debug, Clone)]
pub struct BlindPermuteOutput {
    /// Masked sequences `π(x + r)`, one per input vector.
    pub sequences: Vec<Vec<i128>>,
    /// This server's secret permutation (`π1` on S1, `π2` on S2).
    pub own_permutation: Permutation,
}

fn expect_len<T>(v: &[T], expected: usize) -> Result<(), SmcError> {
    if v.len() == expected {
        Ok(())
    } else {
        Err(SmcError::LengthMismatch { expected, got: v.len() })
    }
}

/// S1's side of Alg. 2.
///
/// `enc_a` are the aggregated `a`-share vectors encrypted under pk2.
/// `tap` records the audit transcript (and carries any scheduled covert
/// deviation); pass [`AuditTap::disabled`] for unaudited runs.
///
/// # Errors
///
/// Fails on transport, cryptosystem or domain errors, and with
/// [`SmcError::AuditFailure`] when a challenge convicts the peer.
pub fn server1_blind_permute<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    enc_a: &[Vec<Ciphertext>],
    step: Step,
    rng: &mut R,
    tap: &mut AuditTap,
) -> Result<BlindPermuteOutput, SmcError> {
    let k = ctx.config().num_classes;
    let m = enc_a.len();
    let domain = ctx.domain();
    let pk2 = ctx.peer_public();
    let codec1 = ctx.own_codec();
    let codec2 = ctx.peer_codec();
    let par = ctx.parallelism();
    tap.begin(endpoint)?;
    let mut pi1 = Permutation::random(k, rng);
    // One scalar mask per vector in the batch.
    let mut r1: Vec<i128> = (0..m).map(|_| domain.random_mask(rng)).collect();
    // Covert deviations replace the committed draws with tampered ones;
    // the tap attests to what is actually used, so a challenge replay
    // from the committed seed exposes the substitution.
    if tap.byzantine() == Some(ByzantineAction::TamperPermutation) {
        pi1 = transpose01(&pi1);
    }
    if tap.byzantine() == Some(ByzantineAction::DropMask) {
        r1[0] = 0;
    }
    tap.permutation(&pi1);
    tap.masks(&r1);

    // Step 1: send E_pk2[a + r1] to S2. The per-entry mask additions are
    // RNG-free homomorphic ops, fanned out across the K labels.
    let mut masked_a: Vec<Vec<Ciphertext>> = enc_a
        .iter()
        .zip(&r1)
        .map(|(vec, &mask)| {
            expect_len(vec, k)?;
            let mask_enc = codec2.encode_i128(mask)?;
            let add_par = par.with_item_cost_ns(crate::costs::paillier_add_cost_ns(pk2));
            Ok(add_par.map(vec, |_, c| pk2.add_plain(c, &mask_enc)))
        })
        .collect::<Result<_, SmcError>>()?;
    tap.record_sent(&masked_a);
    if tap.byzantine() == Some(ByzantineAction::Equivocate) {
        // Attest to the honest frame, put a different one on the wire.
        masked_a[0][0] = pk2.add_plain(&masked_a[0][0], &codec2.encode_i128(1)?);
    }
    endpoint.send(PartyId::Server2, step, &masked_a)?;

    // Step 2 happens on S2; receive π2(a + r1 + r2) in plaintext.
    let permuted_a: Vec<Vec<i128>> = endpoint.recv(PartyId::Server2, step)?;
    tap.record_received(&permuted_a);
    expect_len(&permuted_a, m)?;

    // Step 3: apply π1 — this is S1's output half. Send E_pk1[r1] to S2.
    let sequences: Vec<Vec<i128>> = permuted_a
        .iter()
        .map(|seq| {
            expect_len(seq, k)?;
            Ok(pi1.apply(seq))
        })
        .collect::<Result<_, SmcError>>()?;
    let enc_r1: Vec<Ciphertext> = par
        .with_item_cost_ns(crate::costs::paillier_encrypt_cost_ns(ctx.own_public()))
        .try_map_seeded(&r1, rng, |_, &mask, item_rng| {
            let encoded = codec1.encode_i128(mask)?;
            Ok::<_, SmcError>(ctx.own_public().encrypt(&encoded, item_rng)?)
        })?;
    tap.record_sent(&enc_r1);
    endpoint.send(PartyId::Server2, step, &enc_r1)?;

    // Step 4 happens on S2; receive E_pk1[π2(b+r1+r2)+r3] and E_pk2[−r3].
    let masked_b: Vec<Vec<Ciphertext>> = endpoint.recv(PartyId::Server2, step)?;
    let neg_r3: Vec<Vec<Ciphertext>> = endpoint.recv(PartyId::Server2, step)?;
    tap.record_received(&masked_b);
    tap.record_received(&neg_r3);
    expect_len(&masked_b, m)?;
    expect_len(&neg_r3, m)?;

    // Challenge-verify S2's opening before trusting anything it sent:
    // the decrypt-and-re-encrypt pass below consumes S2's frames.
    tap.verify_peer(endpoint, k, m, &domain)?;

    // Step 5: decrypt under sk1, re-encrypt under pk2, strip r3
    // homomorphically, permute with π1, return to S2. Each entry pays a
    // decrypt + encrypt, so the K labels fan out; only the re-encryption
    // draws randomness, one seed-derived stream per entry.
    let mut reencrypted: Vec<Vec<Ciphertext>> = Vec::with_capacity(m);
    for (vec, negs) in masked_b.iter().zip(&neg_r3) {
        expect_len(vec, k)?;
        expect_len(negs, k)?;
        let row: Vec<Ciphertext> = par
            .with_item_cost_ns(
                crate::costs::paillier_decrypt_cost_ns(ctx.own_public())
                    + crate::costs::paillier_encrypt_cost_ns(pk2),
            )
            .try_map_seeded(vec, rng, |i, c, item_rng| {
                let value = codec1.decode_i128(&ctx.own_private().decrypt_crt(c)?)?;
                let reenc = pk2.encrypt(&codec2.encode_i128(value)?, item_rng)?;
                Ok::<_, SmcError>(pk2.add(&reenc, &negs[i]))
            })?;
        reencrypted.push(pi1.apply(&row));
    }
    tap.record_sent(&reencrypted);
    if tap.byzantine() == Some(ByzantineAction::ReplayStaleFrame) {
        // Resend the step-1 frame in place of the re-encryption; it has
        // the same shape and decrypts cleanly, but is stale.
        endpoint.send(PartyId::Server2, step, &masked_a)?;
    } else {
        endpoint.send(PartyId::Server2, step, &reencrypted)?;
    }
    tap.flush_opening(endpoint)?;

    Ok(BlindPermuteOutput { sequences, own_permutation: pi1 })
}

/// S2's side of Alg. 2.
///
/// `enc_b` are the aggregated `b`-share vectors encrypted under pk1.
/// `tap` records the audit transcript (and carries any scheduled covert
/// deviation); pass [`AuditTap::disabled`] for unaudited runs.
///
/// # Errors
///
/// Fails on transport, cryptosystem or domain errors, and with
/// [`SmcError::AuditFailure`] when a challenge convicts the peer.
pub fn server2_blind_permute<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    enc_b: &[Vec<Ciphertext>],
    step: Step,
    rng: &mut R,
    tap: &mut AuditTap,
) -> Result<BlindPermuteOutput, SmcError> {
    let k = ctx.config().num_classes;
    let m = enc_b.len();
    let domain = ctx.domain();
    let pk1 = ctx.peer_public();
    let codec1 = ctx.peer_codec();
    let codec2 = ctx.own_codec();
    let par = ctx.parallelism();
    tap.begin(endpoint)?;
    let mut pi2 = Permutation::random(k, rng);
    let mut r2: Vec<i128> = (0..m).map(|_| domain.random_mask(rng)).collect();
    if tap.byzantine() == Some(ByzantineAction::TamperPermutation) {
        pi2 = transpose01(&pi2);
    }
    if tap.byzantine() == Some(ByzantineAction::DropMask) {
        r2[0] = 0;
    }
    tap.permutation(&pi2);
    tap.masks(&r2);

    // Step 2: receive E_pk2[a + r1]; decrypt (RNG-free, fanned out across
    // the K labels), add r2, permute by π2, send the plaintext sequences
    // back.
    let masked_a: Vec<Vec<Ciphertext>> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&masked_a);
    expect_len(&masked_a, m)?;
    let mut permuted_a: Vec<Vec<i128>> = Vec::with_capacity(m);
    for (vec, &mask2) in masked_a.iter().zip(&r2) {
        expect_len(vec, k)?;
        let plain: Vec<i128> = par
            .with_item_cost_ns(crate::costs::paillier_decrypt_cost_ns(ctx.own_public()))
            .try_map(vec, |_, c| {
                Ok::<_, SmcError>(codec2.decode_i128(&ctx.own_private().decrypt_crt(c)?)? + mask2)
            })?;
        permuted_a.push(pi2.apply(&plain));
    }
    tap.record_sent(&permuted_a);
    if tap.byzantine() == Some(ByzantineAction::Equivocate) {
        permuted_a[0][0] += 1;
    }
    endpoint.send(PartyId::Server1, step, &permuted_a)?;

    // Step 4: receive E_pk1[r1]; build E_pk1[π2(b+r1+r2)+r3] and
    // E_pk2[−r3].
    let enc_r1: Vec<Ciphertext> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&enc_r1);
    expect_len(&enc_r1, m)?;
    let mut masked_b: Vec<Vec<Ciphertext>> = Vec::with_capacity(m);
    let mut neg_r3_enc: Vec<Vec<Ciphertext>> = Vec::with_capacity(m);
    for ((vec, enc_mask1), &mask2) in enc_b.iter().zip(&enc_r1).zip(&r2) {
        expect_len(vec, k)?;
        let mask2_enc = codec1.encode_i128(mask2)?;
        // Bias additions are RNG-free homomorphic ops: fan out per label.
        let add_par = par.with_item_cost_ns(crate::costs::paillier_add_cost_ns(pk1));
        let biased: Vec<Ciphertext> =
            add_par.map(vec, |_, c| pk1.add_plain(&pk1.add(c, enc_mask1), &mask2_enc));
        let permuted = pi2.apply(&biased);
        // Per-entry r3, applied after the permutation. The mask draws
        // stay on the caller's RNG (cheap); the homomorphic additions and
        // the −r3 encryptions fan out.
        let r3: Vec<i128> = (0..k).map(|_| domain.random_mask(rng)).collect();
        let row: Vec<Ciphertext> = add_par.try_map(&permuted, |i, c| {
            Ok::<_, SmcError>(pk1.add_plain(c, &codec1.encode_i128(r3[i])?))
        })?;
        masked_b.push(row);
        let negs: Vec<Ciphertext> = par
            .with_item_cost_ns(crate::costs::paillier_encrypt_cost_ns(ctx.own_public()))
            .try_map_seeded(&r3, rng, |_, &mask3, item_rng| {
                Ok::<_, SmcError>(ctx.own_public().encrypt(&codec2.encode_i128(-mask3)?, item_rng)?)
            })?;
        neg_r3_enc.push(negs);
    }
    endpoint.send(PartyId::Server1, step, &masked_b)?;
    tap.record_sent(&masked_b);
    tap.record_sent(&neg_r3_enc);
    if tap.byzantine() == Some(ByzantineAction::ReplayStaleFrame) {
        // Resend the masked-b frame in place of −r3; same shape, stale
        // content.
        endpoint.send(PartyId::Server1, step, &masked_b)?;
    } else {
        endpoint.send(PartyId::Server1, step, &neg_r3_enc)?;
    }
    tap.flush_opening(endpoint)?;

    // Step 6: receive E_pk2[π(b + r1 + r2)] and decrypt — S2's output.
    let final_enc: Vec<Vec<Ciphertext>> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&final_enc);
    expect_len(&final_enc, m)?;

    // Challenge-verify S1's opening before decrypting its output frame.
    tap.verify_peer(endpoint, k, m, &domain)?;
    let sequences: Vec<Vec<i128>> = final_enc
        .iter()
        .map(|vec| {
            expect_len(vec, k)?;
            par.with_item_cost_ns(crate::costs::paillier_decrypt_cost_ns(ctx.own_public()))
                .try_map(vec, |_, c| {
                    Ok::<_, SmcError>(codec2.decode_i128(&ctx.own_private().decrypt_crt(c)?)?)
                })
        })
        .collect::<Result<_, SmcError>>()?;

    Ok(BlindPermuteOutput { sequences, own_permutation: pi2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure_sum::send_encrypted_vector;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transport::Network;

    /// Runs a batched blind-and-permute over real channels and returns
    /// both outputs plus the original plain vectors.
    fn run(
        seed: u64,
        a_vectors: Vec<Vec<i128>>,
        b_vectors: Vec<Vec<i128>>,
    ) -> (BlindPermuteOutput, BlindPermuteOutput) {
        let k = a_vectors[0].len();
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = SessionKeys::generate(SessionConfig::test(1, k), &mut rng);
        let s1_ctx = keys.server1();
        let s2_ctx = keys.server2();
        let user_ctx = keys.user();

        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        let user = net.take_endpoint(PartyId::User(0));

        // Feed the "aggregated" encrypted vectors through the user path:
        // a under pk2 (to S1), b under pk1 (to S2).
        for a in &a_vectors {
            send_encrypted_vector(
                &user,
                PartyId::Server1,
                Step::Setup,
                a,
                user_ctx.pk2(),
                user_ctx.parallelism(),
                &mut rng,
            )
            .unwrap();
        }
        for b in &b_vectors {
            send_encrypted_vector(
                &user,
                PartyId::Server2,
                Step::Setup,
                b,
                user_ctx.pk1(),
                user_ctx.parallelism(),
                &mut rng,
            )
            .unwrap();
        }

        std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let enc_a: Vec<Vec<paillier::Ciphertext>> = (0..a_vectors.len())
                    .map(|_| s1.recv(PartyId::User(0), Step::Setup).unwrap())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed + 1);
                server1_blind_permute(
                    &mut s1,
                    &s1_ctx,
                    &enc_a,
                    Step::BlindPermute1,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
            let h2 = scope.spawn(move || {
                let enc_b: Vec<Vec<paillier::Ciphertext>> = (0..b_vectors.len())
                    .map(|_| s2.recv(PartyId::User(0), Step::Setup).unwrap())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed + 2);
                server2_blind_permute(
                    &mut s2,
                    &s2_ctx,
                    &enc_b,
                    Step::BlindPermute1,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
    }

    /// Recovers (π applied to totals, common bias) from one output pair:
    /// sorted(s1+s2) minus sorted(a+b) must be a constant vector 2r.
    fn common_bias(totals: &[i128], s1_seq: &[i128], s2_seq: &[i128]) -> i128 {
        let mut masked: Vec<i128> = s1_seq.iter().zip(s2_seq).map(|(x, y)| x + y).collect();
        let mut plain = totals.to_vec();
        masked.sort_unstable();
        plain.sort_unstable();
        let bias = masked[0] - plain[0];
        for (m, p) in masked.iter().zip(&plain) {
            assert_eq!(m - p, bias, "bias must be common across entries");
        }
        bias
    }

    #[test]
    fn outputs_are_masked_permutation_of_totals() {
        let a = vec![vec![3i128, -7, 100, 0, 42]];
        let b = vec![vec![10i128, 7, -50, 5, -2]];
        let totals: Vec<i128> = a[0].iter().zip(&b[0]).map(|(x, y)| x + y).collect();
        let (out1, out2) = run(77, a, b);
        let bias = common_bias(&totals, &out1.sequences[0], &out2.sequences[0]);
        assert!(bias >= 0, "masks are non-negative so the bias is too");
    }

    #[test]
    fn batch_vectors_share_the_same_permutation() {
        // Vector 0 is a marker (strictly increasing); vector 1 arbitrary.
        let a = vec![vec![0i128, 0, 0, 0], vec![5i128, -5, 17, 2]];
        let b = vec![vec![0i128, 100, 200, 300], vec![1i128, 2, 3, 4]];
        let totals0: Vec<i128> = a[0].iter().zip(&b[0]).map(|(x, y)| x + y).collect();
        let totals1: Vec<i128> = a[1].iter().zip(&b[1]).map(|(x, y)| x + y).collect();
        let (out1, out2) = run(78, a, b);

        let bias0 = common_bias(&totals0, &out1.sequences[0], &out2.sequences[0]);
        let bias1 = common_bias(&totals1, &out1.sequences[1], &out2.sequences[1]);

        // Infer the hidden permutation from the marker vector, then check
        // vector 1 was permuted identically.
        let masked0: Vec<i128> =
            out1.sequences[0].iter().zip(&out2.sequences[0]).map(|(x, y)| x + y).collect();
        let perm: Vec<usize> = masked0
            .iter()
            .map(|&v| totals0.iter().position(|&t| t + bias0 == v).expect("marker found"))
            .collect();
        let masked1: Vec<i128> =
            out1.sequences[1].iter().zip(&out2.sequences[1]).map(|(x, y)| x + y).collect();
        for (slot, &src) in perm.iter().enumerate() {
            assert_eq!(masked1[slot], totals1[src] + bias1, "vector 1 permuted differently");
        }
    }

    #[test]
    fn cross_index_differences_of_shares_are_preserved() {
        // Eqn. 7 correctness requirement: within one vector, the
        // difference between S1's entries at two permuted slots must equal
        // the difference of the underlying a-sums (masks cancel).
        let a = vec![vec![10i128, 20, 40, 80]];
        let b = vec![vec![1i128, 2, 3, 4]];
        let totals: Vec<i128> = a[0].iter().zip(&b[0]).map(|(x, y)| x + y).collect();
        let a_orig = a[0].clone();
        let (out1, out2) = run(79, a, b);

        // Recover the permutation via totals as above.
        let bias = common_bias(&totals, &out1.sequences[0], &out2.sequences[0]);
        let masked: Vec<i128> =
            out1.sequences[0].iter().zip(&out2.sequences[0]).map(|(x, y)| x + y).collect();
        let perm: Vec<usize> = masked
            .iter()
            .map(|&v| totals.iter().position(|&t| t + bias == v).expect("unique totals"))
            .collect();
        for i in 0..4 {
            for j in 0..4 {
                let lhs = out1.sequences[0][i] - out1.sequences[0][j];
                let rhs = a_orig[perm[i]] - a_orig[perm[j]];
                assert_eq!(lhs, rhs, "scalar mask must cancel across indices");
            }
        }
    }

    #[test]
    fn singleton_class_works() {
        let (out1, out2) = run(80, vec![vec![5i128]], vec![vec![7i128]]);
        assert_eq!(out1.sequences[0].len(), 1);
        let total = out1.sequences[0][0] + out2.sequences[0][0];
        assert!(total >= 12, "12 plus non-negative masks");
    }
}
