//! Secure ranking in the permuted domain — steps 4 and 8 of Alg. 5.
//!
//! After Blind-and-Permute, S1 holds `ã = π(a + r)` and S2 holds
//! `b̃ = π(b + r)`. By Eqn. 7, `c_i ≥ c_j ⟺ (ã_i − ã_j) ≥ (b̃_j − b̃_i)`
//! (the common scalar bias cancels), so the servers can rank the hidden
//! vote totals with DGK comparisons alone, learning nothing but the
//! permuted winner slot.
//!
//! Two strategies are provided:
//!
//! * [`server1_argmax_pairwise`] — the paper's all-pairs comparison
//!   (`K(K−1)/2` DGK runs, as in Table I/II);
//! * [`server1_argmax_tournament`] — a linear-scan variant using `K−1`
//!   comparisons, benched as an ablation.
//!
//! Every DGK operation inside these comparisons (bit encryptions,
//! blinding, zero tests) runs on the DGK key's cached Montgomery
//! contexts and `g`/`h` fixed-base tables (see
//! [`dgk::DgkPublicKey::precompute`]) — the dominant cost of Table I/II's
//! comparison rows.
//!
//! Both servers derive the same winner slot deterministically from the
//! same comparison bits. Ties break toward the *lower permuted slot*,
//! which — the permutation being uniform — is an unbiased tie-break over
//! the original labels.

use rand::Rng;
use transport::{Endpoint, Step};

use crate::compare::{server1_compare_geq, server2_compare_geq};
use crate::error::SmcError;
use crate::session::ServerContext;

/// Shared tally logic: given the outcome of each ordered pair comparison
/// `(i, j), i < j` (true means `c_i ≥ c_j`), pick the winner slot.
fn winner_from_pairwise(k: usize, outcomes: &[bool]) -> usize {
    let mut wins = vec![0usize; k];
    let mut idx = 0;
    for i in 0..k {
        for j in (i + 1)..k {
            if outcomes[idx] {
                wins[i] += 1;
            } else {
                wins[j] += 1;
            }
            idx += 1;
        }
    }
    let best = *wins.iter().max().expect("k >= 1");
    wins.iter().position(|&w| w == best).expect("max exists")
}

/// S1's side of the all-pairs argmax over its permuted sequence.
/// Returns the winning *permuted* slot.
///
/// # Errors
///
/// Fails on comparison or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server1_argmax_pairwise<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    let k = sequence.len();
    assert!(k >= 1, "argmax needs at least one element");
    let mut outcomes = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            let x = sequence[i] - sequence[j];
            outcomes.push(server1_compare_geq(endpoint, ctx, x, step, rng)?);
        }
    }
    Ok(winner_from_pairwise(k, &outcomes))
}

/// S2's side of the all-pairs argmax. Returns the winning permuted slot
/// (always equal to S1's).
///
/// # Errors
///
/// Fails on comparison or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server2_argmax_pairwise<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    let k = sequence.len();
    assert!(k >= 1, "argmax needs at least one element");
    let mut outcomes = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            let y = sequence[j] - sequence[i];
            outcomes.push(server2_compare_geq(endpoint, ctx, y, step, rng)?);
        }
    }
    Ok(winner_from_pairwise(k, &outcomes))
}

/// S1's side of the linear-scan (tournament) argmax: keeps a running
/// champion, `K−1` comparisons. Ablation variant.
///
/// # Errors
///
/// Fails on comparison or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server1_argmax_tournament<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    assert!(!sequence.is_empty(), "argmax needs at least one element");
    let mut champion = 0usize;
    for challenger in 1..sequence.len() {
        let x = sequence[champion] - sequence[challenger];
        let keep = server1_compare_geq(endpoint, ctx, x, step, rng)?;
        if !keep {
            champion = challenger;
        }
    }
    Ok(champion)
}

/// S2's side of the tournament argmax.
///
/// # Errors
///
/// Fails on comparison or transport errors.
///
/// # Panics
///
/// Panics if `sequence` is empty.
pub fn server2_argmax_tournament<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    sequence: &[i128],
    step: Step,
    rng: &mut R,
) -> Result<usize, SmcError> {
    assert!(!sequence.is_empty(), "argmax needs at least one element");
    let mut champion = 0usize;
    for challenger in 1..sequence.len() {
        let y = sequence[challenger] - sequence[champion];
        let keep = server2_compare_geq(endpoint, ctx, y, step, rng)?;
        if !keep {
            champion = challenger;
        }
    }
    Ok(champion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use transport::{Network, PartyId};

    fn keys() -> &'static SessionKeys {
        static KEYS: OnceLock<SessionKeys> = OnceLock::new();
        KEYS.get_or_init(|| {
            SessionKeys::generate(SessionConfig::test(1, 4), &mut StdRng::seed_from_u64(41))
        })
    }

    /// Runs both sides over channels; xs/ys are the servers' sequences.
    fn run(xs: Vec<i128>, ys: Vec<i128>, seed: u64, pairwise: bool) -> (usize, usize) {
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            let h1 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                if pairwise {
                    server1_argmax_pairwise(&mut s1, &s1_ctx, &xs, Step::CompareRank, &mut rng)
                        .unwrap()
                } else {
                    server1_argmax_tournament(&mut s1, &s1_ctx, &xs, Step::CompareRank, &mut rng)
                        .unwrap()
                }
            });
            let h2 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                if pairwise {
                    server2_argmax_pairwise(&mut s2, &s2_ctx, &ys, Step::CompareRank, &mut rng)
                        .unwrap()
                } else {
                    server2_argmax_tournament(&mut s2, &s2_ctx, &ys, Step::CompareRank, &mut rng)
                        .unwrap()
                }
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
    }

    fn plain_argmax(totals: &[i128]) -> usize {
        let mut best = 0;
        for (i, &v) in totals.iter().enumerate() {
            if v > totals[best] {
                best = i;
            }
        }
        best
    }

    #[test]
    fn pairwise_finds_the_hidden_maximum() {
        // Shares with a common bias, mimicking blind-and-permute output.
        let cases = [
            (vec![100i128, -5, 30, 2], vec![1i128, 2, 3, 4]),
            (vec![0i128, 0, 0, 1], vec![0i128, 0, 0, 0]),
            (vec![-50i128, -40, -60, -45], vec![10i128, -10, 25, 3]),
        ];
        for (seed, (xs, ys)) in cases.into_iter().enumerate() {
            let totals: Vec<i128> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();
            let expect = plain_argmax(&totals);
            let (w1, w2) = run(xs, ys, 500 + seed as u64, true);
            assert_eq!(w1, w2, "servers must agree");
            assert_eq!(w1, expect, "case {seed}");
        }
    }

    #[test]
    fn tournament_matches_pairwise_on_distinct_values() {
        let xs = vec![7i128, -3, 12, 0];
        let ys = vec![1i128, 30, -6, 2];
        let (p1, p2) = run(xs.clone(), ys.clone(), 600, true);
        let (t1, t2) = run(xs, ys, 601, false);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
        assert_eq!(p1, t1);
    }

    #[test]
    fn ties_break_to_lowest_slot() {
        // totals = [5, 5, 1, 5]: pairwise wins → slot 0.
        let xs = vec![5i128, 5, 1, 5];
        let ys = vec![0i128, 0, 0, 0];
        let (w1, w2) = run(xs, ys, 602, true);
        assert_eq!((w1, w2), (0, 0));
    }

    #[test]
    fn winner_from_pairwise_logic() {
        // k=3, totals ranks: c1 > c0 > c2.
        // pairs: (0,1)=false, (0,2)=true, (1,2)=true.
        assert_eq!(winner_from_pairwise(3, &[false, true, true]), 1);
        // Single element: no comparisons.
        assert_eq!(winner_from_pairwise(1, &[]), 0);
    }

    #[test]
    fn singleton_sequence() {
        let (w1, w2) = run(vec![42], vec![-1], 603, true);
        assert_eq!((w1, w2), (0, 0));
    }
}
