//! Rough per-item wall-clock models (ns) for the protocol's data-parallel
//! hot loops.
//!
//! Each model is handed to [`parallel::Parallelism::with_item_cost_ns`]
//! right before a fan-out, so [`parallel::Parallelism::workers_for`] only
//! splits a batch when every worker's chunk carries at least
//! [`parallel::SPLIT_MIN_WORK_NS`] of estimated work — spawning a scoped
//! thread costs tens of microseconds, and small batches of cheap items
//! (e.g. per-label mask additions at `K = 10`) lose more to the spawn than
//! they win back. The hints change how batches are *chunked*, never what
//! they compute: outputs are split-invariant by construction, so results
//! stay bit-identical with or without them.
//!
//! The models only need to be right to an order of magnitude. They all
//! reduce to "exponent bits × cost of one Montgomery multiplication",
//! with the multiplication cost quadratic in the modulus limb count —
//! the same shape the `bigint` ablation benches measure.

use dgk::DgkPublicKey;
use paillier::PublicKey;

/// ~cost of one Montgomery multiplication mod a `modulus_bits`-wide
/// modulus: quadratic in the limb count, ~5 ns per limb product.
fn mont_mul_cost_ns(modulus_bits: u64) -> u64 {
    let k = modulus_bits.div_ceil(64).max(1);
    (k * k).max(4) * 5
}

/// One Paillier encryption: the `r^n` blind dominates — an `|n|`-bit
/// exponent mod `n²`.
pub(crate) fn paillier_encrypt_cost_ns(pk: &PublicKey) -> u64 {
    pk.modulus().bits().max(1) * mont_mul_cost_ns(pk.modulus_squared().bits())
}

/// One CRT Paillier decryption: two half-width exponentiations under the
/// quarter-size `p²`/`q²` contexts — about half of one full-size
/// exponentiation.
pub(crate) fn paillier_decrypt_cost_ns(pk: &PublicKey) -> u64 {
    (paillier_encrypt_cost_ns(pk) / 2).max(1)
}

/// One RNG-free homomorphic step (`add` / `add_plain`): a handful of
/// modular multiplications mod `n²`. Cheap — the point of hinting it is
/// to keep small per-label fan-outs sequential.
pub(crate) fn paillier_add_cost_ns(pk: &PublicKey) -> u64 {
    4 * mont_mul_cost_ns(pk.modulus_squared().bits())
}

/// One leg of an `ℓ`-bit DGK comparison: `ℓ` bit-encryptions, `ℓ`
/// witness multi-exponentiations, or `ℓ` CRT zero tests. All three are
/// within a small factor of `ℓ · blind_bits / 2` multiplications over
/// `Z_n`, which is accurate enough to decide whether a pairwise batch is
/// worth splitting.
pub(crate) fn dgk_compare_leg_cost_ns(pk: &DgkPublicKey) -> u64 {
    let ell = pk.compare_bits() as u64;
    (ell * pk.blind_bits() / 2).max(1) * mont_mul_cost_ns(pk.modulus().bits())
}
