//! Bit-width bookkeeping for shares, masks and comparisons.
//!
//! Every plaintext the protocol manipulates is a *signed* integer that must
//! simultaneously fit:
//!
//! * the Paillier signed window `(−n/2, n/2)`;
//! * the DGK comparison input domain `[0, 2^ℓ)` after the public offset.
//!
//! [`ShareDomain`] centralizes the budget. With defaults (votes scaled by
//! `2^16`, per-user share bound `2^30`, masks `2^34`, `ℓ = 40`):
//!
//! * per-user shares `a^u, b^u ∈ [−2^30, 2^30)`;
//! * aggregated shares over ≤ 128 users stay below `2^37`;
//! * scalar blinding masks add at most `2^34`;
//! * any compared quantity has magnitude `< 2^39 = offset`, so the
//!   offset-shifted comparison inputs fit `ℓ = 40` bits.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error: a value escaped the domain budget (indicates a configuration
/// error, e.g. too many users for the share bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharesOutOfRange {
    /// The offending value.
    pub value: i128,
    /// The bound it violated.
    pub bound: i128,
}

impl fmt::Display for SharesOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} escapes domain bound ±{}", self.value, self.bound)
    }
}

impl Error for SharesOutOfRange {}

/// The share/mask/comparison bit-width configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareDomain {
    /// Per-user additive shares are drawn from `[−2^share_bits, 2^share_bits)`.
    pub share_bits: u32,
    /// Blinding masks are drawn from `[0, 2^mask_bits)`.
    pub mask_bits: u32,
    /// DGK comparison width `ℓ`; compared magnitudes must stay below
    /// `2^(ℓ−1)`.
    pub compare_bits: u32,
}

impl ShareDomain {
    /// The default budget described in the module docs.
    pub fn paper() -> Self {
        ShareDomain { share_bits: 30, mask_bits: 34, compare_bits: 40 }
    }

    /// A slimmer budget for fast tests (fewer DGK bit encryptions).
    ///
    /// Still wide enough for `2^16`-scaled votes from a handful of test
    /// users: `b`-shares carry the full scaled vote, so aggregates reach
    /// `M·(2^18 + 2^16) ≈ 2^21.5` for `M ≤ 8`, masks add `2^21`, and all
    /// compared quantities stay below the `2^25` offset.
    pub fn test() -> Self {
        ShareDomain { share_bits: 18, mask_bits: 20, compare_bits: 26 }
    }

    /// The public comparison offset `2^(ℓ−1)` added to signed values
    /// before a DGK comparison.
    pub fn compare_offset(&self) -> i128 {
        1i128 << (self.compare_bits - 1)
    }

    /// Splits `value` into additive shares `(a, b)` with `a + b = value`
    /// and `a` uniform in `[−2^share_bits, 2^share_bits)`.
    pub fn split<R: Rng + ?Sized>(&self, value: i128, rng: &mut R) -> (i128, i128) {
        let bound = 1i128 << self.share_bits;
        let a = rng.gen_range(-bound..bound);
        (a, value - a)
    }

    /// Splits each element of a vector.
    pub fn split_vec<R: Rng + ?Sized>(
        &self,
        values: &[i128],
        rng: &mut R,
    ) -> (Vec<i128>, Vec<i128>) {
        values.iter().map(|&v| self.split(v, rng)).unzip()
    }

    /// Samples a blinding mask in `[0, 2^mask_bits)`.
    pub fn random_mask<R: Rng + ?Sized>(&self, rng: &mut R) -> i128 {
        rng.gen_range(0..(1i128 << self.mask_bits))
    }

    /// Encodes a signed value for DGK comparison: `v + offset`, checked to
    /// land in `[0, 2^ℓ)`.
    ///
    /// # Errors
    ///
    /// Returns [`SharesOutOfRange`] if `|v| >= 2^(ℓ−1)`.
    pub fn encode_compare(&self, v: i128) -> Result<u64, SharesOutOfRange> {
        let offset = self.compare_offset();
        if v <= -offset || v >= offset {
            return Err(SharesOutOfRange { value: v, bound: offset });
        }
        Ok((v + offset) as u64)
    }

    /// Inverse of [`ShareDomain::encode_compare`].
    pub fn decode_compare(&self, encoded: u64) -> i128 {
        encoded as i128 - self.compare_offset()
    }

    /// Clamps a real-valued noise draw so its scaled magnitude cannot
    /// escape the comparison domain (a `> 12σ` event, probability
    /// `< 10^-32`; documented in DESIGN.md).
    pub fn clamp_noise(&self, noise: f64, scale: f64) -> f64 {
        let limit = (self.compare_offset() / 8) as f64 / scale;
        noise.clamp(-limit, limit)
    }
}

impl Default for ShareDomain {
    fn default() -> Self {
        ShareDomain::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_reconstructs() {
        let d = ShareDomain::paper();
        let mut rng = StdRng::seed_from_u64(1);
        for v in [0i128, 1, -1, 65536, -70000, 1 << 36] {
            let (a, b) = d.split(v, &mut rng);
            assert_eq!(a + b, v, "shares of {v}");
            assert!(a.abs() <= 1 << d.share_bits);
        }
    }

    #[test]
    fn split_vec_reconstructs() {
        let d = ShareDomain::test();
        let mut rng = StdRng::seed_from_u64(2);
        let vals = vec![5i128, -3, 100, 0];
        let (a, b) = d.split_vec(&vals, &mut rng);
        for i in 0..vals.len() {
            assert_eq!(a[i] + b[i], vals[i]);
        }
    }

    #[test]
    fn shares_look_uniform() {
        // The a-share of a fixed value should spread across the bound.
        let d = ShareDomain::test(); // bound 2^10
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 0;
        let mut hi = 0;
        for _ in 0..1000 {
            let (a, _) = d.split(7, &mut rng);
            if a < -512 {
                lo += 1;
            }
            if a >= 512 {
                hi += 1;
            }
        }
        assert!(lo > 150 && hi > 150, "share spread lo={lo} hi={hi}");
    }

    #[test]
    fn compare_encoding_roundtrip() {
        let d = ShareDomain::paper();
        for v in [0i128, 1, -1, 1 << 38, -(1 << 38), 12345] {
            let enc = d.encode_compare(v).unwrap();
            assert!(enc < 1 << d.compare_bits);
            assert_eq!(d.decode_compare(enc), v);
        }
    }

    #[test]
    fn compare_encoding_preserves_order() {
        let d = ShareDomain::test();
        let vals = [-100i128, -1, 0, 1, 99];
        for w in vals.windows(2) {
            assert!(d.encode_compare(w[0]).unwrap() < d.encode_compare(w[1]).unwrap());
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let d = ShareDomain::test();
        let off = d.compare_offset();
        assert!(d.encode_compare(off).is_err());
        assert!(d.encode_compare(-off).is_err());
        assert!(d.encode_compare(off - 1).is_ok());
    }

    #[test]
    fn masks_nonnegative_and_bounded() {
        let d = ShareDomain::paper();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let m = d.random_mask(&mut rng);
            assert!((0..(1i128 << d.mask_bits)).contains(&m));
        }
    }

    #[test]
    fn clamp_noise_passes_typical_values() {
        let d = ShareDomain::paper();
        assert_eq!(d.clamp_noise(3.7, 65536.0), 3.7);
        let extreme = d.clamp_noise(1e30, 65536.0);
        assert!(extreme < 1e30);
    }

    #[test]
    fn error_display() {
        let e = SharesOutOfRange { value: 100, bound: 50 };
        assert!(e.to_string().contains("100"));
    }
}
