//! Restoration — Alg. 3 of the paper.
//!
//! After the noisy ranking, both servers know the *permuted* winner slot
//! `π(ĩ*)` but neither knows the double permutation `π = π1∘π2`. The
//! restoration protocol walks an encrypted indicator vector back through
//! both servers' permutation inverses, each leg masked so the other side
//! learns nothing it did not already know, until S2 holds the plain
//! indicator `e_{ĩ*}` — the true label index — which it then shares with
//! S1 (the protocol's public output).
//!
//! Message walk (masks `r1` from S1, `r2` from S2, both per-entry):
//!
//! 1. S2 encrypts `π(e)` under its own pk2, sends to S1;
//! 2. S1 applies `π1⁻¹`, homomorphically adds `r1`, returns
//!    `E_pk2[π2(e) + r1]`;
//! 3. S2 decrypts and sends back the plaintext `π2(e) + r1`;
//! 4. S1 strips `r1` and re-encrypts under its own pk1 → `E_pk1[π2(e)]`;
//! 5. S2 applies `π2⁻¹` and adds `r2` → `E_pk1[e + r2]`;
//! 6. S1 decrypts and returns the plaintext `e + r2`;
//! 7. S2 strips `r2`, reads off the winner index, and announces it.

use paillier::Ciphertext;
use rand::Rng;
use transport::{ByzantineAction, Endpoint, PartyId, Step};

use crate::audit::{transpose01, AuditTap};
use crate::error::SmcError;
use crate::permutation::Permutation;
use crate::session::ServerContext;

/// S1's side of restoration. `pi1` is the permutation S1 chose during
/// Blind-and-Permute. `tap` records the audit transcript; pass
/// [`AuditTap::disabled`] for unaudited runs. Returns the true label
/// index.
///
/// # Errors
///
/// Fails on transport, cryptosystem or domain errors, and with
/// [`SmcError::AuditFailure`] when a challenge convicts the peer.
pub fn server1_restore<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    pi1: &Permutation,
    step: Step,
    rng: &mut R,
    tap: &mut AuditTap,
) -> Result<usize, SmcError> {
    let k = ctx.config().num_classes;
    let domain = ctx.domain();
    let codec1 = ctx.own_codec();
    let codec2 = ctx.peer_codec();
    let pk2 = ctx.peer_public();
    let par = ctx.parallelism();
    tap.begin(endpoint)?;
    // A tampering S1 walks the indicator through the wrong inverse; the
    // tap attests to the permutation actually used, which Restoration
    // checks against the one verified at the second Blind-and-Permute.
    let used_pi1 = if tap.byzantine() == Some(ByzantineAction::TamperPermutation) {
        transpose01(pi1)
    } else {
        pi1.clone()
    };
    tap.permutation(&used_pi1);

    // Step 1 output from S2: E_pk2[π(e)].
    let enc_pi_e: Vec<Ciphertext> = endpoint.recv(PartyId::Server2, step)?;
    tap.record_received(&enc_pi_e);
    if enc_pi_e.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: enc_pi_e.len() });
    }

    // Step 2: revert π1 and add per-entry mask r1.
    let reverted = used_pi1.inverse().apply(&enc_pi_e);
    let mut r1: Vec<i128> = (0..k).map(|_| domain.random_mask(rng)).collect();
    if tap.byzantine() == Some(ByzantineAction::DropMask) {
        r1[0] = 0;
    }
    tap.masks(&r1);
    let masked: Vec<Ciphertext> = par
        .with_item_cost_ns(crate::costs::paillier_add_cost_ns(pk2))
        .try_map(&reverted, |i, c| {
            Ok::<_, SmcError>(pk2.add_plain(c, &codec2.encode_i128(r1[i])?))
        })?;
    tap.record_sent(&masked);
    endpoint.send(PartyId::Server2, step, &masked)?;

    // Step 3 arrives in plaintext: π2(e) + r1.
    let plain_masked: Vec<i128> = endpoint.recv(PartyId::Server2, step)?;
    tap.record_received(&plain_masked);
    if plain_masked.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: plain_masked.len() });
    }

    // Step 4: strip r1 and re-encrypt under own pk1 — one seed-derived
    // RNG stream per entry, fanned out.
    let enc_pi2_e: Vec<Ciphertext> = par
        .with_item_cost_ns(crate::costs::paillier_encrypt_cost_ns(ctx.own_public()))
        .try_map_seeded(&plain_masked, rng, |i, &v, item_rng| {
            Ok::<_, SmcError>(ctx.own_public().encrypt(&codec1.encode_i128(v - r1[i])?, item_rng)?)
        })?;
    tap.record_sent(&enc_pi2_e);
    endpoint.send(PartyId::Server2, step, &enc_pi2_e)?;

    // Step 5 output from S2: E_pk1[e + r2]; step 6: decrypt and return.
    let enc_e_masked: Vec<Ciphertext> = endpoint.recv(PartyId::Server2, step)?;
    tap.record_received(&enc_e_masked);
    if enc_e_masked.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: enc_e_masked.len() });
    }

    // Challenge-verify S2's opening before decrypting its final frame.
    tap.verify_peer(endpoint, k, 0, &domain)?;

    let mut plain: Vec<i128> = par
        .with_item_cost_ns(crate::costs::paillier_decrypt_cost_ns(ctx.own_public()))
        .try_map(&enc_e_masked, |_, c| {
            Ok::<_, SmcError>(codec1.decode_i128(&ctx.own_private().decrypt_crt(c)?)?)
        })?;
    tap.record_sent(&plain);
    if tap.byzantine() == Some(ByzantineAction::Equivocate) {
        plain[0] += 1;
    }
    endpoint.send(PartyId::Server2, step, &plain)?;
    tap.flush_opening(endpoint)?;

    // Step 7: S2 announces the winner. (The announcement is not part of
    // the audited transcript — it trails both openings.)
    let winner: u64 = endpoint.recv(PartyId::Server2, step)?;
    Ok(winner as usize)
}

/// S2's side of restoration. `pi2` is S2's Blind-and-Permute permutation
/// and `permuted_slot` the winning slot `π(ĩ*)` both servers learned from
/// the ranking. Returns the true label index.
///
/// # Errors
///
/// Fails on transport, cryptosystem or domain errors, or if the recovered
/// vector is not a valid one-hot indicator (which would mean a corrupted
/// run).
pub fn server2_restore<R: Rng + ?Sized>(
    endpoint: &mut Endpoint,
    ctx: &ServerContext,
    pi2: &Permutation,
    permuted_slot: usize,
    step: Step,
    rng: &mut R,
    tap: &mut AuditTap,
) -> Result<usize, SmcError> {
    let k = ctx.config().num_classes;
    let domain = ctx.domain();
    let codec1 = ctx.peer_codec();
    let codec2 = ctx.own_codec();
    let pk1 = ctx.peer_public();
    let par = ctx.parallelism();
    tap.begin(endpoint)?;
    let used_pi2 = if tap.byzantine() == Some(ByzantineAction::TamperPermutation) {
        transpose01(pi2)
    } else {
        pi2.clone()
    };
    tap.permutation(&used_pi2);

    // Step 1: encrypted indicator at the permuted slot, under own pk2.
    let mut indicator = vec![0i128; k];
    indicator[permuted_slot] = 1;
    let enc_indicator: Vec<Ciphertext> = par
        .with_item_cost_ns(crate::costs::paillier_encrypt_cost_ns(ctx.own_public()))
        .try_map_seeded(&indicator, rng, |_, &v, item_rng| {
            Ok::<_, SmcError>(ctx.own_public().encrypt(&codec2.encode_i128(v)?, item_rng)?)
        })?;
    tap.record_sent(&enc_indicator);
    endpoint.send(PartyId::Server1, step, &enc_indicator)?;

    // Step 3: decrypt S1's masked, π1-reverted vector and bounce it back
    // in plaintext.
    let masked: Vec<Ciphertext> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&masked);
    if masked.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: masked.len() });
    }
    let mut plain_masked: Vec<i128> = par
        .with_item_cost_ns(crate::costs::paillier_decrypt_cost_ns(ctx.own_public()))
        .try_map(&masked, |_, c| {
            Ok::<_, SmcError>(codec2.decode_i128(&ctx.own_private().decrypt_crt(c)?)?)
        })?;
    tap.record_sent(&plain_masked);
    if tap.byzantine() == Some(ByzantineAction::Equivocate) {
        plain_masked[0] += 1;
    }
    endpoint.send(PartyId::Server1, step, &plain_masked)?;

    // Step 5: revert π2 on the re-encrypted vector and add r2.
    let enc_pi2_e: Vec<Ciphertext> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&enc_pi2_e);
    if enc_pi2_e.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: enc_pi2_e.len() });
    }
    let reverted = used_pi2.inverse().apply(&enc_pi2_e);
    let mut r2: Vec<i128> = (0..k).map(|_| domain.random_mask(rng)).collect();
    if tap.byzantine() == Some(ByzantineAction::DropMask) {
        r2[0] = 0;
    }
    tap.masks(&r2);
    let masked_e: Vec<Ciphertext> = par
        .with_item_cost_ns(crate::costs::paillier_add_cost_ns(pk1))
        .try_map(&reverted, |i, c| {
            Ok::<_, SmcError>(pk1.add_plain(c, &codec1.encode_i128(r2[i])?))
        })?;
    tap.record_sent(&masked_e);
    if tap.byzantine() == Some(ByzantineAction::ReplayStaleFrame) {
        // Resend the step-1 indicator frame in place of the masked one;
        // same shape, stale content.
        endpoint.send(PartyId::Server1, step, &enc_indicator)?;
    } else {
        endpoint.send(PartyId::Server1, step, &masked_e)?;
    }
    tap.flush_opening(endpoint)?;

    // Step 6 arrives in plaintext: e + r2. Step 7: strip r2 and read the
    // indicator.
    let plain_e_masked: Vec<i128> = endpoint.recv(PartyId::Server1, step)?;
    tap.record_received(&plain_e_masked);
    if plain_e_masked.len() != k {
        return Err(SmcError::LengthMismatch { expected: k, got: plain_e_masked.len() });
    }

    // Challenge-verify S1's opening before the one-hot read-off: a
    // convicted peer must never influence the announced label.
    tap.verify_peer(endpoint, k, 0, &domain)?;
    let e: Vec<i128> = plain_e_masked.iter().zip(&r2).map(|(&v, &m)| v - m).collect();
    let winner = e.iter().position(|&v| v == 1);
    let valid = winner.is_some() && e.iter().filter(|&&v| v != 0).count() == 1;
    if !valid {
        // A malformed indicator means protocol corruption, not bad input.
        return Err(SmcError::LengthMismatch {
            expected: 1,
            got: e.iter().filter(|&&v| v != 0).count(),
        });
    }
    let winner = winner.expect("checked above");
    endpoint.send(PartyId::Server1, step, &(winner as u64))?;
    Ok(winner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use transport::Network;

    fn keys() -> &'static SessionKeys {
        static KEYS: OnceLock<SessionKeys> = OnceLock::new();
        KEYS.get_or_init(|| {
            SessionKeys::generate(SessionConfig::test(1, 5), &mut StdRng::seed_from_u64(51))
        })
    }

    /// Runs restoration for a known joint permutation and target label.
    fn run(true_label: usize, seed: u64) -> (usize, usize) {
        let k = keys().config().num_classes;
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut rng = StdRng::seed_from_u64(seed);
        let pi1 = Permutation::random(k, &mut rng);
        let pi2 = Permutation::random(k, &mut rng);
        // π = π1 ∘ π2; where does the true label land?
        let slot = pi1.compose(&pi2).apply_index(true_label);

        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            let pi1_ref = &pi1;
            let pi2_ref = &pi2;
            let h1 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + 1);
                server1_restore(
                    &mut s1,
                    &s1_ctx,
                    pi1_ref,
                    Step::Restoration,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
            let h2 = scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed + 2);
                server2_restore(
                    &mut s2,
                    &s2_ctx,
                    pi2_ref,
                    slot,
                    Step::Restoration,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
            (h1.join().unwrap(), h2.join().unwrap())
        })
    }

    #[test]
    fn recovers_every_label() {
        for label in 0..5 {
            let (w1, w2) = run(label, 900 + label as u64);
            assert_eq!(w1, w2, "servers must agree");
            assert_eq!(w1, label, "restoration must invert the permutation");
        }
    }

    #[test]
    fn many_random_permutations() {
        for seed in 0..10u64 {
            let label = (seed % 5) as usize;
            let (w1, w2) = run(label, 1000 + seed * 13);
            assert_eq!((w1, w2), (label, label), "seed {seed}");
        }
    }

    #[test]
    fn restoration_traffic_metered() {
        let k = keys().config().num_classes;
        let s1_ctx = keys().server1();
        let s2_ctx = keys().server2();
        let mut rng = StdRng::seed_from_u64(3);
        let pi1 = Permutation::random(k, &mut rng);
        let pi2 = Permutation::random(k, &mut rng);
        let slot = pi1.compose(&pi2).apply_index(2);
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        let meter = std::sync::Arc::clone(net.meter());
        std::thread::scope(|scope| {
            let pi1 = &pi1;
            let pi2 = &pi2;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(4);
                server1_restore(
                    &mut s1,
                    &s1_ctx,
                    pi1,
                    Step::Restoration,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(5);
                server2_restore(
                    &mut s2,
                    &s2_ctx,
                    pi2,
                    slot,
                    Step::Restoration,
                    &mut rng,
                    &mut AuditTap::disabled(),
                )
                .unwrap()
            });
        });
        assert!(meter.report().step_bytes(Step::Restoration) > 0);
    }
}
