//! Hierarchical sharded streaming aggregation — the tree layer that
//! turns the flat O(|U|·K) secure-sum fold into constant-memory streams.
//!
//! Paillier addition is a modular multiplication of canonical residues:
//! it is associative, commutative, and its identity is the literal
//! ciphertext `1` ([`paillier::PublicKey::zero_ciphertext`]). Partial
//! sums therefore compose across any tree shape into **bit-identical**
//! aggregates — the property everything in this module leans on. Users
//! are deterministically partitioned into shards ([`ShardPlan`], derived
//! from a round-shared seed), each shard folds its members' encrypted
//! share vectors into a running partial sum *as uploads arrive*
//! ([`ShardAccumulator`]), and only the shard aggregates — O(shards · K)
//! ciphertexts — flow up to the final combine. Server-side live memory
//! is bounded by the shard geometry and `K`, never by `|U|`.
//!
//! Memory model per mode:
//!
//! * **strict** (no dropouts possible): a validated upload is folded into
//!   its shard's partial sum and dropped immediately — O(K) live
//!   ciphertexts per shard, O(chunk · K) transiently while a chunk of
//!   arrivals fans its fold across classes.
//! * **resilient** (dropout-tolerant): additive two-server shares only
//!   recombine over the *intersection* of both servers' survivor sets,
//!   which is known only after the shard's survivor exchange. Each
//!   shard's uploads are therefore held until its per-shard
//!   reconciliation, then stream-folded and freed — the live window is
//!   one shard, O(max_shard · K), instead of the whole round's
//!   O(|U| · K).
//!
//! The flat path is exactly the 1-shard instance of this layer, so every
//! configuration releases the same [`ConsensusFingerprint`]
//! (`consensus_core::secure`) — pinned by proptests and the
//! `tests/shard.rs` matrix.

use paillier::{Ciphertext, PublicKey};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// How a round's roster is partitioned into aggregation shards.
///
/// The default (`num_shards == 1`) is the flat path: one shard holding
/// everyone, no tree. Counts above the roster size are clamped at plan
/// derivation — a shard is never empty *by construction* of the clamp,
/// but hashed assignment may still leave some shards without members,
/// which every consumer tolerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Number of shards the roster is hashed into (≥ 1).
    pub num_shards: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::flat()
    }
}

impl ShardConfig {
    /// The flat path: a single shard holding the whole roster.
    pub fn flat() -> Self {
        ShardConfig { num_shards: 1 }
    }

    /// `num_shards` shards (clamped to ≥ 1).
    pub fn new(num_shards: usize) -> Self {
        ShardConfig { num_shards: num_shards.max(1) }
    }
}

/// SplitMix64 — the same finalizer the step-seed derivation uses, here
/// hashing (seed, user) into a shard index.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic partition of one round's roster into shards.
///
/// Both servers derive the plan independently from the *shared* round
/// seed (not their private per-server seeds), so their per-shard
/// survivor exchanges line up without coordination. Membership is
/// `splitmix64(seed ⊕ user) mod shards`; within a shard, users keep the
/// roster's ascending order, and the shard list itself is iterated in
/// index order — every consumer walks the same deterministic sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Derives the plan for `roster` under `config`, keyed by the
    /// round-shared `seed`. The shard count is clamped to the roster
    /// size, so the plan never has more shards than users.
    pub fn derive(seed: u64, roster: &[usize], config: ShardConfig) -> ShardPlan {
        let num_shards = config.num_shards.max(1).min(roster.len().max(1));
        let mut shards: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for &u in roster {
            let slot = (splitmix64(seed ^ u as u64) % num_shards as u64) as usize;
            shards[slot].push(u);
        }
        ShardPlan { shards }
    }

    /// The flat single-shard plan over `roster` — what the unsharded
    /// entry points use.
    pub fn flat(roster: &[usize]) -> ShardPlan {
        ShardPlan { shards: vec![roster.to_vec()] }
    }

    /// Number of shards (≥ 1; some may be empty under hashed assignment).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The member lists, one per shard, each ascending.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// Total roster size across all shards.
    pub fn num_users(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Size of the largest shard — the resilient path's live-buffer bound.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Rescales a calibrated noise σ to the survivor count a round actually
/// realized — the degraded-mode noise recalibration shared by the
/// engine's honest RDP charge and the campaign's worst-case admission
/// check.
///
/// Each user contributes a noise share of variance `σ²/(2·intended)`
/// calibrated for the intended roster; when only `realized` shares land
/// (dropouts up to and including an *entire shard* vanishing), each
/// server's aggregate noise is `N(0, σ²·realized / (2·intended))`, so
/// the effective σ of the released statistic is
/// `σ·√(realized/intended)`. Charging RDP at this realized σ is the
/// honest accounting for a degraded round — rather than aborting it, or
/// claiming the full-roster σ that was never achieved.
///
/// Returns `0.0` when either count is zero (no noise was realized; the
/// caller must treat the round as unreleasable).
pub fn recalibrate_sigma(sigma: f64, intended: usize, realized: usize) -> f64 {
    if intended == 0 || realized == 0 {
        return 0.0;
    }
    sigma * (realized.min(intended) as f64 / intended as f64).sqrt()
}

/// Intersection of two ascending `usize` lists by sorted merge — O(n+m)
/// where the old `Vec::contains` scan was O(n·m). Survivor lists are
/// ascending by construction (roster order), which the debug assertion
/// pins.
pub fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "left list must be ascending");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "right list must be ascending");
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// How many buffered uploads a streaming fold accumulates before fanning
/// the per-class products out through [`Parallelism`]. Bounds the
/// transient memory of the strict streaming path at `CHUNK · K`
/// ciphertexts while keeping each fan-out large enough to be worth
/// splitting on multi-core machines.
pub const STREAM_CHUNK: usize = 32;

/// One shard's running partial sums: `vectors_per_user × num_classes`
/// live ciphertexts plus the ascending list of folded members — the
/// constant-memory core of streaming aggregation.
///
/// Uploads are folded in with [`ShardAccumulator::fold`] (single upload,
/// drop-after-fold) or [`ShardAccumulator::fold_chunk`] (a bounded chunk
/// fanned across class slots via [`Parallelism`]). Because Paillier
/// addition is a canonical modular multiplication, the running products
/// are bit-identical to the buffered fold they replace, for every chunk
/// size and thread count.
#[derive(Debug, Clone)]
pub struct ShardAccumulator {
    sums: Vec<Vec<Ciphertext>>,
    members: Vec<usize>,
}

impl ShardAccumulator {
    /// An empty accumulator holding `vectors_per_user` running sums of
    /// `num_classes` identity ciphertexts each.
    pub fn new(key: &PublicKey, vectors_per_user: usize, num_classes: usize) -> ShardAccumulator {
        ShardAccumulator {
            sums: vec![vec![key.zero_ciphertext(); num_classes]; vectors_per_user],
            members: Vec::new(),
        }
    }

    /// Folds one user's upload (`vectors_per_user` vectors of
    /// `num_classes` ciphertexts) into the running sums. The upload is
    /// consumed — nothing is retained beyond the O(K) slots.
    pub fn fold(&mut self, key: &PublicKey, user: usize, vecs: Vec<Vec<Ciphertext>>) {
        debug_assert_eq!(vecs.len(), self.sums.len(), "vectors per user");
        for (sum, vec) in self.sums.iter_mut().zip(&vecs) {
            debug_assert_eq!(vec.len(), sum.len(), "class arity");
            for (slot, share) in sum.iter_mut().zip(vec) {
                *slot = key.add(slot, share);
            }
        }
        self.members.push(user);
    }

    /// Folds a chunk of uploads, fanning the independent per-class
    /// products across `par` (hinted with the chunk's Paillier-add cost
    /// so small chunks stay sequential). The chunk is consumed.
    pub fn fold_chunk(
        &mut self,
        key: &PublicKey,
        par: &Parallelism,
        chunk: Vec<(usize, Vec<Vec<Ciphertext>>)>,
    ) {
        if chunk.is_empty() {
            return;
        }
        let num_classes = self.sums.first().map_or(0, Vec::len);
        let fold_par =
            par.with_item_cost_ns(chunk.len() as u64 * crate::costs::paillier_add_cost_ns(key));
        for v in 0..self.sums.len() {
            let base = std::mem::take(&mut self.sums[v]);
            self.sums[v] = fold_par.map_n(num_classes, |k| {
                let mut slot = base[k].clone();
                for (_, vecs) in &chunk {
                    slot = key.add(&slot, &vecs[v][k]);
                }
                slot
            });
        }
        self.members.extend(chunk.iter().map(|(u, _)| *u));
    }

    /// Users folded so far, in fold order (ascending within a shard).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Merges another accumulator's partial sums and members into this
    /// one — the tree-combine step. Consumes `other`.
    pub fn merge(&mut self, key: &PublicKey, other: ShardAccumulator) {
        debug_assert_eq!(other.sums.len(), self.sums.len(), "vectors per user");
        for (sum, partial) in self.sums.iter_mut().zip(&other.sums) {
            for (slot, share) in sum.iter_mut().zip(partial) {
                *slot = key.add(slot, share);
            }
        }
        self.members.extend(other.members);
    }

    /// The final aggregated sums; consumes the accumulator.
    pub fn into_sums(self) -> Vec<Vec<Ciphertext>> {
        self.sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_key(rng: &mut StdRng) -> (paillier::Keypair, PublicKey) {
        let kp = paillier::Keypair::generate(rng, 64);
        let pk = kp.public_key().clone();
        (kp, pk)
    }

    #[test]
    fn plan_partitions_whole_roster_in_order() {
        let roster: Vec<usize> = (0..100).collect();
        for shards in [1, 2, 7, 64, 1000] {
            let plan = ShardPlan::derive(42, &roster, ShardConfig::new(shards));
            assert_eq!(plan.num_shards(), shards.min(roster.len()));
            assert_eq!(plan.num_users(), roster.len());
            let mut all: Vec<usize> = plan.shards().iter().flatten().copied().collect();
            for shard in plan.shards() {
                assert!(shard.windows(2).all(|w| w[0] < w[1]), "ascending within shard");
            }
            all.sort_unstable();
            assert_eq!(all, roster, "every user in exactly one shard");
        }
    }

    #[test]
    fn plan_is_seed_deterministic() {
        let roster: Vec<usize> = (0..40).collect();
        let a = ShardPlan::derive(7, &roster, ShardConfig::new(5));
        let b = ShardPlan::derive(7, &roster, ShardConfig::new(5));
        let c = ShardPlan::derive(8, &roster, ShardConfig::new(5));
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed reshuffles (overwhelmingly likely at 40 users)");
    }

    #[test]
    fn recalibrated_sigma_tracks_survivor_fraction() {
        assert_eq!(recalibrate_sigma(20.0, 100, 100), 20.0);
        let half = recalibrate_sigma(20.0, 100, 50);
        assert!((half - 20.0 * 0.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(recalibrate_sigma(20.0, 0, 5), 0.0);
        assert_eq!(recalibrate_sigma(20.0, 5, 0), 0.0);
        // A miscounted survivor set can never inflate σ past calibration.
        assert_eq!(recalibrate_sigma(20.0, 5, 9), 20.0);
    }

    #[test]
    fn intersect_sorted_matches_naive() {
        let a = vec![0, 2, 3, 5, 9, 11];
        let b = vec![1, 2, 5, 9, 10, 12];
        assert_eq!(intersect_sorted(&a, &b), vec![2, 5, 9]);
        assert_eq!(intersect_sorted(&a, &[]), Vec::<usize>::new());
        assert_eq!(intersect_sorted(&a, &a), a);
    }

    #[test]
    fn sharded_fold_is_bit_identical_to_flat() {
        let mut rng = StdRng::seed_from_u64(5);
        let (_kp, pk) = test_key(&mut rng);
        let users: Vec<usize> = (0..13).collect();
        let uploads: Vec<Vec<Vec<Ciphertext>>> = users
            .iter()
            .map(|_| {
                (0..2)
                    .map(|_| {
                        (0..3).map(|_| pk.encrypt_u64(rng.gen::<u64>() % 100, &mut rng)).collect()
                    })
                    .collect()
            })
            .collect();

        // Flat fold, one user at a time.
        let mut flat = ShardAccumulator::new(&pk, 2, 3);
        for (&u, vecs) in users.iter().zip(&uploads) {
            flat.fold(&pk, u, vecs.clone());
        }

        // Sharded fold with chunked parallel fan-out, then tree combine.
        let plan = ShardPlan::derive(99, &users, ShardConfig::new(4));
        let par = Parallelism::new(3).with_min_batch(1);
        let mut combined = ShardAccumulator::new(&pk, 2, 3);
        for shard in plan.shards() {
            let mut acc = ShardAccumulator::new(&pk, 2, 3);
            let chunk: Vec<_> = shard.iter().map(|&u| (u, uploads[u].clone())).collect();
            acc.fold_chunk(&pk, &par, chunk);
            combined.merge(&pk, acc);
        }

        let mut members = combined.members().to_vec();
        members.sort_unstable();
        assert_eq!(members, users);
        let flat_sums = flat.into_sums();
        let sharded_sums = combined.into_sums();
        for (a, b) in flat_sums.iter().zip(&sharded_sums) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.as_raw(), y.as_raw(), "fold grouping must not change the product");
            }
        }
    }
}
