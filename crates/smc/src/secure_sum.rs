//! Secure sum — steps 2 and 6 of Alg. 5.
//!
//! Each user splits a signed vote vector into additive shares and sends
//! each server its share **encrypted under the other server's Paillier
//! key**, so the aggregating server can homomorphically combine
//! ciphertexts it cannot read. The server-side aggregation is the
//! ciphertext product of Eqn. 1.
//!
//! Since the sharded streaming layer ([`crate::shard`]) landed, the
//! server side is no longer a flat buffer-then-fold over all `|U|`
//! uploads: uploads stream into per-shard running partial sums as they
//! arrive and are dropped immediately, so live server memory is bounded
//! by the shard geometry and `K` — never by `|U|`. The unsharded entry
//! points below are the exact 1-shard instance of the same machinery
//! and produce bit-identical aggregates (Paillier addition is a
//! canonical modular multiplication, so fold grouping cannot change the
//! product).
//!
//! Every `r^n mod n²` here runs under the public key's cached Montgomery
//! context (see [`paillier::PublicKey::precompute`]); the per-user
//! encryption cost is the exponentiation itself, with no per-call
//! context setup.

use paillier::{Ciphertext, PublicKey, SignedCodec};
use parallel::Parallelism;
use rand::Rng;
use transport::{Endpoint, PartyId, Step, TransportError};

use crate::error::SmcError;
use crate::session::UserContext;
use crate::shard::{intersect_sorted, ShardAccumulator, ShardPlan, STREAM_CHUNK};
use crate::validate::UploadValidator;

/// User side: encrypts the signed vector `values` under `recipient_key`
/// and sends it to `to`, tagged with `step`. The per-entry encryptions
/// fan out according to `par`, each on its own seed-derived RNG stream,
/// so the message is bit-identical for every thread count.
///
/// `recipient_key` must be the *other* server's key: `pk2` when sending
/// to S1, `pk1` when sending to S2 (use
/// [`send_share_to_server1`] / [`send_share_to_server2`] to get this
/// right automatically).
///
/// # Errors
///
/// Fails on signed-window overflow or transport failure.
pub fn send_encrypted_vector<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    to: PartyId,
    step: Step,
    values: &[i128],
    recipient_key: &PublicKey,
    par: &Parallelism,
    rng: &mut R,
) -> Result<(), SmcError> {
    let encrypted = encrypt_share_vector(values, recipient_key, par, rng)?;
    endpoint.send(to, step, &encrypted)?;
    Ok(())
}

/// Encrypts the signed vector `values` under `recipient_key` without
/// sending it — the payload-capture half of [`send_encrypted_vector`],
/// drawing randomness in the identical order. The crash-recovery
/// supervisor uses this to prepare a user's upload once and replay the
/// *same* ciphertexts across round attempts, keeping recovered rounds
/// bit-identical to uninterrupted ones.
///
/// # Errors
///
/// Fails on signed-window overflow or encryption failure.
pub fn encrypt_share_vector<R: Rng + ?Sized>(
    values: &[i128],
    recipient_key: &PublicKey,
    par: &Parallelism,
    rng: &mut R,
) -> Result<Vec<Ciphertext>, SmcError> {
    let codec = SignedCodec::new(recipient_key);
    let par = par.with_item_cost_ns(crate::costs::paillier_encrypt_cost_ns(recipient_key));
    par.try_map_seeded(values, rng, |_, &v, item_rng| {
        let encoded = codec.encode_i128(v)?;
        recipient_key.encrypt(&encoded, item_rng).map_err(SmcError::from)
    })
}

/// User side: sends the S1-bound share vector (encrypted under pk2).
///
/// # Errors
///
/// See [`send_encrypted_vector`].
pub fn send_share_to_server1<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    ctx: &UserContext,
    step: Step,
    values: &[i128],
    rng: &mut R,
) -> Result<(), SmcError> {
    send_encrypted_vector(
        endpoint,
        PartyId::Server1,
        step,
        values,
        ctx.pk2(),
        ctx.parallelism(),
        rng,
    )
}

/// User side: sends the S2-bound share vector (encrypted under pk1).
///
/// # Errors
///
/// See [`send_encrypted_vector`].
pub fn send_share_to_server2<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    ctx: &UserContext,
    step: Step,
    values: &[i128],
    rng: &mut R,
) -> Result<(), SmcError> {
    send_encrypted_vector(
        endpoint,
        PartyId::Server2,
        step,
        values,
        ctx.pk1(),
        ctx.parallelism(),
        rng,
    )
}

/// Server side: receives one encrypted vector from each of `num_users`
/// users and aggregates them homomorphically under `peer_key` (the key
/// the users encrypted with — i.e. this server's *peer's* key).
///
/// The flat entry point: exactly [`aggregate_user_vectors_sharded`] over
/// the single-shard plan, so the two paths cannot drift.
///
/// Returns the element-wise encrypted sum `E[Σ_u v^u]`.
///
/// # Errors
///
/// Fails on transport errors or if any upload flunks validation:
/// wrong arity, malformed ciphertext, or a replayed sequence number
/// (see [`UploadValidator`]). Strict collection treats all of these as
/// fatal — this is the non-resilient path.
pub fn aggregate_user_vectors(
    endpoint: &mut Endpoint,
    step: Step,
    num_users: usize,
    num_classes: usize,
    peer_key: &PublicKey,
    par: &Parallelism,
) -> Result<Vec<Ciphertext>, SmcError> {
    let roster: Vec<usize> = (0..num_users).collect();
    aggregate_user_vectors_sharded(
        endpoint,
        step,
        &ShardPlan::flat(&roster),
        num_classes,
        peer_key,
        par,
    )
}

/// Sharded streaming variant of [`aggregate_user_vectors`]: walks the
/// plan's shards in index order, streaming each member's upload into the
/// shard's running partial sum the moment it validates (validate → add
/// into slot → drop the upload), then tree-combines the shard
/// aggregates. Live memory is O([`STREAM_CHUNK`] · K) — never O(|U|·K).
///
/// Uploads are drained in plan order, which is safe under any arrival
/// order: since PR 1 the endpoint matches each receive by
/// `(sender, step)`, so an early arrival from a later user is stashed,
/// not misread. Each chunk's per-label ciphertext products of Eqn. 1 fan
/// out across labels according to `par` — each label's product is an
/// independent fold, and because Paillier addition is a canonical
/// modular multiplication the result is bit-identical for every shard
/// count, chunk size, and thread count.
///
/// # Errors
///
/// See [`aggregate_user_vectors`] — strict collection treats every
/// failure as fatal.
pub fn aggregate_user_vectors_sharded(
    endpoint: &mut Endpoint,
    step: Step,
    plan: &ShardPlan,
    num_classes: usize,
    peer_key: &PublicKey,
    par: &Parallelism,
) -> Result<Vec<Ciphertext>, SmcError> {
    let meter = std::sync::Arc::clone(endpoint.meter());
    let mut validator = UploadValidator::new(num_classes);
    let mut combined = ShardAccumulator::new(peer_key, 1, num_classes);
    for shard in plan.shards() {
        if shard.is_empty() {
            continue;
        }
        let mut acc = ShardAccumulator::new(peer_key, 1, num_classes);
        let mut chunk: Vec<(usize, Vec<Vec<Ciphertext>>)> =
            Vec::with_capacity(STREAM_CHUNK.min(shard.len()));
        for &u in shard {
            let from = PartyId::User(u);
            let (seq, shares): (u64, Vec<Ciphertext>) = endpoint.recv_tagged(from, step)?;
            validator.check(&meter, from, step, seq, &shares, peer_key)?;
            // The upload is about to be folded and dropped; nothing is
            // ever received from this user under this call again, so its
            // freshness window can go with it.
            validator.retire(from);
            chunk.push((u, vec![shares]));
            if chunk.len() == STREAM_CHUNK {
                acc.fold_chunk(peer_key, par, std::mem::take(&mut chunk));
            }
        }
        acc.fold_chunk(peer_key, par, chunk);
        combined.merge(peer_key, acc);
    }
    let mut sums = combined.into_sums();
    Ok(sums.pop().expect("accumulator holds exactly one vector kind"))
}

/// Result of a dropout-tolerant aggregation ([`aggregate_surviving_vectors`]):
/// the homomorphic sums restricted to the reconciled survivor set, plus
/// the set itself.
#[derive(Debug, Clone)]
pub struct SurvivorAggregate {
    /// One aggregated ciphertext vector per uploaded vector kind, each
    /// summing only the survivors' contributions.
    pub sums: Vec<Vec<Ciphertext>>,
    /// User ids whose *complete* upload reached **both** servers, in
    /// ascending order — the round's surviving set `U'`.
    pub survivors: Vec<usize>,
}

/// Dropout-tolerant variant of [`aggregate_user_vectors`] — the
/// collection step of the resilient protocol rounds. The flat entry
/// point: exactly [`aggregate_surviving_vectors_sharded`] over the
/// single-shard plan, so the two paths cannot drift.
///
/// Each user in `users` is expected to upload `vectors_per_user`
/// encrypted vectors under `step`. Any per-user receive failure
/// (timeout, detected corruption, codec damage, wrong arity) marks that
/// user as dropped for the whole step and discards its partial upload —
/// a half-arrived contribution must never skew the sum. The two servers
/// then exchange their locally observed survivor lists over the
/// server↔server link and intersect them, so both aggregate exactly the
/// same set `U'` and the additive shares recombine consistently.
///
/// # Errors
///
/// Returns [`SmcError::QuorumLost`] when fewer than `min_users` users
/// survive reconciliation, and propagates transport failures on the
/// server↔server reconciliation exchange itself (user-link failures are
/// absorbed as dropouts).
#[allow(clippy::too_many_arguments)]
pub fn aggregate_surviving_vectors(
    endpoint: &mut Endpoint,
    step: Step,
    users: &[usize],
    num_classes: usize,
    vectors_per_user: usize,
    peer_key: &PublicKey,
    peer_server: PartyId,
    min_users: usize,
    par: &Parallelism,
) -> Result<SurvivorAggregate, SmcError> {
    aggregate_surviving_vectors_sharded(
        endpoint,
        step,
        &ShardPlan::flat(users),
        num_classes,
        vectors_per_user,
        peer_key,
        peer_server,
        min_users,
        par,
    )
}

/// Sharded streaming variant of [`aggregate_surviving_vectors`].
///
/// Additive two-server shares only recombine over the *intersection* of
/// both servers' survivor sets, which is known only after a survivor
/// exchange — so the resilient path cannot fold an upload the instant it
/// arrives the way the strict path does. Instead the live window is one
/// shard: each shard's uploads are buffered, that shard's survivor list
/// is exchanged with `peer_server` and intersected (sorted merge, both
/// lists ascending by construction), the surviving uploads are
/// stream-folded into the shard's partial sum, and the buffer is freed
/// before the next shard starts. Peak memory is O(max_shard · K), not
/// O(|U| · K).
///
/// Both servers derive the identical plan from the round-shared shard
/// seed and walk its shards in index order, so the per-shard exchanges
/// pair up without any extra framing: shard `i`'s list is the `i`-th
/// server↔server message under `step` (empty shards are skipped on both
/// sides identically). Quorum stays a *global* property: the union of
/// per-shard intersections equals the global intersection, and
/// `min_users` is checked once after all shards reconcile — sharding
/// cannot change a round's `QuorumLost` outcome.
///
/// # Errors
///
/// See [`aggregate_surviving_vectors`].
#[allow(clippy::too_many_arguments)]
pub fn aggregate_surviving_vectors_sharded(
    endpoint: &mut Endpoint,
    step: Step,
    plan: &ShardPlan,
    num_classes: usize,
    vectors_per_user: usize,
    peer_key: &PublicKey,
    peer_server: PartyId,
    min_users: usize,
    par: &Parallelism,
) -> Result<SurvivorAggregate, SmcError> {
    let meter = std::sync::Arc::clone(endpoint.meter());
    let mut validator = UploadValidator::new(num_classes);
    // The peer may still be stalled timing out its own missing uploads
    // (possibly across earlier shards it has not finished draining):
    // give each list one full receive budget per expected message in the
    // whole round plus one per exchange, so a slow peer is not mistaken
    // for a dead one (the wait stays finite either way).
    let worst_stall = endpoint
        .timeout_policy()
        .total_budget()
        .saturating_mul((plan.num_users() * vectors_per_user + plan.num_shards()) as u32);
    let mut combined = ShardAccumulator::new(peer_key, vectors_per_user, num_classes);
    for shard in plan.shards() {
        if shard.is_empty() {
            continue;
        }
        // Collect this shard's uploads — the one live buffer.
        let mut collected: Vec<(usize, Vec<Vec<Ciphertext>>)> = Vec::with_capacity(shard.len());
        for &u in shard {
            let from = PartyId::User(u);
            let mut vecs: Vec<Vec<Ciphertext>> = Vec::with_capacity(vectors_per_user);
            for _ in 0..vectors_per_user {
                match endpoint.recv_tagged::<Vec<Ciphertext>>(from, step) {
                    // Validation failure (arity, malformed ciphertext,
                    // replayed seq) is a dropout here, not an abort —
                    // the validator has already counted the rejection
                    // on the meter.
                    Ok((seq, v)) => {
                        if validator.check(&meter, from, step, seq, &v, peer_key).is_err() {
                            vecs.clear();
                            break;
                        }
                        vecs.push(v);
                    }
                    // Lost, late, or damaged: the user is out for this
                    // step. Its remaining messages (if any) stay stashed
                    // under their own step tags and are never misread as
                    // another user's data.
                    Err(
                        TransportError::Timeout(_)
                        | TransportError::Corrupt(_)
                        | TransportError::Codec(_)
                        | TransportError::Disconnected(_)
                        | TransportError::UnknownParty(_),
                    ) => {
                        vecs.clear();
                        break;
                    }
                }
            }
            // Folded or dropped, this user's stream is fully drained —
            // its freshness window goes with it, keeping validator state
            // bounded by the in-flight user, not |U|.
            validator.retire(from);
            if vecs.len() == vectors_per_user {
                collected.push((u, vecs));
            }
        }

        // Reconcile this shard: both servers must fold the same survivor
        // set or the additive shares stop lining up. Failures here are
        // fatal — the server↔server link is the protocol's backbone.
        let local: Vec<u64> = collected.iter().map(|(u, _)| *u as u64).collect();
        endpoint.send(peer_server, step, &local)?;
        let peer: Vec<u64> = endpoint.recv_with_timeout(
            peer_server,
            step,
            transport::TimeoutPolicy::new(worst_stall),
        )?;
        let local_ids: Vec<usize> = local.iter().map(|&u| u as usize).collect();
        let peer_ids: Vec<usize> = peer.iter().map(|&u| u as usize).collect();
        let shard_survivors = intersect_sorted(&local_ids, &peer_ids);
        // A planned shard whose entire membership dropped is a degraded
        // round, not an abort: the shard simply contributes nothing, the
        // global quorum check below still governs releasability, and the
        // engine charges RDP at the σ the surviving shares realize. The
        // meter records the event so soak harnesses can assert the
        // degradation actually happened.
        if shard_survivors.is_empty() {
            meter.record_fault(transport::FaultEvent::ShardDropped);
        }

        // Stream-fold the shard's surviving uploads; everything else —
        // including contributions the peer never saw — is dropped here,
        // and the shard buffer is freed before the next shard starts.
        let mut acc = ShardAccumulator::new(peer_key, vectors_per_user, num_classes);
        let mut chunk: Vec<(usize, Vec<Vec<Ciphertext>>)> =
            Vec::with_capacity(STREAM_CHUNK.min(shard_survivors.len()));
        for (u, vecs) in collected {
            if shard_survivors.binary_search(&u).is_err() {
                continue;
            }
            chunk.push((u, vecs));
            if chunk.len() == STREAM_CHUNK {
                acc.fold_chunk(peer_key, par, std::mem::take(&mut chunk));
            }
        }
        acc.fold_chunk(peer_key, par, chunk);
        combined.merge(peer_key, acc);
    }

    let mut survivors = combined.members().to_vec();
    survivors.sort_unstable();
    if survivors.len() < min_users {
        return Err(SmcError::QuorumLost { step, survivors: survivors.len(), required: min_users });
    }
    Ok(SurvivorAggregate { sums: combined.into_sums(), survivors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transport::Network;

    /// Full secure-sum round: three users split signed vectors, both
    /// servers aggregate; decrypting with the *peer's* private key (test
    /// privilege) recovers the share sums, and the share sums add up to
    /// the true totals.
    #[test]
    fn end_to_end_sum_reconstructs() {
        let mut rng = StdRng::seed_from_u64(10);
        let keys = SessionKeys::generate(SessionConfig::test(3, 4), &mut rng);
        let user_ctx = keys.user();
        let domain = user_ctx.domain();

        let votes: [Vec<i128>; 3] = [vec![1, 0, 0, 0], vec![0, 0, 1, 0], vec![1, -2, 300, 0]];
        let expected: Vec<i128> = (0..4).map(|k| votes.iter().map(|v| v[k]).sum()).collect();

        let mut net = Network::new(3);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);

        let mut a_total = vec![0i128; 4];
        let mut b_total = vec![0i128; 4];
        for (u, vote) in votes.iter().enumerate() {
            let endpoint = net.take_endpoint(PartyId::User(u));
            let (a, b) = domain.split_vec(vote, &mut rng);
            for k in 0..4 {
                a_total[k] += a[k];
                b_total[k] += b[k];
            }
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, &mut rng)
                .unwrap();
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, &mut rng)
                .unwrap();
        }

        let enc_a = aggregate_user_vectors(
            &mut s1,
            Step::SecureSumVotes,
            3,
            4,
            keys.server1().peer_public(),
            &Parallelism::new(2),
        )
        .unwrap();
        let enc_b = aggregate_user_vectors(
            &mut s2,
            Step::SecureSumVotes,
            3,
            4,
            keys.server2().peer_public(),
            &Parallelism::new(2),
        )
        .unwrap();

        // Test privilege: decrypt with the owners' keys to check sums.
        let s2_ctx = keys.server2();
        let codec2 = s2_ctx.own_codec();
        let a_sum: Vec<i128> = enc_a
            .iter()
            .map(|c| codec2.decode_i128(&s2_ctx.own_private().decrypt(c).unwrap()).unwrap())
            .collect();
        let s1_ctx = keys.server1();
        let codec1 = s1_ctx.own_codec();
        let b_sum: Vec<i128> = enc_b
            .iter()
            .map(|c| codec1.decode_i128(&s1_ctx.own_private().decrypt(c).unwrap()).unwrap())
            .collect();

        assert_eq!(a_sum, a_total);
        assert_eq!(b_sum, b_total);
        let total: Vec<i128> = a_sum.iter().zip(&b_sum).map(|(a, b)| a + b).collect();
        assert_eq!(total, expected);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys = SessionKeys::generate(SessionConfig::test(1, 3), &mut rng);
        let user_ctx = keys.user();
        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let user = net.take_endpoint(PartyId::User(0));
        // Send only 2 entries when 3 classes are expected.
        send_share_to_server1(&user, &user_ctx, Step::SecureSumVotes, &[1, 2], &mut rng).unwrap();
        let err = aggregate_user_vectors(
            &mut s1,
            Step::SecureSumVotes,
            1,
            3,
            keys.server1().peer_public(),
            &Parallelism::sequential(),
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::LengthMismatch { expected: 3, got: 2 }));
    }

    #[test]
    fn surviving_aggregation_reconciles_dropouts() {
        // User 1 uploads to S1 only: S2 times out on it, reconciliation
        // must exclude it on BOTH servers so the shares stay aligned.
        let mut rng = StdRng::seed_from_u64(13);
        let keys = SessionKeys::generate(SessionConfig::test(3, 2), &mut rng);
        let user_ctx = keys.user();
        let domain = user_ctx.domain();
        let mut net = transport::Network::builder(3)
            .timeout(transport::TimeoutPolicy::new(std::time::Duration::from_millis(50)))
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);

        let votes: [Vec<i128>; 3] = [vec![1, 0], vec![0, 1], vec![5, 7]];
        let mut expected = vec![0i128; 2];
        for (u, vote) in votes.iter().enumerate() {
            let endpoint = net.take_endpoint(PartyId::User(u));
            let (a, b) = domain.split_vec(vote, &mut rng);
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, &mut rng)
                .unwrap();
            if u != 1 {
                send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, &mut rng)
                    .unwrap();
                for k in 0..2 {
                    expected[k] += vote[k];
                }
            }
        }

        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s1,
                    Step::SecureSumVotes,
                    &[0, 1, 2],
                    2,
                    1,
                    keys.server1().peer_public(),
                    PartyId::Server2,
                    1,
                    &Parallelism::sequential(),
                )
            });
            let h2 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s2,
                    Step::SecureSumVotes,
                    &[0, 1, 2],
                    2,
                    1,
                    keys.server2().peer_public(),
                    PartyId::Server1,
                    1,
                    &Parallelism::sequential(),
                )
            });
            (h1.join().unwrap().unwrap(), h2.join().unwrap().unwrap())
        });
        assert_eq!(r1.survivors, vec![0, 2]);
        assert_eq!(r2.survivors, vec![0, 2]);

        // Test privilege: decrypt both halves and recombine.
        let s2_ctx = keys.server2();
        let codec2 = s2_ctx.own_codec();
        let s1_ctx = keys.server1();
        let codec1 = s1_ctx.own_codec();
        let total: Vec<i128> = (0..2)
            .map(|k| {
                let a = codec2
                    .decode_i128(&s2_ctx.own_private().decrypt(&r1.sums[0][k]).unwrap())
                    .unwrap();
                let b = codec1
                    .decode_i128(&s1_ctx.own_private().decrypt(&r2.sums[0][k]).unwrap())
                    .unwrap();
                a + b
            })
            .collect();
        assert_eq!(total, expected);
    }

    #[test]
    fn hostile_ciphertext_becomes_a_dropout_in_resilient_mode() {
        // User 1 uploads a zero ciphertext to both servers: resilient
        // collection must drop it (and count the rejection), not panic
        // or fold garbage into the sum.
        let mut rng = StdRng::seed_from_u64(15);
        let keys = SessionKeys::generate(SessionConfig::test(2, 2), &mut rng);
        let user_ctx = keys.user();
        let domain = user_ctx.domain();
        let mut net = transport::Network::builder(2)
            .timeout(transport::TimeoutPolicy::new(std::time::Duration::from_millis(50)))
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);

        let good = net.take_endpoint(PartyId::User(0));
        let (a, b) = domain.split_vec(&[1, 0], &mut rng);
        send_share_to_server1(&good, &user_ctx, Step::SecureSumVotes, &a, &mut rng).unwrap();
        send_share_to_server2(&good, &user_ctx, Step::SecureSumVotes, &b, &mut rng).unwrap();
        let evil = net.take_endpoint(PartyId::User(1));
        let zeros = vec![paillier::Ciphertext::from_raw(bigint::Ubig::from(0u64)); 2];
        evil.send(PartyId::Server1, Step::SecureSumVotes, &zeros).unwrap();
        evil.send(PartyId::Server2, Step::SecureSumVotes, &zeros).unwrap();

        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s1,
                    Step::SecureSumVotes,
                    &[0, 1],
                    2,
                    1,
                    keys.server1().peer_public(),
                    PartyId::Server2,
                    1,
                    &Parallelism::sequential(),
                )
            });
            let h2 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s2,
                    Step::SecureSumVotes,
                    &[0, 1],
                    2,
                    1,
                    keys.server2().peer_public(),
                    PartyId::Server1,
                    1,
                    &Parallelism::sequential(),
                )
            });
            (h1.join().unwrap().unwrap(), h2.join().unwrap().unwrap())
        });
        assert_eq!(r1.survivors, vec![0]);
        assert_eq!(r2.survivors, vec![0]);
        assert_eq!(net.meter().fault_stats().rejected_ciphertexts, 2);
    }

    #[test]
    fn losing_quorum_aborts_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(14);
        let keys = SessionKeys::generate(SessionConfig::test(2, 2), &mut rng);
        let user_ctx = keys.user();
        let domain = user_ctx.domain();
        let mut net = transport::Network::builder(2)
            .timeout(transport::TimeoutPolicy::new(std::time::Duration::from_millis(50)))
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        // Only user 0 uploads; the quorum requires both users.
        let endpoint = net.take_endpoint(PartyId::User(0));
        let (a, b) = domain.split_vec(&[1, 0], &mut rng);
        send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, &mut rng).unwrap();
        send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, &mut rng).unwrap();

        let (r1, r2) = std::thread::scope(|scope| {
            let h1 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s1,
                    Step::SecureSumVotes,
                    &[0, 1],
                    2,
                    1,
                    keys.server1().peer_public(),
                    PartyId::Server2,
                    2,
                    &Parallelism::sequential(),
                )
            });
            let h2 = scope.spawn(|| {
                aggregate_surviving_vectors(
                    &mut s2,
                    Step::SecureSumVotes,
                    &[0, 1],
                    2,
                    1,
                    keys.server2().peer_public(),
                    PartyId::Server1,
                    2,
                    &Parallelism::sequential(),
                )
            });
            (h1.join().unwrap(), h2.join().unwrap())
        });
        for r in [r1, r2] {
            match r {
                Err(SmcError::QuorumLost { step, survivors, required }) => {
                    assert_eq!(step, Step::SecureSumVotes);
                    assert_eq!(survivors, 1);
                    assert_eq!(required, 2);
                }
                other => panic!("expected QuorumLost, got {other:?}"),
            }
        }
    }

    #[test]
    fn aggregation_bytes_are_metered() {
        let mut rng = StdRng::seed_from_u64(12);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let user_ctx = keys.user();
        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let user = net.take_endpoint(PartyId::User(0));
        send_share_to_server1(&user, &user_ctx, Step::SecureSumVotes, &[1, 2], &mut rng).unwrap();
        let _ = aggregate_user_vectors(
            &mut s1,
            Step::SecureSumVotes,
            1,
            2,
            keys.server1().peer_public(),
            &Parallelism::sequential(),
        )
        .unwrap();
        let report = net.meter().report();
        assert!(report.step_bytes(Step::SecureSumVotes) > 0);
    }
}
