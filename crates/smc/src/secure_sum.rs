//! Secure sum — steps 2 and 6 of Alg. 5.
//!
//! Each user splits a signed vote vector into additive shares and sends
//! each server its share **encrypted under the other server's Paillier
//! key**, so the aggregating server can homomorphically combine
//! ciphertexts it cannot read. The server-side aggregation is the
//! ciphertext product of Eqn. 1.

use paillier::{Ciphertext, PublicKey, SignedCodec};
use rand::Rng;
use transport::{Endpoint, PartyId, Step};

use crate::error::SmcError;
use crate::session::UserContext;

/// User side: encrypts the signed vector `values` under `recipient_key`
/// and sends it to `to`, tagged with `step`.
///
/// `recipient_key` must be the *other* server's key: `pk2` when sending
/// to S1, `pk1` when sending to S2 (use
/// [`send_share_to_server1`] / [`send_share_to_server2`] to get this
/// right automatically).
///
/// # Errors
///
/// Fails on signed-window overflow or transport failure.
pub fn send_encrypted_vector<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    to: PartyId,
    step: Step,
    values: &[i128],
    recipient_key: &PublicKey,
    rng: &mut R,
) -> Result<(), SmcError> {
    let codec = SignedCodec::new(recipient_key);
    let encrypted: Vec<Ciphertext> = values
        .iter()
        .map(|&v| {
            let encoded = codec.encode_i128(v)?;
            recipient_key.encrypt(&encoded, rng)
        })
        .collect::<Result<_, _>>()?;
    endpoint.send(to, step, &encrypted)?;
    Ok(())
}

/// User side: sends the S1-bound share vector (encrypted under pk2).
///
/// # Errors
///
/// See [`send_encrypted_vector`].
pub fn send_share_to_server1<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    ctx: &UserContext,
    step: Step,
    values: &[i128],
    rng: &mut R,
) -> Result<(), SmcError> {
    send_encrypted_vector(endpoint, PartyId::Server1, step, values, ctx.pk2(), rng)
}

/// User side: sends the S2-bound share vector (encrypted under pk1).
///
/// # Errors
///
/// See [`send_encrypted_vector`].
pub fn send_share_to_server2<R: Rng + ?Sized>(
    endpoint: &Endpoint,
    ctx: &UserContext,
    step: Step,
    values: &[i128],
    rng: &mut R,
) -> Result<(), SmcError> {
    send_encrypted_vector(endpoint, PartyId::Server2, step, values, ctx.pk1(), rng)
}

/// Server side: receives one encrypted vector from each of `num_users`
/// users and aggregates them homomorphically under `peer_key` (the key
/// the users encrypted with — i.e. this server's *peer's* key).
///
/// Returns the element-wise encrypted sum `E[Σ_u v^u]`.
///
/// # Errors
///
/// Fails on transport errors or if any user sends the wrong arity.
pub fn aggregate_user_vectors(
    endpoint: &mut Endpoint,
    step: Step,
    num_users: usize,
    num_classes: usize,
    peer_key: &PublicKey,
) -> Result<Vec<Ciphertext>, SmcError> {
    let mut acc: Vec<Ciphertext> = vec![peer_key.zero_ciphertext(); num_classes];
    for u in 0..num_users {
        let shares: Vec<Ciphertext> = endpoint.recv(PartyId::User(u), step)?;
        if shares.len() != num_classes {
            return Err(SmcError::LengthMismatch { expected: num_classes, got: shares.len() });
        }
        for (slot, share) in acc.iter_mut().zip(&shares) {
            *slot = peer_key.add(slot, share);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SessionConfig, SessionKeys};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transport::Network;

    /// Full secure-sum round: three users split signed vectors, both
    /// servers aggregate; decrypting with the *peer's* private key (test
    /// privilege) recovers the share sums, and the share sums add up to
    /// the true totals.
    #[test]
    fn end_to_end_sum_reconstructs() {
        let mut rng = StdRng::seed_from_u64(10);
        let keys = SessionKeys::generate(SessionConfig::test(3, 4), &mut rng);
        let user_ctx = keys.user();
        let domain = user_ctx.domain();

        let votes: [Vec<i128>; 3] =
            [vec![1, 0, 0, 0], vec![0, 0, 1, 0], vec![1, -2, 300, 0]];
        let expected: Vec<i128> =
            (0..4).map(|k| votes.iter().map(|v| v[k]).sum()).collect();

        let mut net = Network::new(3);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);

        let mut a_total = vec![0i128; 4];
        let mut b_total = vec![0i128; 4];
        for (u, vote) in votes.iter().enumerate() {
            let endpoint = net.take_endpoint(PartyId::User(u));
            let (a, b) = domain.split_vec(vote, &mut rng);
            for k in 0..4 {
                a_total[k] += a[k];
                b_total[k] += b[k];
            }
            send_share_to_server1(&endpoint, &user_ctx, Step::SecureSumVotes, &a, &mut rng)
                .unwrap();
            send_share_to_server2(&endpoint, &user_ctx, Step::SecureSumVotes, &b, &mut rng)
                .unwrap();
        }

        let enc_a = aggregate_user_vectors(&mut s1, Step::SecureSumVotes, 3, 4, keys.server1().peer_public()).unwrap();
        let enc_b = aggregate_user_vectors(&mut s2, Step::SecureSumVotes, 3, 4, keys.server2().peer_public()).unwrap();

        // Test privilege: decrypt with the owners' keys to check sums.
        let s2_ctx = keys.server2();
        let codec2 = s2_ctx.own_codec();
        let a_sum: Vec<i128> = enc_a
            .iter()
            .map(|c| codec2.decode_i128(&s2_ctx.own_private().decrypt(c).unwrap()).unwrap())
            .collect();
        let s1_ctx = keys.server1();
        let codec1 = s1_ctx.own_codec();
        let b_sum: Vec<i128> = enc_b
            .iter()
            .map(|c| codec1.decode_i128(&s1_ctx.own_private().decrypt(c).unwrap()).unwrap())
            .collect();

        assert_eq!(a_sum, a_total);
        assert_eq!(b_sum, b_total);
        let total: Vec<i128> = a_sum.iter().zip(&b_sum).map(|(a, b)| a + b).collect();
        assert_eq!(total, expected);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let keys = SessionKeys::generate(SessionConfig::test(1, 3), &mut rng);
        let user_ctx = keys.user();
        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let user = net.take_endpoint(PartyId::User(0));
        // Send only 2 entries when 3 classes are expected.
        send_share_to_server1(&user, &user_ctx, Step::SecureSumVotes, &[1, 2], &mut rng).unwrap();
        let err =
            aggregate_user_vectors(&mut s1, Step::SecureSumVotes, 1, 3, keys.server1().peer_public())
                .unwrap_err();
        assert!(matches!(err, SmcError::LengthMismatch { expected: 3, got: 2 }));
    }

    #[test]
    fn aggregation_bytes_are_metered() {
        let mut rng = StdRng::seed_from_u64(12);
        let keys = SessionKeys::generate(SessionConfig::test(1, 2), &mut rng);
        let user_ctx = keys.user();
        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let user = net.take_endpoint(PartyId::User(0));
        send_share_to_server1(&user, &user_ctx, Step::SecureSumVotes, &[1, 2], &mut rng).unwrap();
        let _ = aggregate_user_vectors(&mut s1, Step::SecureSumVotes, 1, 2, keys.server1().peer_public())
            .unwrap();
        let report = net.meter().report();
        assert!(report.step_bytes(Step::SecureSumVotes) > 0);
    }
}
