//! Crash-safe Rényi-DP charge ledger for long-running campaigns.
//!
//! A labeling campaign's primary durable invariant is its privacy
//! budget: no matter how often the daemon crashes and restarts, the
//! total `(ε, δ)` spend must be accounted exactly once per answered
//! round and must never exceed the configured target. The in-memory
//! ledgers in this crate ([`crate::PrivacyLedger`]) and in the core
//! supervisor die with the process; [`DurableRdpLedger`] is the
//! persistent replacement.
//!
//! Every charge is one fsynced record in an append-only journal,
//! framed and crash-recovered by [`transport::journal`] — the same
//! torn-tail discipline the checkpoint store uses, so a record is
//! either fully on disk or silently truncated on replay. Records are
//! keyed by **round id**: charging a round that is already journaled is
//! a no-op, which makes a deterministic re-execution of an interrupted
//! campaign idempotent — the restarted daemon replays the journal,
//! resumes at the exact epsilon spent, and [`DurableRdpLedger::admits`]
//! refuses any round whose worst-case spend would cross the budget.
//!
//! When several concurrent sessions share one ledger (the multi-session
//! reactor in `core::reactor`), each session numbers its own rounds
//! from zero, so a bare round id is ambiguous. Use
//! [`DurableRdpLedger::charge_scoped`], which namespaces the journal
//! key with [`transport::session_scoped_round`]: session 7's round 0
//! and session 9's round 0 become distinct, collision-free entries,
//! while exactly-once semantics still hold per `(session, round)`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use transport::journal::AppendJournal;

use crate::rdp::LinearRdp;

/// Journal file name inside the ledger directory.
const LEDGER_FILE: &str = "ledger.rdp";
/// Record kind byte for one per-round RDP charge.
const CHARGE: u8 = 0x01;

/// Errors surfaced by the durable ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The journal held a fully-checksummed but semantically impossible
    /// record (a torn tail is tolerated silently; this is not that).
    CorruptJournal(&'static str),
    /// The configured epsilon budget is not a positive finite number.
    InvalidBudget(f64),
    /// The configured delta is outside `(0, 1)`.
    InvalidDelta(f64),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io(e) => write!(f, "ledger I/O error: {e}"),
            LedgerError::CorruptJournal(what) => write!(f, "corrupt ledger journal: {what}"),
            LedgerError::InvalidBudget(b) => {
                write!(f, "epsilon budget must be positive and finite, got {b}")
            }
            LedgerError::InvalidDelta(d) => write!(f, "delta must lie in (0, 1), got {d}"),
        }
    }
}

impl Error for LedgerError {}

impl From<std::io::Error> for LedgerError {
    fn from(e: std::io::Error) -> Self {
        LedgerError::Io(e.to_string())
    }
}

struct LedgerInner {
    journal: AppendJournal,
    /// Round id → the linear RDP curve charged for that round.
    charges: BTreeMap<u64, LinearRdp>,
}

/// A crash-safe, exactly-once, budget-enforcing RDP ledger.
///
/// See the [module docs](self) for the durability model. All methods
/// take `&self`; the ledger is safe to share behind an `Arc` between a
/// campaign runner and its telemetry.
pub struct DurableRdpLedger {
    inner: Mutex<LedgerInner>,
    path: PathBuf,
    budget_epsilon: f64,
    delta: f64,
}

impl fmt::Debug for DurableRdpLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DurableRdpLedger({}, ε ≤ {}, δ = {})",
            self.path.display(),
            self.budget_epsilon,
            self.delta
        )
    }
}

impl DurableRdpLedger {
    /// Opens (or creates) the charge journal at `dir/ledger.rdp`,
    /// creating `dir` first, and replays every persisted charge so the
    /// ledger resumes at the exact epsilon the previous process had
    /// spent. A torn trailing record from a crash mid-append is
    /// truncated away.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::InvalidBudget`] / [`LedgerError::InvalidDelta`]
    ///   for out-of-range parameters (these were panics in earlier
    ///   in-memory ledgers);
    /// * [`LedgerError::Io`] if the journal cannot be created or read;
    /// * [`LedgerError::CorruptJournal`] if a fully-checksummed record
    ///   carries an unknown kind or a non-finite/negative charge.
    pub fn open(
        dir: impl AsRef<Path>,
        budget_epsilon: f64,
        delta: f64,
    ) -> Result<DurableRdpLedger, LedgerError> {
        if !(budget_epsilon.is_finite() && budget_epsilon > 0.0) {
            return Err(LedgerError::InvalidBudget(budget_epsilon));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(LedgerError::InvalidDelta(delta));
        }
        let (journal, records) = AppendJournal::open(dir, LEDGER_FILE)?;
        let mut charges = BTreeMap::new();
        for rec in records {
            if rec.step != CHARGE {
                return Err(LedgerError::CorruptJournal("unknown ledger record kind"));
            }
            let bytes: [u8; 8] = rec
                .payload
                .as_slice()
                .try_into()
                .map_err(|_| LedgerError::CorruptJournal("charge payload is not 8 bytes"))?;
            let coeff = f64::from_bits(u64::from_le_bytes(bytes));
            if !(coeff.is_finite() && coeff >= 0.0) {
                return Err(LedgerError::CorruptJournal("charge coefficient out of range"));
            }
            // First record for a round wins; a duplicate could only come
            // from a journal written outside the charge() path.
            charges.entry(rec.round).or_insert_with(|| LinearRdp::from_coeff(coeff));
        }
        let path = journal.path().to_path_buf();
        Ok(DurableRdpLedger {
            inner: Mutex::new(LedgerInner { journal, charges }),
            path,
            budget_epsilon,
            delta,
        })
    }

    /// Records `cost` against `round`, exactly once: returns `Ok(true)`
    /// and fsyncs one journal record if the round was not yet charged,
    /// `Ok(false)` (no write) if it was. When `charge` returns, the
    /// record survives `kill -9`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::Io`] if the append cannot be persisted;
    /// the in-memory state is then unchanged and the call may be
    /// retried.
    pub fn charge(&self, round: u64, cost: LinearRdp) -> Result<bool, LedgerError> {
        let mut inner = self.inner.lock().expect("ledger lock");
        if inner.charges.contains_key(&round) {
            return Ok(false);
        }
        let payload = cost.coeff().to_bits().to_le_bytes();
        inner.journal.append(round, 0, CHARGE, &payload)?;
        inner.charges.insert(round, cost);
        Ok(true)
    }

    /// Records `cost` against `round` *of `session`*, exactly once.
    ///
    /// The journal key is [`transport::session_scoped_round`]`(session,
    /// round)`, so interleaved sessions that each number their rounds
    /// from zero never collide in a shared ledger. `session` 0 keeps
    /// the bare round id, making single-session ledgers written through
    /// [`DurableRdpLedger::charge`] replayable through this path.
    ///
    /// # Panics
    ///
    /// Panics if `session` or `round` exceeds `u32::MAX` (the packing
    /// precondition of [`transport::session_scoped_round`]).
    ///
    /// # Errors
    ///
    /// As [`DurableRdpLedger::charge`].
    pub fn charge_scoped(
        &self,
        session: u64,
        round: u64,
        cost: LinearRdp,
    ) -> Result<bool, LedgerError> {
        self.charge(transport::session_scoped_round(session, round), cost)
    }

    /// True if `round` already has a persisted charge.
    pub fn charged(&self, round: u64) -> bool {
        self.inner.lock().expect("ledger lock").charges.contains_key(&round)
    }

    /// True if `round` of `session` already has a persisted charge
    /// (the [`DurableRdpLedger::charge_scoped`] key space).
    pub fn charged_scoped(&self, session: u64, round: u64) -> bool {
        self.charged(transport::session_scoped_round(session, round))
    }

    /// Number of rounds charged so far.
    pub fn charges(&self) -> usize {
        self.inner.lock().expect("ledger lock").charges.len()
    }

    /// The charged round ids in ascending order.
    pub fn charged_rounds(&self) -> Vec<u64> {
        self.inner.lock().expect("ledger lock").charges.keys().copied().collect()
    }

    /// The composed RDP curve of every charge (zero if none).
    pub fn total(&self) -> LinearRdp {
        self.inner
            .lock()
            .expect("ledger lock")
            .charges
            .values()
            .fold(LinearRdp::zero(), |acc, c| acc.compose(c))
    }

    /// Epsilon spent so far at the ledger's delta (Theorem 5 conversion).
    pub fn epsilon_spent(&self) -> f64 {
        self.total().to_epsilon(self.delta)
    }

    /// Epsilon still available under the budget (never negative).
    pub fn remaining_epsilon(&self) -> f64 {
        (self.budget_epsilon - self.epsilon_spent()).max(0.0)
    }

    /// Admission control: true if composing `worst_case` on top of the
    /// current total still fits the epsilon budget. A campaign must call
    /// this with the round's *worst-case* spend (smallest realizable
    /// noise) before running the round, so the budget can never be
    /// exceeded even if every optional degradation fires.
    pub fn admits(&self, worst_case: LinearRdp) -> bool {
        self.total().compose(&worst_case).to_epsilon(self.delta) <= self.budget_epsilon
    }

    /// The configured epsilon budget.
    pub fn budget_epsilon(&self) -> f64 {
        self.budget_epsilon
    }

    /// The configured delta.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("ledger-test-{}-{tag}-{n}", std::process::id()));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn typed_errors_for_bad_parameters() {
        let tmp = TempDir::new("params");
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, 0.0, 1e-6).unwrap_err(),
            LedgerError::InvalidBudget(0.0)
        );
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, -1.0, 1e-6).unwrap_err(),
            LedgerError::InvalidBudget(-1.0)
        );
        assert!(matches!(
            DurableRdpLedger::open(&tmp.0, f64::INFINITY, 1e-6).unwrap_err(),
            LedgerError::InvalidBudget(_)
        ));
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, 1.0, 0.0).unwrap_err(),
            LedgerError::InvalidDelta(0.0)
        );
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, 1.0, 1.0).unwrap_err(),
            LedgerError::InvalidDelta(1.0)
        );
    }

    #[test]
    fn charges_are_exactly_once_and_survive_reopen() {
        let tmp = TempDir::new("reopen");
        let spent = {
            let ledger = DurableRdpLedger::open(&tmp.0, 100.0, 1e-6).unwrap();
            assert!(ledger.charge(0, LinearRdp::from_coeff(0.02)).unwrap());
            assert!(ledger.charge(1, LinearRdp::from_coeff(0.03)).unwrap());
            // Exactly-once: the duplicate is refused without a write.
            assert!(!ledger.charge(1, LinearRdp::from_coeff(0.5)).unwrap());
            assert_eq!(ledger.charges(), 2);
            ledger.epsilon_spent()
        };
        let ledger = DurableRdpLedger::open(&tmp.0, 100.0, 1e-6).unwrap();
        assert_eq!(ledger.charges(), 2);
        assert_eq!(ledger.charged_rounds(), vec![0, 1]);
        assert_eq!(ledger.epsilon_spent(), spent, "replay resumes at the exact epsilon");
        assert!(ledger.charged(1) && !ledger.charged(2));
        // The duplicate's coefficient must not have leaked into round 1.
        assert!((ledger.total().coeff() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn interleaved_sessions_never_collide_in_a_shared_ledger() {
        let tmp = TempDir::new("sessions");
        let (spent, key_a, key_b) = {
            let ledger = DurableRdpLedger::open(&tmp.0, 100.0, 1e-6).unwrap();
            // Two concurrent sessions, both charging *their own* round 0
            // and round 1, interleaved. Without session scoping the
            // second session's round 0 would be swallowed as a duplicate.
            assert!(ledger.charge_scoped(7, 0, LinearRdp::from_coeff(0.01)).unwrap());
            assert!(ledger.charge_scoped(9, 0, LinearRdp::from_coeff(0.02)).unwrap());
            assert!(ledger.charge_scoped(7, 1, LinearRdp::from_coeff(0.01)).unwrap());
            assert!(ledger.charge_scoped(9, 1, LinearRdp::from_coeff(0.02)).unwrap());
            assert_eq!(ledger.charges(), 4, "four distinct (session, round) charges");
            // Exactly-once still holds per (session, round).
            assert!(!ledger.charge_scoped(9, 0, LinearRdp::from_coeff(0.5)).unwrap());
            assert!(ledger.charged_scoped(7, 0) && ledger.charged_scoped(9, 1));
            assert!(!ledger.charged_scoped(8, 0));
            assert!((ledger.total().coeff() - 0.06).abs() < 1e-12);
            (
                ledger.epsilon_spent(),
                transport::session_scoped_round(7, 0),
                transport::session_scoped_round(9, 0),
            )
        };
        // Scoped keys survive reopen and replay into the same key space.
        let ledger = DurableRdpLedger::open(&tmp.0, 100.0, 1e-6).unwrap();
        assert_eq!(ledger.charges(), 4);
        assert_eq!(ledger.epsilon_spent(), spent);
        assert!(ledger.charged(key_a) && ledger.charged(key_b));
        assert!(!ledger.charge_scoped(7, 0, LinearRdp::from_coeff(0.9)).unwrap());
        // Session 0 is the identity packing: plain charge() written keys
        // read back through the scoped view.
        assert!(ledger.charge(2, LinearRdp::from_coeff(0.01)).unwrap());
        assert!(ledger.charged_scoped(0, 2));
    }

    #[test]
    fn admission_refuses_over_budget_rounds() {
        let tmp = TempDir::new("admit");
        // Budget sized for roughly two of these charges at δ = 1e-6.
        let per_round = LinearRdp::from_coeff(0.02);
        let budget = per_round.repeat(2).to_epsilon(1e-6) + 1e-9;
        let ledger = DurableRdpLedger::open(&tmp.0, budget, 1e-6).unwrap();
        assert!(ledger.admits(per_round));
        ledger.charge(0, per_round).unwrap();
        assert!(ledger.admits(per_round));
        ledger.charge(1, per_round).unwrap();
        assert!(!ledger.admits(per_round), "third round must be refused");
        assert!(ledger.epsilon_spent() <= budget, "budget never exceeded");
        // Refusal is stateless: nothing was journaled for the refused round.
        assert_eq!(ledger.charges(), 2);
    }

    #[test]
    fn torn_final_record_is_discarded_on_replay() {
        let tmp = TempDir::new("torn");
        {
            let ledger = DurableRdpLedger::open(&tmp.0, 10.0, 1e-6).unwrap();
            ledger.charge(0, LinearRdp::from_coeff(0.01)).unwrap();
            ledger.charge(1, LinearRdp::from_coeff(0.01)).unwrap();
        }
        let path = tmp.0.join(LEDGER_FILE);
        let full = fs::read(&path).unwrap();
        let record_len = full.len() / 2;
        // Crash mid-append: half of a third charge record at the tail.
        let extra =
            transport::journal::encode_record(2, 0, CHARGE, &0.01f64.to_bits().to_le_bytes());
        let mut torn = full.clone();
        torn.extend_from_slice(&extra[..record_len / 2]);
        fs::write(&path, &torn).unwrap();

        let ledger = DurableRdpLedger::open(&tmp.0, 10.0, 1e-6).unwrap();
        assert_eq!(ledger.charged_rounds(), vec![0, 1], "torn charge must vanish");
        // The journal stays appendable on the valid prefix.
        assert!(ledger.charge(2, LinearRdp::from_coeff(0.01)).unwrap());
    }

    #[test]
    fn corrupt_coefficient_is_a_typed_error() {
        let tmp = TempDir::new("nan");
        {
            let (mut journal, _) = AppendJournal::open(&tmp.0, LEDGER_FILE).unwrap();
            journal.append(0, 0, CHARGE, &f64::NAN.to_bits().to_le_bytes()).unwrap();
        }
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, 1.0, 1e-6).unwrap_err(),
            LedgerError::CorruptJournal("charge coefficient out of range")
        );
    }

    #[test]
    fn unknown_record_kind_is_a_typed_error() {
        let tmp = TempDir::new("kind");
        {
            let (mut journal, _) = AppendJournal::open(&tmp.0, LEDGER_FILE).unwrap();
            journal.append(0, 0, 0x7E, b"????????").unwrap();
        }
        assert_eq!(
            DurableRdpLedger::open(&tmp.0, 1.0, 1e-6).unwrap_err(),
            LedgerError::CorruptJournal("unknown ledger record kind")
        );
    }

    proptest! {
        /// Replay after truncation at *any* byte offset yields a prefix
        /// of the original charge sequence, and the epsilon trajectory
        /// over that prefix is monotone and bounded by the full spend.
        #[test]
        fn truncated_replay_is_a_monotone_prefix(
            coeffs in proptest::collection::vec(0.0f64..0.1, 1..12),
            cut_frac in 0.0f64..1.0,
        ) {
            let tmp = TempDir::new("prop");
            let delta = 1e-6;
            {
                let ledger = DurableRdpLedger::open(&tmp.0, 1e9, delta).unwrap();
                for (round, &c) in coeffs.iter().enumerate() {
                    ledger.charge(round as u64, LinearRdp::from_coeff(c)).unwrap();
                }
            }
            let path = tmp.0.join(LEDGER_FILE);
            let full = fs::read(&path).unwrap();
            let cut = (full.len() as f64 * cut_frac) as usize;
            fs::write(&path, &full[..cut]).unwrap();

            let ledger = DurableRdpLedger::open(&tmp.0, 1e9, delta).unwrap();
            let recovered = ledger.charged_rounds();
            // A prefix: rounds 0..k with no gaps and no reordering.
            prop_assert_eq!(
                recovered.clone(),
                (0..recovered.len() as u64).collect::<Vec<_>>()
            );
            // Monotone epsilon: each surviving charge only adds spend.
            let mut acc = LinearRdp::zero();
            let mut last_eps = 0.0;
            for round in &recovered {
                acc = acc.compose(&LinearRdp::from_coeff(coeffs[*round as usize]));
                let eps = acc.to_epsilon(delta);
                prop_assert!(eps >= last_eps);
                last_eps = eps;
            }
            prop_assert_eq!(ledger.epsilon_spent(), last_eps);
            let full_spend = coeffs
                .iter()
                .fold(LinearRdp::zero(), |a, &c| a.compose(&LinearRdp::from_coeff(c)))
                .to_epsilon(delta);
            prop_assert!(ledger.epsilon_spent() <= full_spend + 1e-12);
        }
    }
}
