//! Rényi differential privacy accounting.
//!
//! All three mechanisms the protocol composes have RDP curves *linear in
//! α*:
//!
//! * Gaussian mechanism with sensitivity Δ: `ε(α) = α·Δ²/(2σ²)`
//!   (Theorem 1, Mironov Cor. 3);
//! * Sparse Vector Technique threshold test: `ε(α) = 9α/(2σ₁²)`
//!   (paper Lemma 1);
//! * Report Noisy Max: `ε(α) = α/σ₂²` (paper Lemma 2).
//!
//! Linear curves compose by adding coefficients (Theorem 2), and convert
//! to `(ε, δ)`-DP by minimizing `c·α + log(1/δ)/(α−1)` over `α > 1`, whose
//! optimum is `α* = 1 + sqrt(log(1/δ)/c)` giving
//! `ε = c + 2·sqrt(c·log(1/δ))` — exactly the closed form of Theorem 5.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An RDP guarantee of the form `(α, c·α)-RDP for all α > 1`.
///
/// # Examples
///
/// ```
/// use dp::LinearRdp;
///
/// let svt = LinearRdp::sparse_vector(40.0);
/// let rnm = LinearRdp::report_noisy_max(40.0);
/// let total = svt.compose(&rnm);
/// let eps = total.to_epsilon(1e-6);
/// assert!(eps > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRdp {
    /// The slope `c` in `ε(α) = c·α`.
    coeff: f64,
}

impl LinearRdp {
    /// A mechanism with RDP curve `ε(α) = coeff · α`.
    ///
    /// # Panics
    ///
    /// Panics if `coeff` is negative or non-finite.
    pub fn from_coeff(coeff: f64) -> Self {
        assert!(coeff.is_finite() && coeff >= 0.0, "RDP coefficient must be >= 0");
        LinearRdp { coeff }
    }

    /// The identity (a mechanism revealing nothing).
    pub fn zero() -> Self {
        LinearRdp { coeff: 0.0 }
    }

    /// Gaussian mechanism with sensitivity `delta` and noise `sigma`
    /// (Theorem 1): `ε(α) = α·Δ²/(2σ²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn gaussian(sigma: f64, delta_sensitivity: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LinearRdp::from_coeff(delta_sensitivity * delta_sensitivity / (2.0 * sigma * sigma))
    }

    /// The protocol's Sparse Vector Technique threshold test with noise
    /// `σ₁` (Lemma 1): `ε(α) = 9α/(2σ₁²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma1 <= 0`.
    pub fn sparse_vector(sigma1: f64) -> Self {
        assert!(sigma1 > 0.0, "sigma1 must be positive");
        LinearRdp::from_coeff(9.0 / (2.0 * sigma1 * sigma1))
    }

    /// Report Noisy Max with noise `σ₂` (Lemma 2): `ε(α) = α/σ₂²`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma2 <= 0`.
    pub fn report_noisy_max(sigma2: f64) -> Self {
        assert!(sigma2 > 0.0, "sigma2 must be positive");
        LinearRdp::from_coeff(1.0 / (sigma2 * sigma2))
    }

    /// The slope `c`.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The RDP ε at a given order α.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1`.
    pub fn epsilon_at(&self, alpha: f64) -> f64 {
        assert!(alpha > 1.0, "RDP order must exceed 1");
        self.coeff * alpha
    }

    /// Sequential composition (Theorem 2): coefficients add.
    #[must_use]
    pub fn compose(&self, other: &LinearRdp) -> LinearRdp {
        LinearRdp { coeff: self.coeff + other.coeff }
    }

    /// Composition of `k` invocations of this mechanism.
    #[must_use]
    pub fn repeat(&self, k: u64) -> LinearRdp {
        LinearRdp { coeff: self.coeff * k as f64 }
    }

    /// The optimal RDP order for conversion at failure probability `delta`:
    /// `α* = 1 + sqrt(log(1/δ)/c)`.
    ///
    /// Returns `f64::INFINITY` for the zero mechanism.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn optimal_alpha(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        if self.coeff == 0.0 {
            return f64::INFINITY;
        }
        1.0 + ((1.0 / delta).ln() / self.coeff).sqrt()
    }

    /// Converts to `(ε, δ)`-DP: `ε = c + 2·sqrt(c·log(1/δ))`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn to_epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        self.coeff + 2.0 * (self.coeff * (1.0 / delta).ln()).sqrt()
    }

    /// Numeric sanity check of [`LinearRdp::to_epsilon`]: evaluates
    /// `c·α + log(1/δ)/(α−1)` on a grid and returns the minimum. Exposed
    /// for tests and documentation; the closed form is exact.
    pub fn to_epsilon_grid(&self, delta: f64, grid: &[f64]) -> f64 {
        let log_inv_delta = (1.0 / delta).ln();
        grid.iter()
            .filter(|&&a| a > 1.0)
            .map(|&a| self.coeff * a + log_inv_delta / (a - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Display for LinearRdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(α, {:.6}·α)-RDP", self.coeff)
    }
}

/// Theorem 5 closed form: the `(ε, δ)` guarantee of one run of Alg. 5 with
/// threshold noise `σ₁` and argmax noise `σ₂`:
///
/// `ε = sqrt(2·(9/σ₁² + 2/σ₂²)·log(1/δ)) + (9/(2σ₁²) + 1/σ₂²)`.
///
/// # Examples
///
/// ```
/// use dp::rdp::consensus_epsilon;
/// let eps = consensus_epsilon(40.0, 40.0, 1e-6);
/// assert!(eps < 0.5);
/// ```
///
/// # Panics
///
/// Panics if either sigma is non-positive or `delta` is outside `(0, 1)`.
pub fn consensus_epsilon(sigma1: f64, sigma2: f64, delta: f64) -> f64 {
    assert!(sigma1 > 0.0 && sigma2 > 0.0, "noise scales must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let c = 9.0 / (2.0 * sigma1 * sigma1) + 1.0 / (sigma2 * sigma2);
    (2.0 * (9.0 / (sigma1 * sigma1) + 2.0 / (sigma2 * sigma2)) * (1.0 / delta).ln()).sqrt() + c
}

/// Solves for the common noise scale `σ = σ₁ = σ₂` that makes `k`
/// consensus queries satisfy `(target_epsilon, delta)`-DP, by bisection.
///
/// This is how the experiment harness turns a requested "privacy level"
/// (e.g. ε = 8.19 at δ = 10⁻⁶, as in Fig. 5) into concrete noise scales.
///
/// # Panics
///
/// Panics if `target_epsilon <= 0`, `k == 0`, or `delta` outside `(0,1)`.
pub fn sigma_for_epsilon(target_epsilon: f64, delta: f64, k: u64) -> f64 {
    assert!(target_epsilon > 0.0, "epsilon must be positive");
    assert!(k > 0, "at least one query");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let eps_of = |sigma: f64| {
        LinearRdp::sparse_vector(sigma)
            .compose(&LinearRdp::report_noisy_max(sigma))
            .repeat(k)
            .to_epsilon(delta)
    };
    let (mut lo, mut hi) = (1e-3, 1e7);
    // eps_of is strictly decreasing in sigma.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if eps_of(mid) > target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// A running ledger of privacy spent across released labels.
///
/// Each *answered* query (threshold passed, label released) spends one
/// SVT + one Report Noisy Max. Queries aborted at the threshold spend one
/// SVT only — the paper's analysis conservatively charges both per query;
/// the ledger exposes both conventions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivacyLedger {
    sigma1: f64,
    sigma2: f64,
    delta: f64,
    answered: u64,
    aborted: u64,
    /// When true (default, matching the paper), aborted queries are
    /// charged the full SVT+RNM cost too.
    conservative: bool,
}

impl PrivacyLedger {
    /// Creates a ledger for noise scales `(σ₁, σ₂)` at failure
    /// probability `delta`, using the paper's conservative convention.
    ///
    /// # Panics
    ///
    /// Panics on non-positive sigmas or `delta` outside `(0, 1)`.
    pub fn new(sigma1: f64, sigma2: f64, delta: f64) -> Self {
        assert!(sigma1 > 0.0 && sigma2 > 0.0, "noise scales must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        PrivacyLedger { sigma1, sigma2, delta, answered: 0, aborted: 0, conservative: true }
    }

    /// Switches to charging aborted queries only the SVT cost.
    #[must_use]
    pub fn with_lenient_aborts(mut self) -> Self {
        self.conservative = false;
        self
    }

    /// Records a query whose threshold test passed and label was released.
    pub fn record_answered(&mut self) {
        self.answered += 1;
    }

    /// Records a query aborted at the threshold test.
    pub fn record_aborted(&mut self) {
        self.aborted += 1;
    }

    /// Number of answered queries so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Number of aborted queries so far.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// The composed RDP curve of everything recorded so far.
    pub fn rdp(&self) -> LinearRdp {
        let svt = LinearRdp::sparse_vector(self.sigma1);
        let rnm = LinearRdp::report_noisy_max(self.sigma2);
        let full = svt.compose(&rnm);
        if self.conservative {
            full.repeat(self.answered + self.aborted)
        } else {
            full.repeat(self.answered).compose(&svt.repeat(self.aborted))
        }
    }

    /// The `(ε, δ)` guarantee of everything recorded so far.
    pub fn epsilon(&self) -> f64 {
        self.rdp().to_epsilon(self.delta)
    }

    /// Whether answering one more query would stay within
    /// `budget_epsilon`.
    pub fn can_afford(&self, budget_epsilon: f64) -> bool {
        let mut next = self.clone();
        next.record_answered();
        next.epsilon() <= budget_epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_theorem5() {
        for (s1, s2, delta) in [(40.0, 40.0, 1e-6), (10.0, 20.0, 1e-5), (100.0, 50.0, 1e-8)] {
            let composed = LinearRdp::sparse_vector(s1).compose(&LinearRdp::report_noisy_max(s2));
            let from_curve = composed.to_epsilon(delta);
            let from_theorem = consensus_epsilon(s1, s2, delta);
            assert!(
                (from_curve - from_theorem).abs() < 1e-10,
                "σ1={s1} σ2={s2}: {from_curve} vs {from_theorem}"
            );
        }
    }

    #[test]
    fn closed_form_matches_grid_minimum() {
        let curve = LinearRdp::sparse_vector(30.0).compose(&LinearRdp::report_noisy_max(25.0));
        let grid: Vec<f64> = (2..200_000).map(|i| 1.0 + i as f64 * 0.01).collect();
        let grid_min = curve.to_epsilon_grid(1e-6, &grid);
        let closed = curve.to_epsilon(1e-6);
        assert!((grid_min - closed).abs() / closed < 1e-4, "{grid_min} vs {closed}");
        assert!(grid_min >= closed - 1e-12, "closed form must be the true minimum");
    }

    #[test]
    fn optimal_alpha_matches_paper() {
        // Theorem 5: α* = 1 + sqrt(2 log(1/δ) / (9/σ1² + 2/σ2²)).
        let (s1, s2, delta) = (40.0, 30.0, 1e-6);
        let curve = LinearRdp::sparse_vector(s1).compose(&LinearRdp::report_noisy_max(s2));
        let alpha = curve.optimal_alpha(delta);
        let paper_alpha =
            1.0 + (2.0 * (1.0f64 / delta).ln() / (9.0 / (s1 * s1) + 2.0 / (s2 * s2))).sqrt();
        assert!((alpha - paper_alpha).abs() < 1e-9, "{alpha} vs {paper_alpha}");
    }

    #[test]
    fn gaussian_theorem1_coefficient() {
        let g = LinearRdp::gaussian(5.0, 2.0);
        // Δ²/(2σ²) = 4/50
        assert!((g.coeff() - 0.08).abs() < 1e-12);
        assert!((g.epsilon_at(10.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn svt_is_gaussian_with_sensitivity_3() {
        // Lemma 1's 9/(2σ²) equals the Gaussian curve at Δ = 3.
        let svt = LinearRdp::sparse_vector(17.0);
        let g3 = LinearRdp::gaussian(17.0, 3.0);
        assert!((svt.coeff() - g3.coeff()).abs() < 1e-15);
    }

    #[test]
    fn composition_adds_and_repeat_scales() {
        let a = LinearRdp::from_coeff(0.25);
        let b = LinearRdp::from_coeff(0.5);
        assert_eq!(a.compose(&b).coeff(), 0.75);
        assert_eq!(a.repeat(4).coeff(), 1.0);
        assert_eq!(a.compose(&LinearRdp::zero()).coeff(), 0.25);
    }

    #[test]
    fn epsilon_decreases_with_sigma() {
        let deltas = 1e-6;
        let mut last = f64::INFINITY;
        for sigma in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let eps = consensus_epsilon(sigma, sigma, deltas);
            assert!(eps < last, "ε must fall as σ grows");
            last = eps;
        }
    }

    #[test]
    fn sigma_for_epsilon_inverts() {
        for target in [0.5, 2.0, 8.19] {
            let sigma = sigma_for_epsilon(target, 1e-6, 100);
            let achieved = LinearRdp::sparse_vector(sigma)
                .compose(&LinearRdp::report_noisy_max(sigma))
                .repeat(100)
                .to_epsilon(1e-6);
            assert!((achieved - target).abs() < 1e-3, "target {target}: achieved {achieved}");
        }
    }

    #[test]
    fn ledger_tracks_spending() {
        let mut ledger = PrivacyLedger::new(40.0, 40.0, 1e-6);
        assert_eq!(ledger.epsilon(), 0.0);
        ledger.record_answered();
        let one = ledger.epsilon();
        assert!(one > 0.0);
        ledger.record_answered();
        assert!(ledger.epsilon() > one);
        assert_eq!(ledger.answered(), 2);
    }

    #[test]
    fn lenient_aborts_cost_less() {
        let mut conservative = PrivacyLedger::new(40.0, 40.0, 1e-6);
        let mut lenient = PrivacyLedger::new(40.0, 40.0, 1e-6).with_lenient_aborts();
        for _ in 0..10 {
            conservative.record_aborted();
            lenient.record_aborted();
        }
        assert!(lenient.epsilon() < conservative.epsilon());
    }

    #[test]
    fn budget_gate() {
        let mut ledger = PrivacyLedger::new(40.0, 40.0, 1e-6);
        let budget = 1.0;
        let mut answered = 0;
        while ledger.can_afford(budget) {
            ledger.record_answered();
            answered += 1;
            assert!(answered < 100_000, "budget gate must engage");
        }
        assert!(ledger.epsilon() <= budget);
        assert!(answered > 0);
    }

    #[test]
    fn display_formats() {
        let s = LinearRdp::from_coeff(0.125).to_string();
        assert!(s.contains("0.125"), "{s}");
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn bad_delta_panics() {
        let _ = consensus_epsilon(1.0, 1.0, 1.5);
    }
}
