//! General (non-linear) RDP curves on an α grid.
//!
//! The consensus protocol's own mechanisms are linear in α
//! ([`crate::rdp::LinearRdp`]), but the related-work mechanisms the paper
//! contrasts against — the Laplace mechanism and randomized response
//! (§III-C) — have curved RDP profiles. [`GridRdp`] evaluates any curve
//! on a shared α grid so heterogeneous mechanisms compose, and converts
//! to `(ε, δ)`-DP by grid minimization.

use serde::{Deserialize, Serialize};

use crate::rdp::LinearRdp;

/// Numerically stable `log(e^a + e^b)`.
fn log_sum_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// Default α grid: dense near 1 (where high-noise conversions optimize)
/// and stretching to 10⁴ (where low-noise ones do).
pub fn default_alpha_grid() -> Vec<f64> {
    let mut grid = Vec::with_capacity(2048);
    let mut alpha = 1.01;
    while alpha < 10_000.0 {
        grid.push(alpha);
        alpha *= 1.01;
    }
    grid
}

/// An RDP curve tabulated on an α grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRdp {
    alphas: Vec<f64>,
    epsilons: Vec<f64>,
}

impl GridRdp {
    /// Tabulates `curve(α)` on `alphas`.
    ///
    /// # Panics
    ///
    /// Panics if `alphas` is empty, not strictly increasing, or contains
    /// values `<= 1`.
    pub fn from_fn(alphas: Vec<f64>, curve: impl Fn(f64) -> f64) -> Self {
        assert!(!alphas.is_empty(), "alpha grid must be non-empty");
        assert!(alphas.windows(2).all(|w| w[0] < w[1]), "grid must increase");
        assert!(alphas[0] > 1.0, "RDP orders must exceed 1");
        let epsilons = alphas.iter().map(|&a| curve(a)).collect();
        GridRdp { alphas, epsilons }
    }

    /// Lifts a linear curve onto the default grid.
    pub fn from_linear(linear: &LinearRdp) -> Self {
        let coeff = linear.coeff();
        GridRdp::from_fn(default_alpha_grid(), |a| coeff * a)
    }

    /// The Laplace mechanism with scale `b` and sensitivity 1
    /// (Mironov 2017, Prop. 6):
    /// `ε(α) = (1/(α−1))·log( (α/(2α−1))·e^((α−1)/b) + ((α−1)/(2α−1))·e^(−α/b) )`.
    ///
    /// # Panics
    ///
    /// Panics if `b <= 0`.
    pub fn laplace(b: f64) -> Self {
        assert!(b > 0.0, "Laplace scale must be positive");
        GridRdp::from_fn(default_alpha_grid(), |a| {
            // Log-domain to survive large α: e^((α−1)/b) overflows early.
            let l1 = (a / (2.0 * a - 1.0)).ln() + (a - 1.0) / b;
            let l2 = ((a - 1.0) / (2.0 * a - 1.0)).ln() - a / b;
            log_sum_exp(l1, l2) / (a - 1.0)
        })
    }

    /// Randomized response that answers truthfully with probability `p`
    /// (binary alphabet; Mironov 2017, §VI):
    /// `ε(α) = (1/(α−1))·log( p^α·(1−p)^(1−α) + (1−p)^α·p^(1−α) )`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < p < 1`.
    pub fn randomized_response(p: f64) -> Self {
        assert!(p > 0.5 && p < 1.0, "truth probability must be in (0.5, 1)");
        GridRdp::from_fn(default_alpha_grid(), |a| {
            let q = 1.0 - p;
            let l1 = a * p.ln() + (1.0 - a) * q.ln();
            let l2 = a * q.ln() + (1.0 - a) * p.ln();
            log_sum_exp(l1, l2) / (a - 1.0)
        })
    }

    /// The grid.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// ε at grid position `i`.
    pub fn epsilon_at_index(&self, i: usize) -> f64 {
        self.epsilons[i]
    }

    /// Sequential composition (Theorem 2, pointwise on the grid).
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    #[must_use]
    pub fn compose(&self, other: &GridRdp) -> GridRdp {
        assert_eq!(self.alphas, other.alphas, "curves must share a grid");
        GridRdp {
            alphas: self.alphas.clone(),
            epsilons: self.epsilons.iter().zip(&other.epsilons).map(|(a, b)| a + b).collect(),
        }
    }

    /// Composition of `k` invocations.
    #[must_use]
    pub fn repeat(&self, k: u64) -> GridRdp {
        GridRdp {
            alphas: self.alphas.clone(),
            epsilons: self.epsilons.iter().map(|e| e * k as f64).collect(),
        }
    }

    /// Converts to `(ε, δ)`-DP by minimizing `ε(α) + log(1/δ)/(α−1)` over
    /// the grid.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta < 1`.
    pub fn to_epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let log_inv = (1.0 / delta).ln();
        self.alphas
            .iter()
            .zip(&self.epsilons)
            .map(|(&a, &e)| e + log_inv / (a - 1.0))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_linear_matches_closed_form() {
        let linear = LinearRdp::sparse_vector(25.0).compose(&LinearRdp::report_noisy_max(25.0));
        let grid = GridRdp::from_linear(&linear);
        let closed = linear.to_epsilon(1e-6);
        let gridded = grid.to_epsilon(1e-6);
        assert!((closed - gridded).abs() / closed < 1e-3, "{closed} vs {gridded}");
        assert!(gridded >= closed - 1e-12, "grid minimum cannot beat the true optimum");
    }

    #[test]
    fn laplace_limits() {
        // As α→1+, the Laplace RDP tends to the KL divergence; at any α it
        // is below the pure-DP bound 1/b.
        let b = 2.0;
        let curve = GridRdp::laplace(b);
        for (i, &alpha) in curve.alphas().iter().enumerate() {
            let eps = curve.epsilon_at_index(i);
            assert!(eps <= 1.0 / b + 1e-9, "ε(α={alpha}) = {eps} exceeds 1/b");
            assert!(eps >= 0.0, "RDP cannot be negative");
        }
    }

    #[test]
    fn laplace_epsilon_decreases_with_scale() {
        let small = GridRdp::laplace(0.5).to_epsilon(1e-6);
        let large = GridRdp::laplace(5.0).to_epsilon(1e-6);
        assert!(large < small);
    }

    #[test]
    fn randomized_response_bounds() {
        // Pure DP of RR is ln(p/(1−p)); the RDP curve must stay below it.
        let p = 0.75f64;
        let pure = (p / (1.0 - p)).ln();
        let curve = GridRdp::randomized_response(p);
        for i in 0..curve.alphas().len() {
            assert!(curve.epsilon_at_index(i) <= pure + 1e-9);
        }
        // The (ε, δ) conversion approaches pure ε as α → ∞; with the grid
        // capped at 10⁴ it lands within the residual log(1/δ)/(α−1).
        assert!(curve.to_epsilon(1e-9) <= pure + 0.01);
    }

    #[test]
    fn heterogeneous_composition() {
        // Gaussian SVT + a Laplace release compose on the grid.
        let svt = GridRdp::from_linear(&LinearRdp::sparse_vector(20.0));
        let lap = GridRdp::laplace(10.0);
        let both = svt.compose(&lap);
        let d = 1e-6;
        assert!(both.to_epsilon(d) >= svt.to_epsilon(d));
        assert!(both.to_epsilon(d) >= lap.to_epsilon(d));
        assert!(both.to_epsilon(d) <= svt.to_epsilon(d) + lap.to_epsilon(d));
    }

    #[test]
    fn repeat_scales_epsilon_sublinearly() {
        let curve = GridRdp::laplace(4.0);
        let one = curve.to_epsilon(1e-6);
        let hundred = curve.repeat(100).to_epsilon(1e-6);
        assert!(hundred > one);
        assert!(hundred < 100.0 * one, "RDP composition beats naive linear");
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grids_rejected() {
        let a = GridRdp::from_fn(vec![2.0, 3.0], |x| x);
        let b = GridRdp::from_fn(vec![2.0, 4.0], |x| x);
        let _ = a.compose(&b);
    }
}
