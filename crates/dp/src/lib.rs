//! Differential-privacy toolkit for the private consensus protocol.
//!
//! Four concerns live here:
//!
//! * [`gaussian`] — Gaussian sampling (Box–Muller; the offline crate set
//!   has no `rand_distr`) and the *distributed* noise generation of §IV-D:
//!   each user contributes `N(0, σ²/(2|U|))` shares to each server so the
//!   aggregate noise is `N(0, σ²)` and no party ever sees it whole.
//! * [`rdp`] — Rényi-DP accounting: the Gaussian mechanism (Theorem 1),
//!   composition (Theorem 2), the protocol's Sparse Vector Technique
//!   curve `(α, 9α/2σ₁²)` (Lemma 1) and Report Noisy Max curve
//!   `(α, α/σ₂²)` (Lemma 2), and the conversion to `(ε, δ)`-DP with the
//!   closed-form optimum of Theorem 5.
//! * [`mechanisms`] — plaintext reference implementations of the noisy
//!   threshold test and noisy argmax used by Alg. 4/5, shared by the
//!   clear-path consensus engine and the secure path's noise generation.
//! * [`ledger`] — the crash-safe [`DurableRdpLedger`]: an append-only,
//!   fsynced journal of exactly-once per-round RDP charges that lets a
//!   restarted campaign daemon resume at the exact epsilon spent and
//!   refuse rounds whose worst-case spend would exceed the budget.
//!
//! # Examples
//!
//! ```
//! use dp::rdp::consensus_epsilon;
//!
//! // Theorem 5: the privacy of one consensus query at σ1 = σ2 = 20.
//! let eps = consensus_epsilon(20.0, 20.0, 1e-6);
//! assert!(eps > 0.0 && eps < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod gaussian;
pub mod ledger;
pub mod mechanisms;
pub mod rdp;

pub use curves::GridRdp;
pub use gaussian::{DistributedNoise, Gaussian};
pub use ledger::{DurableRdpLedger, LedgerError};
pub use rdp::{consensus_epsilon, LinearRdp, PrivacyLedger};
