//! Gaussian sampling and distributed noise generation.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Gaussian distribution `N(mean, std²)` sampled by the Box–Muller
/// transform (polar form).
///
/// # Examples
///
/// ```
/// use dp::Gaussian;
/// let g = Gaussian::new(0.0, 1.0);
/// let x = g.sample(&mut rand::thread_rng());
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates `N(mean, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and non-negative");
        assert!(mean.is_finite(), "mean must be finite");
        Gaussian { mean, std }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian { mean: 0.0, std: 1.0 }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// One standard-normal draw by the polar (Marsaglia) Box–Muller method.
///
/// The second value of each pair is discarded for statelessness; the
/// protocol's samples are too few for that to matter.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Distributed Gaussian noise generation (§IV-D).
///
/// For target aggregate noise `N(0, σ²)` across `|U|` users, each user
/// draws *two independent* shares `N(0, σ²/(2|U|))` — one embedded in the
/// share sent to S1, one in the share sent to S2. Summing `2|U|`
/// independent shares yields exactly `N(0, σ²)`, and no single party (nor
/// either server) ever observes the total noise.
///
/// The paper writes the same symbol `z^u` into both servers' shares; with
/// a *common* value the two contributions would add coherently and double
/// the variance (`N(0, 2σ²)`). We use independent shares so the released
/// statistic matches Alg. 4 exactly — see DESIGN.md.
///
/// # Examples
///
/// ```
/// use dp::DistributedNoise;
/// let dist = DistributedNoise::new(40.0, 100);
/// let (z_a, z_b) = dist.user_share_pair(&mut rand::thread_rng());
/// assert!(z_a.is_finite() && z_b.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedNoise {
    sigma: f64,
    num_users: usize,
    share: Gaussian,
}

impl DistributedNoise {
    /// Configures distributed generation of `N(0, sigma²)` across
    /// `num_users` users.
    ///
    /// # Panics
    ///
    /// Panics if `num_users == 0` or `sigma` is negative/non-finite.
    pub fn new(sigma: f64, num_users: usize) -> Self {
        assert!(num_users > 0, "at least one user required");
        let share_std = sigma / ((2 * num_users) as f64).sqrt();
        DistributedNoise { sigma, num_users, share: Gaussian::new(0.0, share_std) }
    }

    /// The aggregate standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The per-share standard deviation `σ/√(2|U|)`.
    pub fn share_std(&self) -> f64 {
        self.share.std()
    }

    /// One user's pair of independent shares `(z_a, z_b)`, destined for
    /// S1 and S2 respectively.
    pub fn user_share_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        (self.share.sample(rng), self.share.sample(rng))
    }

    /// Reference aggregation: sums all users' share pairs, for tests and
    /// the clear execution path.
    pub fn aggregate<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (0..self.num_users)
            .map(|_| {
                let (a, b) = self.user_share_pair(rng);
                a + b
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scaled_gaussian_moments() {
        let mut r = rng();
        let g = Gaussian::new(5.0, 3.0);
        let samples = g.sample_vec(50_000, &mut r);
        let (mean, var) = mean_and_var(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn zero_std_is_constant() {
        let mut r = rng();
        let g = Gaussian::new(2.5, 0.0);
        for _ in 0..10 {
            assert_eq!(g.sample(&mut r), 2.5);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_panics() {
        let _ = Gaussian::new(0.0, -1.0);
    }

    #[test]
    fn distributed_share_std_formula() {
        let d = DistributedNoise::new(40.0, 100);
        // σ/sqrt(2*100)
        assert!((d.share_std() - 40.0 / 200f64.sqrt()).abs() < 1e-12);
        assert_eq!(d.sigma(), 40.0);
    }

    #[test]
    fn aggregate_variance_matches_target() {
        let mut r = rng();
        let d = DistributedNoise::new(10.0, 25);
        let samples: Vec<f64> = (0..20_000).map(|_| d.aggregate(&mut r)).collect();
        let (mean, var) = mean_and_var(&samples);
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var - 100.0).abs() < 5.0, "aggregate var {var} should be σ²=100");
    }

    #[test]
    fn single_user_degenerate_case() {
        let mut r = rng();
        let d = DistributedNoise::new(8.0, 1);
        let samples: Vec<f64> = (0..20_000).map(|_| d.aggregate(&mut r)).collect();
        let (_, var) = mean_and_var(&samples);
        assert!((var - 64.0).abs() < 3.0, "var {var} should be 64");
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_panics() {
        let _ = DistributedNoise::new(1.0, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Gaussian::standard().sample(&mut StdRng::seed_from_u64(7));
        let b = Gaussian::standard().sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
