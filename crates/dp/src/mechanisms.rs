//! Plaintext reference implementations of the protocol's two noisy
//! mechanisms.
//!
//! These are the statistical semantics of Alg. 4 (and of Alg. 5's output,
//! per Theorem 3 correctness): the secure path computes exactly these
//! functions, only in blind. The clear-path consensus engine calls them
//! directly; the secure path consumes the same noise draws through
//! distributed shares.

use rand::Rng;

use crate::gaussian::Gaussian;

/// Outcome of the noisy threshold test (the Sparse Vector Technique step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdOutcome {
    /// The noisy maximum exceeded the threshold; the query proceeds.
    Passed,
    /// Below threshold; the query is discarded (`⊥` in the paper).
    Rejected,
}

/// Alg. 4 line 1: tests `max_votes + N(0, σ₁²) ≥ threshold`.
///
/// # Examples
///
/// ```
/// use dp::mechanisms::{noisy_threshold_test, ThresholdOutcome};
/// let out = noisy_threshold_test(90.0, 60.0, 1e-9, &mut rand::thread_rng());
/// assert_eq!(out, ThresholdOutcome::Passed);
/// ```
pub fn noisy_threshold_test<R: Rng + ?Sized>(
    max_votes: f64,
    threshold: f64,
    sigma1: f64,
    rng: &mut R,
) -> ThresholdOutcome {
    let noise = Gaussian::new(0.0, sigma1).sample(rng);
    if max_votes + noise >= threshold {
        ThresholdOutcome::Passed
    } else {
        ThresholdOutcome::Rejected
    }
}

/// Alg. 4 line 2 (Report Noisy Max): `argmax_i (votes[i] + N(0, σ₂²))`.
///
/// Returns the winning index. Ties after noise are broken toward the lower
/// index (measure-zero event for σ₂ > 0).
///
/// # Panics
///
/// Panics if `votes` is empty.
pub fn noisy_argmax<R: Rng + ?Sized>(votes: &[f64], sigma2: f64, rng: &mut R) -> usize {
    assert!(!votes.is_empty(), "votes must be non-empty");
    let g = Gaussian::new(0.0, sigma2);
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &v) in votes.iter().enumerate() {
        let noisy = v + g.sample(rng);
        if noisy > best_val {
            best = i;
            best_val = noisy;
        }
    }
    best
}

/// Returns the noisy vote vector itself (used by the secure path, which
/// must aggregate the noise *inside* the shares rather than draw it at
/// argmax time).
pub fn noisy_votes<R: Rng + ?Sized>(votes: &[f64], sigma: f64, rng: &mut R) -> Vec<f64> {
    let g = Gaussian::new(0.0, sigma);
    votes.iter().map(|&v| v + g.sample(rng)).collect()
}

/// Plain (non-private) argmax with lowest-index tie-breaking — Alg. 1's
/// `i*`.
///
/// # Panics
///
/// Panics if `votes` is empty.
pub fn plain_argmax(votes: &[f64]) -> usize {
    assert!(!votes.is_empty(), "votes must be non-empty");
    let mut best = 0usize;
    for (i, &v) in votes.iter().enumerate() {
        if v > votes[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn threshold_with_tiny_noise_is_exact() {
        let mut r = rng();
        assert_eq!(noisy_threshold_test(61.0, 60.0, 1e-12, &mut r), ThresholdOutcome::Passed);
        assert_eq!(noisy_threshold_test(59.0, 60.0, 1e-12, &mut r), ThresholdOutcome::Rejected);
    }

    #[test]
    fn threshold_pass_rate_about_half_at_boundary() {
        let mut r = rng();
        let passes = (0..10_000)
            .filter(|_| noisy_threshold_test(60.0, 60.0, 5.0, &mut r) == ThresholdOutcome::Passed)
            .count();
        // At the boundary, noise ≥ 0 with probability 1/2.
        assert!((passes as f64 / 10_000.0 - 0.5).abs() < 0.03, "rate {passes}");
    }

    #[test]
    fn noisy_argmax_with_tiny_noise_matches_plain() {
        let mut r = rng();
        let votes = [3.0, 9.0, 1.0, 9.5, 2.0];
        for _ in 0..20 {
            assert_eq!(noisy_argmax(&votes, 1e-12, &mut r), 3);
        }
        assert_eq!(plain_argmax(&votes), 3);
    }

    #[test]
    fn noisy_argmax_flips_with_large_noise() {
        let mut r = rng();
        let votes = [10.0, 9.9];
        let winner0 = (0..5_000).filter(|_| noisy_argmax(&votes, 20.0, &mut r) == 0).count();
        // With noise ≫ gap the winner is nearly a coin flip.
        assert!((winner0 as f64 / 5_000.0 - 0.5).abs() < 0.05, "winner0 rate {winner0}/5000");
    }

    #[test]
    fn noisy_argmax_respects_clear_margins() {
        let mut r = rng();
        let votes = [100.0, 0.0, 0.0];
        for _ in 0..100 {
            assert_eq!(noisy_argmax(&votes, 1.0, &mut r), 0);
        }
    }

    #[test]
    fn plain_argmax_ties_break_low() {
        assert_eq!(plain_argmax(&[5.0, 5.0, 1.0]), 0);
        assert_eq!(plain_argmax(&[1.0]), 0);
    }

    #[test]
    fn noisy_votes_have_expected_spread() {
        let mut r = rng();
        let base = vec![50.0; 2_000];
        let noisy = noisy_votes(&base, 4.0, &mut r);
        let mean = noisy.iter().sum::<f64>() / noisy.len() as f64;
        let var =
            noisy.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (noisy.len() - 1) as f64;
        assert!((mean - 50.0).abs() < 0.4, "mean {mean}");
        assert!((var - 16.0).abs() < 2.0, "var {var}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_votes_panic() {
        let _ = plain_argmax(&[]);
    }
}
