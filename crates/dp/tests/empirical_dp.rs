//! Empirical differential-privacy validation.
//!
//! The RDP accountant is analytic; these tests check that the *sampled*
//! mechanisms actually deliver the indistinguishability the analysis
//! assumes, by estimating output probabilities on adjacent vote vectors
//! and comparing likelihood ratios against the (loose) pure-DP style
//! bound `e^ε` at the accountant's own ε. Seeds are fixed, so the tests
//! are deterministic; the margins are generous enough that the check is
//! a real guardrail (a mechanism that forgot its noise fails immediately)
//! without being statistically brittle.

use dp::mechanisms::{noisy_argmax, noisy_threshold_test, ThresholdOutcome};
use dp::rdp::LinearRdp;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 60_000;

/// Empirical distribution of noisy_argmax outputs.
fn argmax_histogram(votes: &[f64], sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; votes.len()];
    for _ in 0..TRIALS {
        counts[noisy_argmax(votes, sigma, &mut rng)] += 1;
    }
    counts.iter().map(|&c| c as f64 / TRIALS as f64).collect()
}

#[test]
fn report_noisy_max_is_empirically_private() {
    // Adjacent vote vectors: one teacher flips its vote from class 0 to 1.
    let sigma = 4.0;
    let db1 = [10.0, 8.0, 3.0];
    let db2 = [9.0, 9.0, 3.0];
    let h1 = argmax_histogram(&db1, sigma, 42);
    let h2 = argmax_histogram(&db2, sigma, 43);

    // The analytic (ε, δ) at δ = 1e-3 for one RNM release.
    let eps = LinearRdp::report_noisy_max(sigma).to_epsilon(1e-3);
    let bound = eps.exp() * 1.25; // sampling slack
    for k in 0..3 {
        if h1[k] > 0.01 && h2[k] > 0.01 {
            let ratio = (h1[k] / h2[k]).max(h2[k] / h1[k]);
            assert!(
                ratio <= bound,
                "class {k}: likelihood ratio {ratio:.3} exceeds e^ε·slack = {bound:.3}"
            );
        }
    }
}

#[test]
fn report_noisy_max_without_noise_would_fail_the_same_check() {
    // Sanity that the check has teeth: with σ → 0 the ratio explodes.
    let db1 = [10.0, 8.0, 3.0];
    let db2 = [9.0, 9.0, 3.0];
    let h1 = argmax_histogram(&db1, 1e-9, 44);
    let h2 = argmax_histogram(&db2, 1e-9, 45);
    // Noise-free: db1 always answers 0; db2 always answers 0 (tie→low).
    // Use a pair where the noiseless outputs differ:
    let db3 = [8.0, 10.0, 3.0];
    let h3 = argmax_histogram(&db3, 1e-9, 46);
    assert_eq!(h1[0], 1.0);
    assert_eq!(h3[1], 1.0);
    // A deterministic mechanism is maximally distinguishable.
    assert_eq!(h1[1], 0.0);
    let _ = h2;
}

#[test]
fn threshold_test_pass_rate_shifts_smoothly_with_one_vote() {
    // SVT privacy manifests as a bounded shift in pass probability when
    // one vote changes. With σ1 = 4 and a 1-vote change, the pass-rate
    // difference must stay well below the noise-free jump of 1.0 and
    // within what the Gaussian CDF predicts (Φ(0.25) − Φ(0) ≈ 0.099).
    let sigma1 = 4.0;
    let threshold = 60.0;
    let rate = |max_votes: f64, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..TRIALS)
            .filter(|_| {
                noisy_threshold_test(max_votes, threshold, sigma1, &mut rng)
                    == ThresholdOutcome::Passed
            })
            .count() as f64
            / TRIALS as f64
    };
    let p1 = rate(60.0, 47);
    let p2 = rate(59.0, 48);
    let shift = (p1 - p2).abs();
    assert!(shift > 0.05, "a one-vote change must move the rate: {shift}");
    assert!(shift < 0.13, "but only by ~Φ(1/σ)−Φ(0): {shift}");
    // And both rates hover near the 50% boundary behaviour.
    assert!((p1 - 0.5).abs() < 0.02, "at the boundary the gate is a fair coin: {p1}");
}

#[test]
fn distributed_noise_is_indistinguishable_from_centralized() {
    // Kolmogorov–Smirnov-style check: aggregate of 2|U| user shares vs a
    // single central draw of the same σ. The protocol's privacy analysis
    // treats them as the same distribution (they are, exactly).
    let sigma = 6.0;
    let users = 25;
    let dist = dp::DistributedNoise::new(sigma, users);
    let central = dp::Gaussian::new(0.0, sigma);
    let mut rng = StdRng::seed_from_u64(49);
    let mut a: Vec<f64> = (0..20_000).map(|_| dist.aggregate(&mut rng)).collect();
    let mut b: Vec<f64> = (0..20_000).map(|_| central.sample(&mut rng)).collect();
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    // Max CDF gap over the merged grid (two-sample KS statistic).
    let mut max_gap = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
        max_gap = max_gap.max(gap);
    }
    // KS critical value at α = 0.001 for n = m = 20000 is ≈ 0.0195.
    assert!(max_gap < 0.0195, "KS statistic {max_gap} rejects equality");
}
