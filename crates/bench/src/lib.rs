//! Shared plumbing for the experiment binaries: a minimal `--key value`
//! argument parser, table rendering, and common sweep grids.
//!
//! Every binary prints a self-describing table to stdout in the same
//! units the paper reports, so `cargo run -p benches --bin <exp>` directly
//! regenerates the corresponding table/figure series (see DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for recorded runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::fmt::Display;

/// Minimal `--key value` CLI parser over `std::env::args`.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Args {
        Args { raw: env::args().skip(1).collect() }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// Looks up `--name v`, parsing `v`; falls back to `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: Display,
    {
        let flag = format!("--{name}");
        for pair in self.raw.windows(2) {
            if pair[0] == flag {
                return pair[1].parse().unwrap_or_else(|e| panic!("invalid value for {flag}: {e}"));
            }
        }
        default
    }

    /// Whether a bare `--name` flag is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::capture()
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringifies every cell).
    ///
    /// # Panics
    ///
    /// Panics if the row arity disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// The user-count grid every accuracy figure sweeps (Fig. 2-6).
pub const USER_GRID: [usize; 5] = [10, 25, 50, 75, 100];

/// Default privacy levels (ε targets at δ = 1e-6) swept by Fig. 3/4.
pub const EPSILON_GRID: [f64; 3] = [2.0, 8.19, 20.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_and_defaults() {
        let args = Args::from_vec(vec![
            "--users".into(),
            "25".into(),
            "--sigma".into(),
            "4.5".into(),
            "--fast".into(),
        ]);
        assert_eq!(args.get("users", 10usize), 25);
        assert_eq!(args.get("sigma", 1.0f64), 4.5);
        assert_eq!(args.get("rounds", 7u64), 7);
        assert!(args.has("fast"));
        assert!(!args.has("slow"));
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        let args = Args::from_vec(vec!["--users".into(), "abc".into()]);
        let _ = args.get("users", 1usize);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].find('|'), lines[2].find('|'), "columns aligned");
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.12345), "0.123");
    }
}
