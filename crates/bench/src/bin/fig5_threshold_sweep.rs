//! **Fig. 5(a)(b) — Threshold sweep.** Aggregator accuracy vs the voting
//! threshold (30%–90% of users) at a fixed noise scale (the paper pins
//! ε = 8.19 at δ = 1e-6; see EXPERIMENTS.md on accounting differences),
//! for several user counts.
//!
//! Usage: `cargo run --release -p benches --bin fig5_threshold_sweep -- [--rounds R]`

use benches::{f3, Args, Table};
use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::SingleLabelExperiment;
use mlsim::model::TrainConfig;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 5);
    let sigma: f64 = args.get("sigma", 4.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let thresholds = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let user_counts = [25usize, 50, 100];

    for (name, spec) in [
        ("mnist-like", GaussianMixtureSpec::mnist_like()),
        ("svhn-like", GaussianMixtureSpec::svhn_like()),
    ] {
        println!("Fig. 5(a/b) [{name}]: aggregator accuracy vs threshold, σ = {sigma} votes\n");
        let mut table = Table::new(&["threshold", "25 users", "50 users", "100 users"]);
        for &t in &thresholds {
            let mut cells = vec![format!("{:.0}%", t * 100.0)];
            for &users in &user_counts {
                let mut acc = 0.0;
                for _ in 0..rounds {
                    let mut exp = SingleLabelExperiment::new(
                        spec,
                        users,
                        ConsensusConfig::new(t, sigma, sigma),
                    );
                    exp.train_size = args.get("train", 4000);
                    exp.public_size = args.get("public", 500);
                    exp.test_size = args.get("test", 800);
                    exp.train_config =
                        TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
                    acc += exp.run(&mut rng).aggregator_accuracy;
                }
                cells.push(f3(acc / rounds as f64));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!(
        "Paper shape: accuracy peaks at a middle threshold (~60-70%), not at the 30% or \
         90% extremes, and the peak position shifts with the user count."
    );
}
