//! **Ablation — round complexity of the secure ranking.** Runs the
//! paper's sequential all-pairs argmax, the linear-scan tournament, and
//! the 3-message batched variant over real channels, then projects each
//! onto loopback / federated / wide-area network profiles using the
//! analytic latency model.
//!
//! The punchline: computation and byte volume barely move, but over a
//! WAN the sequential variant pays `3·K(K−1)/2` latencies where the
//! batched one pays 3.
//!
//! Usage: `cargo run --release -p benches --bin ablation_rounds -- [--classes K]`

use std::sync::Arc;

use benches::{Args, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::argmax::{
    server1_argmax_pairwise, server1_argmax_tournament, server2_argmax_pairwise,
    server2_argmax_tournament,
};
use smc::batch::{server1_argmax_batched, server2_argmax_batched};
use smc::{SessionConfig, SessionKeys};
use transport::{LinkKind, Network, NetworkProfile, PartyId, Step};

#[derive(Clone, Copy)]
enum Strategy {
    Pairwise,
    Tournament,
    Batched,
}

fn run(
    strategy: Strategy,
    keys: &SessionKeys,
    xs: &[i128],
    ys: &[i128],
    seed: u64,
) -> (usize, transport::MeterReport) {
    let s1_ctx = keys.server1();
    let s2_ctx = keys.server2();
    let mut net = Network::new(0);
    let mut s1 = net.take_endpoint(PartyId::Server1);
    let mut s2 = net.take_endpoint(PartyId::Server2);
    let meter = Arc::clone(net.meter());
    let winner = std::thread::scope(|scope| {
        let h1 = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            match strategy {
                Strategy::Pairwise => {
                    server1_argmax_pairwise(&mut s1, &s1_ctx, xs, Step::CompareRank, &mut rng)
                }
                Strategy::Tournament => {
                    server1_argmax_tournament(&mut s1, &s1_ctx, xs, Step::CompareRank, &mut rng)
                }
                Strategy::Batched => {
                    server1_argmax_batched(&mut s1, &s1_ctx, xs, Step::CompareRank, &mut rng)
                }
            }
            .expect("ranking failed")
        });
        let h2 = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed + 1);
            match strategy {
                Strategy::Pairwise => {
                    server2_argmax_pairwise(&mut s2, &s2_ctx, ys, Step::CompareRank, &mut rng)
                }
                Strategy::Tournament => {
                    server2_argmax_tournament(&mut s2, &s2_ctx, ys, Step::CompareRank, &mut rng)
                }
                Strategy::Batched => {
                    server2_argmax_batched(&mut s2, &s2_ctx, ys, Step::CompareRank, &mut rng)
                }
            }
            .expect("ranking failed")
        });
        let w1 = h1.join().expect("S1 panicked");
        let w2 = h2.join().expect("S2 panicked");
        assert_eq!(w1, w2, "servers must agree");
        w1
    });
    (winner, meter.report())
}

fn main() {
    let args = Args::capture();
    let classes: usize = args.get("classes", 10);
    let seed: u64 = args.get("seed", 5);
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = SessionKeys::generate(SessionConfig::test(1, classes), &mut rng);

    // Share-like inputs with a clear hidden maximum at slot 2.
    let xs: Vec<i128> = (0..classes).map(|i| (i as i128 * 37) % 101 - 50).collect();
    let mut ys: Vec<i128> = (0..classes).map(|i| (i as i128 * 53) % 89 - 44).collect();
    ys[2] += 10_000;

    println!("Secure ranking ablation, K = {classes} classes\n");
    let mut table = Table::new(&[
        "strategy",
        "comparisons",
        "messages",
        "KB",
        "loopback est.",
        "federated est.",
        "wide-area est.",
    ]);
    for (name, strategy, comparisons) in [
        ("pairwise (paper)", Strategy::Pairwise, classes * (classes - 1) / 2),
        ("tournament", Strategy::Tournament, classes - 1),
        ("batched", Strategy::Batched, classes * (classes - 1) / 2),
    ] {
        let (winner, report) = run(strategy, &keys, &xs, &ys, seed + 100);
        assert_eq!(winner, 2, "all strategies must find the planted maximum");
        let stats = report.link_stats(Step::CompareRank, LinkKind::ServerToServer);
        let row_time = |profile: NetworkProfile| {
            format!(
                "{:.1} ms",
                profile.step_network_time(&report, Step::CompareRank).as_secs_f64() * 1e3
            )
        };
        table.row(vec![
            name.to_string(),
            comparisons.to_string(),
            stats.messages.to_string(),
            format!("{:.1}", stats.bytes as f64 / 1024.0),
            row_time(NetworkProfile::local()),
            row_time(NetworkProfile::federated()),
            row_time(NetworkProfile::wide_area()),
        ]);
    }
    table.print();
    println!(
        "\nSame DGK computation per comparison; the batched variant collapses \
         3·K(K−1)/2 sequential WAN round-trips into 3 messages, and the tournament \
         trades comparisons for rounds. All three release the identical winner."
    );
}
