//! **Table II — Communication costs.** Runs the secure protocol and
//! reports the per-step message volume per party, split by link kind,
//! matching the paper's Table II rows.
//!
//! Usage: `cargo run --release -p benches --bin table2_comm_costs -- [--instances N] [--users U] [--classes K]`

use std::sync::Arc;

use benches::{Args, Table};
use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::SessionConfig;
use transport::{LinkKind, Meter, Step};

fn main() {
    let args = Args::capture();
    let instances: usize = args.get("instances", 10);
    let users: usize = args.get("users", 10);
    let classes: usize = args.get("classes", 10);
    let seed: u64 = args.get("seed", 11);

    let mut rng = StdRng::seed_from_u64(seed);
    let session = if args.has("paper-params") {
        SessionConfig::paper(users, classes)
    } else {
        SessionConfig::test(users, classes)
    };
    println!("Table II reproduction: {instances} instances, {users} users, {classes} classes");
    let engine = SecureEngine::new(session, ConsensusConfig::paper_default(2.0, 2.0), &mut rng);
    let meter = Meter::new();

    for i in 0..instances {
        let winner = i % classes;
        let votes: Vec<Vec<f64>> = (0..users)
            .map(|u| {
                let mut v = vec![0.0; classes];
                let pick = if u < users * 4 / 5 { winner } else { (winner + 1 + u) % classes };
                v[pick] = 1.0;
                v
            })
            .collect();
        engine.run_instance(&votes, Arc::clone(&meter), &mut rng).expect("secure run failed");
    }

    let report = meter.report();
    let mut table = Table::new(&["Step", "Message Size Per Party (KB)", "Link"]);
    let rows: [(Step, LinkKind); 8] = [
        (Step::SecureSumVotes, LinkKind::UserToServer),
        (Step::BlindPermute1, LinkKind::ServerToServer),
        (Step::CompareRank, LinkKind::ServerToServer),
        (Step::ThresholdCheck, LinkKind::ServerToServer),
        (Step::SecureSumNoisy, LinkKind::UserToServer),
        (Step::BlindPermute2, LinkKind::ServerToServer),
        (Step::CompareNoisyRank, LinkKind::ServerToServer),
        (Step::Restoration, LinkKind::ServerToServer),
    ];
    for (step, link) in rows {
        let stats = report.link_stats(step, link);
        // Per-party KB per instance: user→server divides by user count.
        let parties = match link {
            LinkKind::UserToServer => users as u64,
            _ => 1,
        };
        let kb = stats.bytes as f64 / 1024.0 / (instances as u64 * parties) as f64;
        table.row(vec![step.to_string(), format!("{kb:.1}"), link.to_string()]);
    }
    table.print();
    println!(
        "\nPaper reference shape: the two Secure Comparison steps dominate (~4.5x the \
         Threshold Checking step, which compares one pair instead of K(K-1)/2); \
         Blind-and-Permute traffic is ~3x the plaintext size from ciphertext expansion."
    );
}
