//! **Fig. 2 — User (teacher) accuracy.** (a) even distribution: mean user
//! accuracy vs number of users; (b)(c)(d) uneven distributions 2-8 / 3-7 /
//! 4-6: majority-group vs minority-group accuracy, for the mnist-like,
//! svhn-like and celeba-like workloads.
//!
//! Usage: `cargo run --release -p benches --bin fig2_user_accuracy -- [--train N] [--rounds R]`

use benches::{f3, Args, Table, USER_GRID};
use mlsim::model::TrainConfig;
use mlsim::partition::{division_split, even_split, Division};
use mlsim::synthetic::{GaussianMixtureSpec, SparseAttributeSpec};
use mlsim::teacher::{MultiLabelEnsemble, TeacherEnsemble};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let train_size: usize = args.get("train", 4000);
    let test_size: usize = args.get("test", 800);
    let rounds: usize = args.get("rounds", 2);
    let seed: u64 = args.get("seed", 2);
    let train_config = TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
    let mut rng = StdRng::seed_from_u64(seed);

    println!("Fig. 2(a): average user accuracy, even distribution\n");
    let mut table = Table::new(&["users", "mnist-like", "svhn-like", "celeba-like"]);
    for &users in &USER_GRID {
        let mut cells = vec![users.to_string()];
        for name in ["mnist", "svhn"] {
            let spec = if name == "mnist" {
                GaussianMixtureSpec::mnist_like()
            } else {
                GaussianMixtureSpec::svhn_like()
            };
            let mut acc = 0.0;
            for _ in 0..rounds {
                let train = spec.generate(train_size, &mut rng);
                let test = spec.generate(test_size, &mut rng);
                let p = even_split(train.len(), users, &mut rng);
                let e = TeacherEnsemble::train(&train, &p, &train_config, &mut rng);
                acc += e.user_accuracy(&test, &p).mean;
            }
            cells.push(f3(acc / rounds as f64));
        }
        // CelebA surrogate.
        let spec = SparseAttributeSpec::celeba_like();
        let mut acc = 0.0;
        for _ in 0..rounds {
            let train = spec.generate(train_size.min(3000), &mut rng);
            let test = spec.generate(test_size, &mut rng);
            let p = even_split(train.len(), users, &mut rng);
            let e = MultiLabelEnsemble::train(&train, &p, &train_config, &mut rng);
            acc += e.user_accuracy(&test, &p).mean;
        }
        cells.push(f3(acc / rounds as f64));
        table.row(cells);
    }
    table.print();
    println!("\nPaper shape: accuracy decreases monotonically with the number of users.\n");

    for (spec_name, which) in [("mnist-like", 0), ("svhn-like", 1), ("celeba-like", 2)] {
        println!("Fig. 2(b-d) [{spec_name}]: majority (80/70/60% of users, small shards) vs minority accuracy\n");
        let mut table = Table::new(&["users", "2-8 maj/min", "3-7 maj/min", "4-6 maj/min"]);
        for &users in &USER_GRID {
            let mut cells = vec![users.to_string()];
            for division in Division::ALL {
                let (maj, min) = match which {
                    2 => {
                        let spec = SparseAttributeSpec::celeba_like();
                        let train = spec.generate(train_size.min(3000), &mut rng);
                        let test = spec.generate(test_size, &mut rng);
                        let p = division_split(train.len(), users, division, &mut rng);
                        let e = MultiLabelEnsemble::train(&train, &p, &train_config, &mut rng);
                        let acc = e.user_accuracy(&test, &p);
                        (acc.majority.unwrap_or(0.0), acc.minority.unwrap_or(0.0))
                    }
                    _ => {
                        let spec = if which == 0 {
                            GaussianMixtureSpec::mnist_like()
                        } else {
                            GaussianMixtureSpec::svhn_like()
                        };
                        let train = spec.generate(train_size, &mut rng);
                        let test = spec.generate(test_size, &mut rng);
                        let p = division_split(train.len(), users, division, &mut rng);
                        let e = TeacherEnsemble::train(&train, &p, &train_config, &mut rng);
                        let acc = e.user_accuracy(&test, &p);
                        (acc.majority.unwrap_or(0.0), acc.minority.unwrap_or(0.0))
                    }
                };
                cells.push(format!("{}/{}", f3(maj), f3(min)));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!("Paper shape: the more unbalanced the division, the larger the majority/minority accuracy gap.");
}
