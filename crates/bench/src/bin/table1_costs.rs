//! **Table I — Computational costs.** Runs the full secure protocol
//! (Alg. 5) over real channels for a batch of instances and reports the
//! per-step average running time, in the same rows as the paper.
//!
//! Paper setting: 1000 instances, 10 classes, averaged over 755 rounds on
//! a Xeon E5-2650. Defaults here are smaller (override with `--instances`,
//! `--classes`, `--users`); absolute times differ from the paper's
//! testbed but the *ratios* (secure comparison ≫ blind-and-permute) are
//! the reproduced signal.
//!
//! Usage: `cargo run --release -p benches --bin table1_costs -- [--instances N] [--users U] [--classes K] [--paper-params]`

use std::sync::Arc;

use benches::{f3, Args, Table};
use consensus_core::config::ConsensusConfig;
use consensus_core::secure::{RankingStrategy, SecureEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::SessionConfig;
use transport::{Meter, NetworkProfile, Step};

fn main() {
    let args = Args::capture();
    let instances: usize = args.get("instances", 20);
    let users: usize = args.get("users", 10);
    let classes: usize = args.get("classes", 10);
    let seed: u64 = args.get("seed", 7);
    let paper_params = args.has("paper-params");

    let mut rng = StdRng::seed_from_u64(seed);
    let session = if paper_params {
        SessionConfig::paper(users, classes)
    } else {
        SessionConfig::test(users, classes)
    };
    println!(
        "Table I reproduction: {instances} instances, {users} users, {classes} classes, \
         Paillier {} bits, DGK ℓ = {}",
        session.paillier_bits, session.dgk.compare_bits
    );
    let consensus = ConsensusConfig::paper_default(2.0, 2.0);
    let ranking = if args.has("batched") {
        RankingStrategy::Batched
    } else if args.has("tournament") {
        RankingStrategy::Tournament
    } else {
        RankingStrategy::Pairwise
    };
    let engine = SecureEngine::new(session, consensus, &mut rng).with_ranking(ranking);
    let meter = Meter::new();

    let mut released = 0usize;
    for i in 0..instances {
        // Rotate a strong majority so most instances pass the threshold
        // and exercise steps 6-9 (as the paper's per-step averages do).
        let winner = i % classes;
        let votes: Vec<Vec<f64>> = (0..users)
            .map(|u| {
                let mut v = vec![0.0; classes];
                let pick = if u < users * 4 / 5 { winner } else { (winner + 1 + u) % classes };
                v[pick] = 1.0;
                v
            })
            .collect();
        let out =
            engine.run_instance(&votes, Arc::clone(&meter), &mut rng).expect("secure run failed");
        if out.label.is_some() {
            released += 1;
        }
    }

    let report = meter.report();
    let mut table = Table::new(&["Step", "Average Running Time (s)"]);
    for step in [
        Step::BlindPermute1,
        Step::CompareRank,
        Step::ThresholdCheck,
        Step::BlindPermute2,
        Step::CompareNoisyRank,
        Step::Restoration,
    ] {
        table.row(vec![
            step.to_string(),
            f3(report.step_time(step).as_secs_f64() / instances as f64),
        ]);
    }
    table
        .row(vec!["Overall".to_string(), f3(report.total_time().as_secs_f64() / instances as f64)]);
    table.print();
    println!("\n({released}/{instances} instances passed the threshold, ranking = {ranking:?})");
    println!("Paper reference ratios: comparison steps (4)(8) dominate; threshold check (5) ≈ 2/K of step (4); permute/restore steps are orders of magnitude cheaper.");

    // Analytic network projection: what the same run would pay in message
    // latency + serialization on realistic links.
    println!("\nEstimated network time per instance (latency model):");
    for (name, profile) in [
        ("loopback", NetworkProfile::local()),
        ("federated (users WAN, servers LAN)", NetworkProfile::federated()),
        ("wide-area", NetworkProfile::wide_area()),
    ] {
        let t = profile.total_network_time(&report).as_secs_f64() / instances as f64;
        println!("  {name:<36} {t:.3} s");
    }
}
