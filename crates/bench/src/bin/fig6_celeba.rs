//! **Fig. 6 — CelebA-like multi-label results.** Label accuracy and
//! aggregator accuracy across user counts for even and uneven
//! distributions, on the sparse 40-attribute workload.
//!
//! Usage: `cargo run --release -p benches --bin fig6_celeba -- [--rounds R]`

use benches::{f3, Args, Table, USER_GRID};
use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{MultiLabelExperiment, PartitionKind};
use mlsim::model::TrainConfig;
use mlsim::partition::Division;
use mlsim::synthetic::SparseAttributeSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 9);
    let sigma: f64 = args.get("sigma", 2.0);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("Fig. 6 [celeba-like]: label / aggregator accuracy, σ = {sigma} votes\n");
    let mut table =
        Table::new(&["users", "distribution", "label acc", "agg acc", "consensus rate"]);
    let kinds = [
        ("even", PartitionKind::Even),
        ("2-8", PartitionKind::Uneven(Division::D28)),
        ("3-7", PartitionKind::Uneven(Division::D37)),
        ("4-6", PartitionKind::Uneven(Division::D46)),
    ];
    for &users in &USER_GRID {
        for (name, kind) in kinds {
            let mut label_acc = 0.0;
            let mut agg_acc = 0.0;
            let mut consensus = 0.0;
            for _ in 0..rounds {
                let mut exp = MultiLabelExperiment::new(
                    SparseAttributeSpec::celeba_like(),
                    users,
                    ConsensusConfig::paper_default(sigma, sigma),
                )
                .with_partition(kind);
                exp.train_size = args.get("train", 3000);
                exp.public_size = args.get("public", 200);
                exp.test_size = args.get("test", 500);
                exp.train_config =
                    TrainConfig { epochs: args.get("epochs", 15), ..TrainConfig::default() };
                let out = exp.run(&mut rng);
                label_acc += out.label_stats.label_accuracy;
                agg_acc += out.aggregator_accuracy;
                consensus += out.consensus_rate.unwrap_or(0.0);
            }
            let r = rounds as f64;
            table.row(vec![
                users.to_string(),
                name.to_string(),
                f3(label_acc / r),
                f3(agg_acc / r),
                f3(consensus / r),
            ]);
        }
    }
    table.print();
    println!(
        "\nPaper shape: under uneven distributions the aggregator accuracy decreases with \
         the number of users — positive (sparse) attributes are learned by few users, their \
         votes deviate from the consensus and get discarded, leaving near-uniform negative \
         label vectors that the student overfits."
    );
}
