//! **Fig. 4 — One-hot vs softmax teacher labels.** Aggregator accuracy
//! for both vote representations on the mnist-like and svhn-like
//! workloads.
//!
//! Usage: `cargo run --release -p benches --bin fig4_onehot_softmax -- [--rounds R]`

use benches::{f3, Args, Table, USER_GRID};
use consensus_core::config::{ConsensusConfig, VoteKind};
use consensus_core::pipeline::SingleLabelExperiment;
use mlsim::model::TrainConfig;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 4);
    let sigma: f64 = args.get("sigma", 4.0);
    let mut rng = StdRng::seed_from_u64(seed);

    for (name, spec) in [
        ("mnist-like", GaussianMixtureSpec::mnist_like()),
        ("svhn-like", GaussianMixtureSpec::svhn_like()),
    ] {
        println!("Fig. 4 [{name}]: aggregator accuracy, σ = {sigma} votes\n");
        let mut table = Table::new(&["users", "one-hot", "softmax"]);
        for &users in &USER_GRID {
            let mut onehot = 0.0;
            let mut softmax = 0.0;
            for _ in 0..rounds {
                let mut exp = SingleLabelExperiment::new(
                    spec,
                    users,
                    ConsensusConfig::paper_default(sigma, sigma),
                );
                exp.train_size = args.get("train", 4000);
                exp.public_size = args.get("public", 500);
                exp.test_size = args.get("test", 800);
                exp.train_config =
                    TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
                onehot += exp.clone().run(&mut rng).aggregator_accuracy;
                exp.config = exp.config.with_vote_kind(VoteKind::Softmax);
                softmax += exp.run(&mut rng).aggregator_accuracy;
            }
            table.row(vec![
                users.to_string(),
                f3(onehot / rounds as f64),
                f3(softmax / rounds as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Paper shape: softmax labels are no better than one-hot labels — aggregated \
         probability mass does not add useful information in the majority-vote setting."
    );
}
