//! **Table III — Proportion of retained samples / label accuracy** on
//! the svhn-like workload across the uneven divisions, matching the
//! paper's `retained/accuracy` cell format.
//!
//! Usage: `cargo run --release -p benches --bin table3_retention -- [--rounds R]`

use benches::{Args, Table, USER_GRID};
use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{PartitionKind, SingleLabelExperiment};
use mlsim::model::TrainConfig;
use mlsim::partition::Division;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 8);
    let sigma: f64 = args.get("sigma", 4.0);
    let mut rng = StdRng::seed_from_u64(seed);

    println!("Table III reproduction [svhn-like]: retained proportion / label accuracy\n");
    let mut table = Table::new(&["users", "2-8", "3-7", "4-6"]);
    for &users in &USER_GRID {
        let mut cells = vec![users.to_string()];
        for division in Division::ALL {
            let mut retention = 0.0;
            let mut label_acc = 0.0;
            for _ in 0..rounds {
                let mut exp = SingleLabelExperiment::new(
                    GaussianMixtureSpec::svhn_like(),
                    users,
                    ConsensusConfig::paper_default(sigma, sigma),
                )
                .with_partition(PartitionKind::Uneven(division));
                exp.train_size = args.get("train", 4000);
                exp.public_size = args.get("public", 500);
                exp.test_size = args.get("test", 800);
                exp.train_config =
                    TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
                let out = exp.run(&mut rng);
                retention += out.label_stats.retention();
                label_acc += out.label_stats.label_accuracy;
            }
            let r = rounds as f64;
            cells.push(format!("{:.3}/{:.3}", retention / r, label_acc / r));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nPaper shape: label accuracy is nearly constant across divisions at a given \
         user count, while the retained proportion falls as the split becomes more \
         uneven — retention, not labeling, drives the Fig. 5(c/d) accuracy drop. \
         Retention also rises with the number of users."
    );
}
