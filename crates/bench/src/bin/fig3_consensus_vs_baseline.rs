//! **Fig. 3 — Label accuracy and aggregator accuracy, consensus vs
//! baseline.** For the mnist-like and svhn-like workloads, sweeps the
//! number of users and the privacy level; at each point runs both the
//! private consensus protocol and the same-noise noisy-max baseline.
//!
//! Privacy levels are expressed as noise scales σ (= σ₁ = σ₂, in votes);
//! the table also prints the *campaign* ε our conservative
//! data-independent Theorem 5 accounting assigns to each run. (The
//! paper's quoted ε values use PATE-style data-dependent accounting and
//! are not directly comparable; the reproduced signal is the *shape*
//! across privacy levels and user counts.)
//!
//! Usage: `cargo run --release -p benches --bin fig3_consensus_vs_baseline -- [--train N] [--rounds R]`

use benches::{f3, Args, Table, USER_GRID};
use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{LabelingMode, SingleLabelExperiment};
use mlsim::model::TrainConfig;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Privacy levels, high → low (σ in votes).
const SIGMA_GRID: [f64; 3] = [8.0, 4.0, 1.5];

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 3);
    let mut rng = StdRng::seed_from_u64(seed);

    for (name, spec) in [
        ("mnist-like", GaussianMixtureSpec::mnist_like()),
        ("svhn-like", GaussianMixtureSpec::svhn_like()),
    ] {
        println!("Fig. 3 [{name}]: label accuracy / aggregator accuracy (consensus | baseline)\n");
        let mut table = Table::new(&[
            "users",
            "sigma",
            "campaign eps",
            "label cons",
            "label base",
            "agg cons",
            "agg base",
        ]);
        for &sigma in &SIGMA_GRID {
            for &users in &USER_GRID {
                let mut acc = [0.0f64; 4];
                let mut eps = 0.0;
                for _ in 0..rounds {
                    let mut exp = SingleLabelExperiment::new(
                        spec,
                        users,
                        ConsensusConfig::paper_default(sigma, sigma),
                    );
                    exp.train_size = args.get("train", 4000);
                    exp.public_size = args.get("public", 500);
                    exp.test_size = args.get("test", 800);
                    exp.train_config =
                        TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
                    let cons = exp.clone().with_mode(LabelingMode::Consensus).run(&mut rng);
                    let base = exp.with_mode(LabelingMode::Baseline).run(&mut rng);
                    acc[0] += cons.label_stats.label_accuracy;
                    acc[1] += base.label_stats.label_accuracy;
                    acc[2] += cons.aggregator_accuracy;
                    acc[3] += base.aggregator_accuracy;
                    eps = cons.epsilon;
                }
                let r = rounds as f64;
                table.row(vec![
                    users.to_string(),
                    format!("{sigma}"),
                    format!("{eps:.1}"),
                    f3(acc[0] / r),
                    f3(acc[1] / r),
                    f3(acc[2] / r),
                    f3(acc[3] / r),
                ]);
            }
        }
        table.print();
        println!();
    }
    println!(
        "Paper shape: consensus beats the baseline at 50+ users (it filters invalid \
         instances); at 25 users it can trail slightly (threshold discards useful votes); \
         accuracy rises as privacy loosens (smaller sigma); baseline accuracy falls \
         monotonically with user count while consensus does not."
    );
}
