//! **BENCH_protocol.json** — machine-readable protocol microbenches.
//!
//! Times the cryptographic hot-path operations (Paillier encrypt/decrypt,
//! DGK encrypt/zero-test, homomorphic scalar ops) and emits a flat
//! `step → ns/iter` JSON map, seeding the repository's performance
//! trajectory. For every operation two variants run on **identical
//! operands**:
//!
//! * `<step>_pre` — the pre-caching baseline: the exact exponentiation
//!   strategy the workspace used before per-key cached Montgomery
//!   contexts landed (a fresh context built per call, Montgomery only
//!   when `exp.bits() >= 24`, allocation-per-step binary ladder);
//! * `<step>` — the current path through the per-key caches and
//!   fixed-base tables.
//!
//! Private scalars the public API hides (Paillier `λ`, DGK `v_p`/`p`)
//! are replaced by freshly sampled stand-ins of the same documented bit
//! lengths, used identically by both variants, so every pre/post ratio
//! compares like against like.
//!
//! The `ablation_*` entries record the DESIGN.md "Exponentiation
//! strategy" ladder (division → rebuilt Montgomery → cached Montgomery →
//! fixed-base window → Shamir double-exp) at a 256-bit modulus.
//!
//! The `par_*` entries form the data-parallel thread-scaling sweep: the
//! same hot loops (randomizer-pool generation, batch encryption, DGK
//! witness construction, secure-sum aggregation, one full engine round at
//! |U| = 8, K = 10) timed at 1/2/4/8 worker threads through the
//! [`Parallelism`] engine. Every JSON sample carries the thread count it
//! was measured at.
//!
//! The emitted JSON also contains one `fault_counters` object with the
//! reliability counters the end-to-end rounds accumulated — timeouts,
//! retries, `rejected_*` upload-validation refusals, backpressure and
//! socket events — all expected to be zero on a healthy machine, so a
//! trend line notices the first run where they are not.
//!
//! Usage:
//! `cargo run --release -p benches --bin bench_protocol -- [--smoke] [--batch] [--scale] [--iters N] [--threads N] [--out PATH]`
//!
//! `--smoke` runs 2 iterations per step and trims the thread sweep (CI
//! wiring); `--threads` (default: the `CONSENSUS_THREADS` environment
//! variable, else 1) is always included as a sweep point; `--audit`
//! additionally times the full engine round with the covert-security
//! audit layer off vs. on (`audit_off_engine_round_*` /
//! `audit_on_engine_round_*` rows), so the cost of commit-and-challenge
//! verification is a tracked number rather than folklore; `--batch` adds
//! the batched-kernel ablation rows (Straus multi-exp vs iterated modpow
//! at k ∈ {1, 4, 16, 64}, Karatsuba vs schoolbook Montgomery product at
//! 4096 bits, fixed-Garner vs gcd CRT recombination, batched vs per-item
//! pool refill and DGK zero test), each k-sweep reported as per-item
//! nanoseconds; `--out` defaults to `BENCH_protocol.json` in the current
//! directory.
//!
//! `--scale` runs the simulated streaming-ingest sweep behind the
//! hierarchical shard layer: |U| ∈ {100k, 300k, 1M} uploads (one
//! template ciphertext vector cloned per arriving user, so the round's
//! uploads are never materialized at once) are validated, stream-folded
//! through per-shard [`smc::ShardAccumulator`]s at shard counts
//! {1, 64} (+ one 1024-shard row at 1M), and tree-combined. Each
//! `scale_u<users>_s<shards>` JSON row records users, shards,
//! bytes-per-user on the wire, ingest throughput, and the process peak /
//! current RSS (`VmHWM`/`VmRSS` from `/proc/self/status`) — the
//! committed evidence that server memory tracks shard geometry, not
//! |U|. The sweep also emits the survivor-intersection ablation at
//! |U| = 10k (`ablation_survivor_intersect_{linear,sorted}_u10000`):
//! the O(|U|²) `Vec::contains` reconciliation scan vs the sorted-merge
//! intersection that replaced it. Every run emits a `meta` object with
//! the machine's available cores, so trend tooling can discount thread
//! sweeps measured on single-core boxes.
//!
//! Every run also drives the multi-session reactor at 128 concurrent
//! sessions (16 in smoke mode) and emits one `reactor_sessions` JSON row
//! with sessions/sec and p50/p99 admission→completion latency, plus one
//! deliberately shed over-cap admission so the `sessions_rejected`
//! counter is exercised; the `sessions_{admitted,rejected,evicted}`
//! scheduler counters ride in `fault_counters`.
//!
//! Every run also drives a short durable campaign through
//! [`consensus_core::campaign::CampaignRunner`] and emits one
//! `campaign_round_<i>` JSON row per round (epsilon trajectory,
//! wall/compute split, per-link bytes) plus a `campaign_summary` row
//! with rounds-per-second — the cost time series
//! `scripts/check_bench.sh` gates on.

use std::hint::black_box;
use std::time::{Duration, Instant};

use benches::Args;
use bigint::modular::{crt_pair, modinverse, modmul, modpow_basic, modsub};
use bigint::montgomery::{FixedBaseTable, MontgomeryContext};
use bigint::prime::gen_prime;
use bigint::{random, Ubig};
use consensus_core::campaign::{CampaignConfig, CampaignRunner};
use consensus_core::config::ConsensusConfig;
use consensus_core::reactor::{Reactor, ReactorConfig, SessionMachine, SessionResult};
use consensus_core::secure::{RankingStrategy, SecureEngine};
use dgk::comparison::{blinder_build_witnesses_par, evaluator_encrypt_bits_par};
use dgk::{DgkKeypair, DgkParams};
use paillier::{Ciphertext, Keypair, RandomizerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::secure_sum::aggregate_user_vectors;
use smc::shard::{intersect_sorted, STREAM_CHUNK};
use smc::{
    AuditPolicy, Parallelism, SessionConfig, ShardAccumulator, ShardConfig, ShardPlan,
    UploadValidator,
};
use std::sync::Arc;
use transport::{FaultStats, Meter, Network, PartyId, Step, Wire};

/// The dispatch threshold the pre-change `modular::modpow` used.
const OLD_MONTGOMERY_EXP_THRESHOLD: u64 = 24;

/// Replica of the pre-change `modular::modpow`: a Montgomery context is
/// rebuilt on **every call** (the cost this PR removes), and the ladder
/// runs over allocating `Ubig`-level Montgomery multiplications.
fn modpow_old(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
    if m.is_odd() && exp.bits() >= OLD_MONTGOMERY_EXP_THRESHOLD {
        if let Some(ctx) = MontgomeryContext::new(m) {
            return ctx_modpow_old(&ctx, base, exp);
        }
    }
    modpow_basic(base, exp, m)
}

/// The pre-change context ladder: plain high-to-low square-and-multiply
/// through the public (allocating) `to_mont`/`mul_mont`/`from_mont` API,
/// exactly as `MontgomeryContext::modpow` was implemented before the
/// scratch-buffer engine and 4-bit windows.
fn ctx_modpow_old(ctx: &MontgomeryContext, base: &Ubig, exp: &Ubig) -> Ubig {
    let base = base % ctx.modulus();
    if exp.is_zero() {
        return Ubig::one();
    }
    let base_m = ctx.to_mont(&base);
    let mut acc = ctx.to_mont(&Ubig::one());
    for i in (0..exp.bits()).rev() {
        acc = ctx.mul_mont(&acc, &acc);
        if exp.bit(i) {
            acc = ctx.mul_mont(&acc, &base_m);
        }
    }
    ctx.from_mont(&acc)
}

/// Times `f` over `iters` iterations (after 2 warmup runs) and returns
/// whole nanoseconds per iteration.
fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> u128 {
    f();
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / iters as u128).max(1)
}

/// Reads a kB-denominated field (`VmHWM`, `VmRSS`) from
/// `/proc/self/status`. Returns `None` off Linux or if the field is
/// missing, in which case the scale rows record 0.
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Report {
    entries: Vec<(String, u128, usize)>,
    /// Named raw-JSON objects (scale-sweep rows, run metadata) spliced
    /// verbatim into the top-level map after the timing entries.
    objects: Vec<(String, String)>,
    /// Reliability counters accumulated by the end-to-end engine rounds:
    /// upload-validation rejections (`rejected_*`), injected/detected
    /// faults, backpressure and socket-level events. All zero on a
    /// healthy machine — the point is that CI trend lines notice when
    /// they stop being zero.
    faults: FaultStats,
}

impl Report {
    /// Records a single-threaded sample.
    fn record(&mut self, step: &str, ns: u128) {
        self.record_at(step, ns, 1);
    }

    /// Records a sample measured at `threads` worker threads.
    fn record_at(&mut self, step: &str, ns: u128, threads: usize) {
        println!("  {step:<44} {ns:>12} ns/iter");
        self.entries.push((step.to_string(), ns, threads));
    }

    /// Records a pre-serialized JSON object under `name` — the richer
    /// row shape the scale sweep and `meta` entry need.
    fn record_obj(&mut self, name: &str, body: String) {
        println!("  {name:<44} {body}");
        self.objects.push((name.to_string(), body));
    }

    fn ns(&self, step: &str) -> u128 {
        self.entries
            .iter()
            .find(|(s, _, _)| s == step)
            .map(|&(_, ns, _)| ns)
            .expect("step recorded")
    }

    fn speedup(&self, step: &str) -> f64 {
        self.ns(&format!("{step}_pre")) as f64 / self.ns(step) as f64
    }

    /// Hand-rolled JSON (the workspace has no serde_json): a flat
    /// `{"step": {"ns": N, "threads": T}, ...}` object, so every sample
    /// records the worker-thread count it was measured at, plus one
    /// `"fault_counters"` object with the reliability and upload-
    /// validation counters observed by the end-to-end engine rounds.
    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (step, ns, threads) in &self.entries {
            out.push_str(&format!("  \"{step}\": {{\"ns\": {ns}, \"threads\": {threads}}},\n"));
        }
        for (name, body) in &self.objects {
            out.push_str(&format!("  \"{name}\": {body},\n"));
        }
        let f = &self.faults;
        let counters = [
            ("timeouts", f.timeouts),
            ("retries", f.retries),
            ("drops_injected", f.drops_injected),
            ("delays_injected", f.delays_injected),
            ("duplicates_injected", f.duplicates_injected),
            ("duplicates_suppressed", f.duplicates_suppressed),
            ("corruptions_injected", f.corruptions_injected),
            ("corruptions_detected", f.corruptions_detected),
            ("crashed_sends", f.crashed_sends),
            ("checkpoints_saved", f.checkpoints_saved),
            ("checkpoints_restored", f.checkpoints_restored),
            ("rounds_resumed", f.rounds_resumed),
            ("rejected_ciphertexts", f.rejected_ciphertexts),
            ("rejected_arity", f.rejected_arity),
            ("rejected_duplicates", f.rejected_duplicates),
            ("backpressure_blocked", f.backpressure_blocked),
            ("liveness_expired", f.liveness_expired),
            ("reconnects", f.reconnects),
            ("audit_challenges", f.audit_challenges),
            ("audit_failures", f.audit_failures),
            ("equivocation_detected", f.equivocation_detected),
            ("sessions_admitted", f.sessions_admitted),
            ("sessions_rejected", f.sessions_rejected),
            ("sessions_evicted", f.sessions_evicted),
        ];
        out.push_str("  \"fault_counters\": {");
        for (i, (name, count)) in counters.iter().enumerate() {
            let comma = if i + 1 == counters.len() { "" } else { ", " };
            out.push_str(&format!("\"{name}\": {count}{comma}"));
        }
        out.push_str("}\n}\n");
        out
    }
}

fn main() {
    let args = Args::capture();
    let smoke = args.has("smoke");
    let iters: u64 = if smoke { 2 } else { args.get("iters", 300) };
    let heavy_iters: u64 = if smoke { 2 } else { (iters / 6).max(20) };
    let out_path: String = args.get("out", "BENCH_protocol.json".to_string());

    let mut rng = StdRng::seed_from_u64(42);
    let mut report =
        Report { entries: Vec::new(), objects: Vec::new(), faults: FaultStats::default() };
    println!(
        "bench_protocol: {} iters/step ({} for heavy steps){}",
        iters,
        heavy_iters,
        if smoke { " [smoke]" } else { "" }
    );

    // ----- Paillier (the paper's 64-bit prototype scale) ------------------
    let kp = Keypair::generate(&mut rng, 64);
    let pk = kp.public_key().clone();
    let sk = kp.private_key().clone();
    pk.precompute();
    let n = pk.modulus().clone();
    let n2 = pk.modulus_squared().clone();
    let m = random::gen_below(&mut rng, &n);
    let r = random::gen_coprime(&mut rng, &n);
    let ct = pk.encrypt_with_randomness(&m, &r);
    let scalar = random::gen_below(&mut rng, &n);
    // λ stand-in: lcm(p−1, q−1) has (about) the modulus bit length.
    let lambda_proxy = random::gen_exact_bits(&mut rng, n.bits() - 1);

    println!("\nPaillier ({}-bit n):", n.bits());
    // Encryption: g^m is one modmul (g = n+1); the cost is r^n mod n².
    report.record(
        "paillier_encrypt_pre",
        time_ns(iters, || {
            let g_m = &(Ubig::one() + modmul(&m, &n, &n2)) % &n2;
            let r_n = modpow_old(&r, &n, &n2);
            black_box(modmul(&g_m, &r_n, &n2));
        }),
    );
    report.record(
        "paillier_encrypt",
        time_ns(iters, || {
            black_box(pk.encrypt_with_randomness(&m, &r));
        }),
    );

    // Decryption: c^λ mod n², then L and one modmul (identical in both).
    report.record(
        "paillier_decrypt_pre",
        time_ns(iters, || {
            let x = modpow_old(ct.as_raw(), &lambda_proxy, &n2);
            let l = &(&x - &Ubig::one()) / &n;
            black_box(modmul(&l, &scalar, &n));
        }),
    );
    report.record(
        "paillier_decrypt",
        time_ns(iters, || {
            black_box(sk.decrypt(&ct).expect("well-formed ciphertext"));
        }),
    );

    // CRT decryption: two half-size exponentiations under p²/q² contexts.
    report.record(
        "paillier_decrypt_crt",
        time_ns(iters, || {
            black_box(sk.decrypt_crt(&ct).expect("well-formed ciphertext"));
        }),
    );

    report.record(
        "paillier_mul_plain_pre",
        time_ns(iters, || {
            black_box(modpow_old(ct.as_raw(), &scalar, &n2));
        }),
    );
    report.record(
        "paillier_mul_plain",
        time_ns(iters, || {
            black_box(pk.mul_plain(&ct, &scalar));
        }),
    );

    // Randomizer pool: amortized per-item generation cost.
    let pool_items = if smoke { 2 } else { 32 };
    report.record(
        "paillier_pool_generate_per_item_pre",
        time_ns(heavy_iters, || {
            for _ in 0..pool_items {
                let rr = random::gen_coprime(&mut rng, &n);
                black_box(modpow_old(&rr, &n, &n2));
            }
        }) / pool_items as u128,
    );
    report.record(
        "paillier_pool_generate_per_item",
        time_ns(heavy_iters, || {
            black_box(RandomizerPool::generate(pk.clone(), pool_items, &mut rng));
        }) / pool_items as u128,
    );

    // ----- DGK (test parameters: 128-bit n, ℓ = 26) -----------------------
    let dgk_params = DgkParams::insecure_test();
    let dgk = DgkKeypair::generate(&mut rng, &dgk_params);
    let dpk = dgk.public_key().clone();
    let dsk = dgk.private_key().clone();
    dpk.precompute();
    let dn = dpk.modulus().clone();
    let du = dpk.plaintext_space().clone();
    let dm = random::gen_below(&mut rng, &du);
    let blind_bits = dpk.blind_bits();
    let dct = dpk.encrypt(&dm, &mut rng).expect("message in Z_u");
    // Stand-ins for the private p / v_p of the zero test, same bit sizes.
    let p_proxy = {
        let mut p = random::gen_exact_bits(&mut rng, dgk_params.modulus_bits / 2);
        p.set_bit(0, true);
        p
    };
    let vp_proxy = random::gen_exact_bits(&mut rng, dgk_params.subgroup_bits);
    let ctx_p_proxy = MontgomeryContext::new(&p_proxy).expect("odd modulus");
    let c_mod_p = dct.as_raw() % &p_proxy;

    println!("\nDGK ({}-bit n, u = {}):", dn.bits(), du);
    // Encryption: g^m · h^r. Old: two context rebuilds + two ladders.
    report.record(
        "dgk_encrypt_pre",
        time_ns(iters, || {
            let rr = random::gen_bits(&mut rng, blind_bits);
            let g_m = modpow_old(dpk.generator_g(), &dm, &dn);
            let h_r = modpow_old(dpk.generator_h(), &rr, &dn);
            black_box(modmul(&g_m, &h_r, &dn));
        }),
    );
    report.record(
        "dgk_encrypt",
        time_ns(iters, || {
            black_box(dpk.encrypt(&dm, &mut rng).expect("message in Z_u"));
        }),
    );

    // Zero test: c^{v_p} mod p, on the same proxy operands both ways.
    report.record(
        "dgk_is_zero_pre",
        time_ns(iters, || {
            black_box(modpow_old(&c_mod_p, &vp_proxy, &p_proxy).is_one());
        }),
    );
    report.record(
        "dgk_is_zero",
        time_ns(iters, || {
            black_box(ctx_p_proxy.modpow(&c_mod_p, &vp_proxy).is_one());
        }),
    );
    // The real zero test through the private key's cached context.
    report.record(
        "dgk_is_zero_full",
        time_ns(iters, || {
            black_box(dsk.is_zero(&dct).expect("well-formed ciphertext"));
        }),
    );

    report.record(
        "dgk_mul_plain_pre",
        time_ns(iters, || {
            black_box(modpow_old(dct.as_raw(), &vp_proxy, &dn));
        }),
    );
    report.record(
        "dgk_mul_plain",
        time_ns(iters, || {
            black_box(dpk.mul_plain(&dct, &vp_proxy));
        }),
    );

    // ----- Exponentiation-strategy ablation (256-bit modulus) -------------
    let mut am = random::gen_exact_bits(&mut rng, 256);
    am.set_bit(0, true);
    let actx = Arc::new(MontgomeryContext::new(&am).expect("odd modulus"));
    let abase = random::gen_below(&mut rng, &am);
    let aexp = random::gen_exact_bits(&mut rng, 256);
    let atable = FixedBaseTable::new(Arc::clone(&actx), &abase, 256);
    let h = random::gen_below(&mut rng, &am);
    let bexp = random::gen_exact_bits(&mut rng, 256);
    let htable = FixedBaseTable::new(Arc::clone(&actx), &h, 256);

    println!("\nExponentiation ablation (256-bit modulus):");
    report.record(
        "ablation_modpow_division_256",
        time_ns(heavy_iters, || {
            black_box(modpow_basic(&abase, &aexp, &am));
        }),
    );
    report.record(
        "ablation_modpow_rebuilt_montgomery_256",
        time_ns(heavy_iters, || {
            black_box(modpow_old(&abase, &aexp, &am));
        }),
    );
    report.record(
        "ablation_modpow_cached_montgomery_256",
        time_ns(heavy_iters, || {
            black_box(actx.modpow(&abase, &aexp));
        }),
    );
    report.record(
        "ablation_fixed_base_256",
        time_ns(heavy_iters, || {
            black_box(atable.pow(&aexp));
        }),
    );
    report.record(
        "ablation_two_pows_mul_256",
        time_ns(heavy_iters, || {
            black_box(modmul(&actx.modpow(&abase, &aexp), &actx.modpow(&h, &bexp), &am));
        }),
    );
    report.record(
        "ablation_double_exp_256",
        time_ns(heavy_iters, || {
            black_box(actx.modpow2(&abase, &aexp, &h, &bexp));
        }),
    );
    report.record(
        "ablation_fixed_base_double_exp_256",
        time_ns(heavy_iters, || {
            black_box(atable.pow_mul(&aexp, &htable, &bexp));
        }),
    );

    // ----- Batched-kernel ablation (`--batch`) ----------------------------
    // Old-vs-new rows for every kernel this round touched, each k-sweep
    // reported as **per-item** nanoseconds so the amortization curve reads
    // directly off the k ∈ {1, 4, 16, 64} columns.
    if args.has("batch") {
        println!("\nBatched-kernel ablation (k in {{1, 4, 16, 64}}):");
        let ks: [usize; 4] = [1, 4, 16, 64];

        // (a) k independent 256-bit exponentiations folded by modular
        // multiply, vs one interleaved Straus multi-exponentiation that
        // shares a single squaring chain across all k bases.
        for &k in &ks {
            let pairs_owned: Vec<(Ubig, Ubig)> = (0..k)
                .map(|_| (random::gen_below(&mut rng, &am), random::gen_exact_bits(&mut rng, 256)))
                .collect();
            let pairs: Vec<(&Ubig, &Ubig)> = pairs_owned.iter().map(|(b, e)| (b, e)).collect();
            report.record(
                &format!("ablation_multiexp_iter_k{k}"),
                (time_ns(heavy_iters, || {
                    let mut acc = Ubig::one();
                    for (b, e) in &pairs_owned {
                        acc = modmul(&acc, &actx.modpow(b, e), &am);
                    }
                    black_box(acc);
                }) / k as u128)
                    .max(1),
            );
            report.record(
                &format!("ablation_multiexp_straus_k{k}"),
                (time_ns(heavy_iters, || {
                    black_box(actx.modpow_multi(&pairs));
                }) / k as u128)
                    .max(1),
            );
        }

        // (b) One Montgomery product at a 4096-bit modulus (64 limbs, above
        // the Karatsuba crossover) with the limb multiply pinned to
        // schoolbook vs the production Karatsuba dispatch.
        let mut wm = random::gen_exact_bits(&mut rng, 4096);
        wm.set_bit(0, true);
        let wctx = MontgomeryContext::new(&wm).expect("odd modulus");
        let wa = wctx.to_mont(&random::gen_below(&mut rng, &wm));
        let wb = wctx.to_mont(&random::gen_below(&mut rng, &wm));
        report.record(
            "ablation_mont_mul_school_4096",
            time_ns(iters, || {
                black_box(wctx.mont_mul_ablation(&wa, &wb, false));
            }),
        );
        report.record(
            "ablation_mont_mul_karatsuba_4096",
            time_ns(iters, || {
                black_box(wctx.mont_mul_ablation(&wa, &wb, true));
            }),
        );

        // (c) CRT recombination on two half-size prime proxies: the
        // generic extended-gcd `crt_pair` (what `decrypt_crt` used to call
        // per decryption) vs the fixed Garner form with a precomputed
        // `p⁻¹ mod q` (what the key now caches).
        let cp = gen_prime(&mut rng, 32);
        let cq = {
            let mut q = gen_prime(&mut rng, 32);
            while q == cp {
                q = gen_prime(&mut rng, 32);
            }
            q
        };
        let mp = random::gen_below(&mut rng, &cp);
        let mq = random::gen_below(&mut rng, &cq);
        let p_inv_q = modinverse(&cp, &cq).expect("distinct primes are coprime");
        report.record(
            "ablation_crt_recombine_gcd",
            time_ns(iters, || {
                black_box(crt_pair(&mp, &cp, &mq, &cq).expect("coprime moduli"));
            }),
        );
        report.record(
            "ablation_crt_recombine_fixed",
            time_ns(iters, || {
                let t = modmul(&modsub(&mq, &mp, &cq), &p_inv_q, &cq);
                black_box(&mp + &(&cp * &t));
            }),
        );

        // (d) Randomizer-pool refill: one full-width `r^n mod n²` per entry
        // vs the batched fixed-base short-exponent kernel. The batched
        // pool's bases are pre-warmed outside the timed region so the rows
        // compare steady-state refill cost, not the one-time table build.
        let seq = Parallelism::sequential();
        let mut pool_iter = RandomizerPool::generate(pk.clone(), 1, &mut rng);
        let mut pool_batched = RandomizerPool::generate(pk.clone(), 1, &mut rng);
        pool_batched.refill_batched(1, &seq, &mut rng);
        for &k in &ks {
            report.record(
                &format!("ablation_pool_refill_k{k}"),
                (time_ns(heavy_iters, || {
                    pool_iter.refill_with(k, &seq, &mut rng);
                }) / k as u128)
                    .max(1),
            );
            report.record(
                &format!("ablation_pool_refill_batched_k{k}"),
                (time_ns(heavy_iters, || {
                    pool_batched.refill_batched(k, &seq, &mut rng);
                }) / k as u128)
                    .max(1),
            );
        }

        // (e) DGK zero test over the same k ciphertexts: a per-item loop
        // vs the batched scratch-reusing CRT test.
        for &k in &ks {
            let zcs: Vec<_> = (0..k).map(|i| dpk.encrypt_u64((i % 3) as u64, &mut rng)).collect();
            report.record(
                &format!("ablation_dgk_zero_loop_k{k}"),
                (time_ns(iters, || {
                    for c in &zcs {
                        black_box(dsk.is_zero(c).expect("well-formed ciphertext"));
                    }
                }) / k as u128)
                    .max(1),
            );
            report.record(
                &format!("ablation_dgk_zero_batch_k{k}"),
                (time_ns(iters, || {
                    black_box(dsk.is_zero_batch(&zcs).expect("well-formed ciphertexts"));
                }) / k as u128)
                    .max(1),
            );
        }
    }

    // ----- Data-parallel thread-scaling sweep -----------------------------
    // `--threads` (default: CONSENSUS_THREADS, else 1) is always a sweep
    // point; the full 1/2/4/8 grid runs in non-smoke mode. Reported
    // speedups are whatever this machine delivers — on a single-core box
    // the parallel path degenerates to sequential chunking and the curve
    // is flat by construction.
    let cli_threads: usize = args.get("threads", Parallelism::from_env().threads());
    let mut sweep: Vec<usize> = if smoke { vec![1] } else { vec![1, 2, 4, 8] };
    if !sweep.contains(&cli_threads) {
        sweep.push(cli_threads);
    }
    sweep.sort_unstable();

    let batch = if smoke { 8usize } else { 32 };
    let batch_values: Vec<Ubig> = (0..batch).map(|_| random::gen_below(&mut rng, &n)).collect();
    let sweep_users = 8usize;
    let sweep_classes = 10usize;
    let e2e_iters: u64 = if smoke { 1 } else { 3 };
    let upload: Vec<Ciphertext> = (0..sweep_classes)
        .map(|_| {
            let v = random::gen_below(&mut rng, &n);
            let rr = random::gen_coprime(&mut rng, &n);
            pk.encrypt_with_randomness(&v, &rr)
        })
        .collect();
    let votes: Vec<Vec<f64>> = (0..sweep_users)
        .map(|u| {
            let mut v = vec![0.0; sweep_classes];
            v[if u < sweep_users * 4 / 5 { 0 } else { 1 + u % (sweep_classes - 1) }] = 1.0;
            v
        })
        .collect();
    let (dgk_x, dgk_y) = (12_345u64, 54_321u64);

    println!(
        "\nThread-scaling sweep (threads ∈ {sweep:?}, |U| = {sweep_users}, K = {sweep_classes}):"
    );
    // One meter across the whole sweep: its counters become the JSON's
    // `fault_counters` object.
    let meter = Meter::new();
    for &t in &sweep {
        let par = Parallelism::new(t);

        report.record_at(
            &format!("par_pool_generate_per_item_t{t}"),
            time_ns(heavy_iters, || {
                black_box(RandomizerPool::generate_with(pk.clone(), pool_items, &par, &mut rng));
            }) / pool_items as u128,
            t,
        );

        // Batch encryption against a pool sized for every timed call, so
        // the sample isolates the parallel encrypt path (no fallbacks).
        let pool =
            RandomizerPool::generate(pk.clone(), batch * (heavy_iters as usize + 2), &mut rng);
        report.record_at(
            &format!("par_encrypt_batch{batch}_t{t}"),
            time_ns(heavy_iters, || {
                black_box(pool.encrypt_batch(&batch_values, &par).expect("pool sized for run"));
            }),
            t,
        );

        let round1 = evaluator_encrypt_bits_par(dgk_x, &dpk, &par, &mut rng)
            .expect("x in comparison domain");
        report.record_at(
            &format!("par_dgk_witnesses_t{t}"),
            time_ns(heavy_iters, || {
                black_box(
                    blinder_build_witnesses_par(dgk_y, &round1, &dpk, &par, &mut rng)
                        .expect("y in comparison domain"),
                );
            }),
            t,
        );

        // Secure-sum aggregation over real channels: 8 users' uploads are
        // re-sent each iteration, then folded per class slot.
        let mut net = Network::new(sweep_users);
        let mut server = net.take_endpoint(PartyId::Server1);
        let mut user_eps: Vec<_> =
            (0..sweep_users).map(|u| net.take_endpoint(PartyId::User(u))).collect();
        report.record_at(
            &format!("par_secure_sum_aggregate_t{t}"),
            time_ns(iters.min(100), || {
                for ep in &mut user_eps {
                    ep.send(PartyId::Server1, Step::SecureSumVotes, &upload).expect("send");
                }
                black_box(
                    aggregate_user_vectors(
                        &mut server,
                        Step::SecureSumVotes,
                        sweep_users,
                        sweep_classes,
                        &pk,
                        &par,
                    )
                    .expect("aggregate"),
                );
            }),
            t,
        );

        // One full Alg. 5 round end-to-end (batched ranking).
        let mut engine_rng = StdRng::seed_from_u64(7);
        let engine = SecureEngine::new(
            SessionConfig::test(sweep_users, sweep_classes),
            ConsensusConfig::paper_default(2.0, 2.0),
            &mut engine_rng,
        )
        .with_ranking(RankingStrategy::Batched)
        .with_parallelism(par);
        report.record_at(
            &format!("par_engine_round_u8_k10_t{t}"),
            time_ns(e2e_iters, || {
                black_box(
                    engine
                        .run_instance(&votes, Arc::clone(&meter), &mut engine_rng)
                        .expect("secure run"),
                );
            }),
            t,
        );
    }

    // ----- Audit overhead (opt-in: --audit) -------------------------------
    // The same full round timed with the covert-security layer off and
    // on (challenge rate 1.0 — every step audited, the worst case), so
    // the pair bounds the per-round cost of commit-and-challenge
    // verification on this machine.
    if args.has("audit") {
        println!("\nAudit overhead (strict policy, every round challenged):");
        let policies: [(&str, Option<AuditPolicy>); 2] =
            [("audit_off", None), ("audit_on", Some(AuditPolicy::strict()))];
        for (name, policy) in policies {
            let mut engine_rng = StdRng::seed_from_u64(7);
            let mut engine = SecureEngine::new(
                SessionConfig::test(sweep_users, sweep_classes),
                ConsensusConfig::paper_default(2.0, 2.0),
                &mut engine_rng,
            )
            .with_ranking(RankingStrategy::Batched)
            .with_parallelism(Parallelism::new(cli_threads));
            if let Some(p) = policy {
                engine = engine.with_audit(p);
            }
            report.record_at(
                &format!("{name}_engine_round_u8_k10_t{cli_threads}"),
                time_ns(e2e_iters, || {
                    black_box(
                        engine
                            .run_instance(&votes, Arc::clone(&meter), &mut engine_rng)
                            .expect("secure run"),
                    );
                }),
                cli_threads,
            );
        }
        let off = report.ns(&format!("audit_off_engine_round_u8_k10_t{cli_threads}"));
        let on = report.ns(&format!("audit_on_engine_round_u8_k10_t{cli_threads}"));
        println!("  audit-on / audit-off: {:.3}x", on as f64 / off as f64);
    }

    // ----- Simulated streaming-ingest scale sweep (opt-in: --scale) -------
    // One template upload is cloned per "arriving" user, so the round's
    // |U| uploads are never materialized at once — exactly the property
    // the streaming server has. Every arrival runs the real ingest path:
    // upload validation, retire-after-fold, chunked per-shard streaming
    // fold, tree combine. The recorded VmHWM across rows is the evidence
    // that live memory tracks shard geometry and K, not |U|.
    if args.has("scale") {
        let scale_classes = 4usize;
        let par = Parallelism::new(cli_threads);
        let template: Vec<Ciphertext> = (0..scale_classes)
            .map(|_| {
                let v = random::gen_below(&mut rng, &n);
                let rr = random::gen_coprime(&mut rng, &n);
                pk.encrypt_with_randomness(&v, &rr)
            })
            .collect();
        let upload_bytes = template.to_bytes().len();
        let grid: Vec<(usize, usize)> = if smoke {
            vec![(2_000, 1), (2_000, 8)]
        } else {
            vec![
                (100_000, 1),
                (100_000, 64),
                (300_000, 1),
                (300_000, 64),
                (1_000_000, 1),
                (1_000_000, 64),
                (1_000_000, 1024),
            ]
        };
        println!(
            "\nStreaming-ingest scale sweep (K = {scale_classes}, chunk = {STREAM_CHUNK}, {} threads):",
            par.threads()
        );
        for (users, shards) in grid {
            let roster: Vec<usize> = (0..users).collect();
            let plan =
                ShardPlan::derive(0xC0FF_EE00 ^ users as u64, &roster, ShardConfig::new(shards));
            let rss_before = proc_status_kb("VmRSS:").unwrap_or(0);
            let mut validator = UploadValidator::new(scale_classes);
            let mut combined = ShardAccumulator::new(&pk, 1, scale_classes);
            let start = Instant::now();
            for shard in plan.shards() {
                let mut acc = ShardAccumulator::new(&pk, 1, scale_classes);
                let mut chunk: Vec<(usize, Vec<Vec<Ciphertext>>)> =
                    Vec::with_capacity(STREAM_CHUNK);
                for &u in shard {
                    let arrival = template.clone();
                    validator
                        .check(
                            &meter,
                            PartyId::User(u),
                            Step::SecureSumVotes,
                            u as u64,
                            &arrival,
                            &pk,
                        )
                        .expect("well-formed template upload");
                    validator.retire(PartyId::User(u));
                    chunk.push((u, vec![arrival]));
                    if chunk.len() == STREAM_CHUNK {
                        acc.fold_chunk(&pk, &par, std::mem::take(&mut chunk));
                    }
                }
                acc.fold_chunk(&pk, &par, chunk);
                combined.merge(&pk, acc);
            }
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(combined.members().len(), users, "every user folded");
            assert_eq!(validator.live_senders(), 0, "per-user state retired after fold");
            black_box(combined.into_sums());
            let vm_hwm = proc_status_kb("VmHWM:").unwrap_or(0);
            let vm_rss = proc_status_kb("VmRSS:").unwrap_or(0);
            // Wire cost per user: the upload itself plus this user's
            // amortized slice of the shard-aggregate flow (one aggregate
            // vector per shard up to the final combine).
            let bytes_per_user =
                upload_bytes as f64 * (1.0 + plan.num_shards() as f64 / users as f64);
            let ups = (users as f64 / secs) as u64;
            report.record_obj(
                &format!("scale_u{users}_s{shards}"),
                format!(
                    "{{\"users\": {users}, \"shards\": {shards}, \"classes\": {scale_classes}, \
                     \"threads\": {}, \"bytes_per_user\": {bytes_per_user:.1}, \
                     \"users_per_sec\": {ups}, \"vm_hwm_kb\": {vm_hwm}, \
                     \"vm_rss_kb\": {vm_rss}, \"rss_delta_kb\": {}}}",
                    par.threads(),
                    vm_rss.saturating_sub(rss_before),
                ),
            );
        }

        // Survivor-reconciliation ablation: the old O(|U|²)
        // `Vec::contains` scan vs the sorted-merge intersection the shard
        // layer uses (both lists ascending by construction).
        let ab_users = if smoke { 2_000usize } else { 10_000 };
        let left: Vec<usize> = (0..ab_users).collect();
        let right: Vec<usize> = (0..ab_users).filter(|u| u % 17 != 3).collect();
        let ab_iters: u64 = if smoke { 1 } else { 3 };
        println!("\nSurvivor-intersection ablation (|U| = {ab_users}):");
        report.record(
            &format!("ablation_survivor_intersect_linear_u{ab_users}"),
            time_ns(ab_iters, || {
                black_box(
                    left.iter().filter(|u| right.contains(u)).copied().collect::<Vec<usize>>(),
                );
            }),
        );
        report.record(
            &format!("ablation_survivor_intersect_sorted_u{ab_users}"),
            time_ns(ab_iters, || {
                black_box(intersect_sorted(&left, &right));
            }),
        );
    }

    // ----- Campaign daemon cost telemetry ---------------------------------
    // A short durable campaign over the secure engine: per-round cost
    // rows (communication split, wall/compute time, epsilon trajectory)
    // plus a summary with rounds/sec — the time series the campaign
    // runtime appends in production, gated by scripts/check_bench.sh.
    {
        let campaign_rounds = if smoke { 4usize } else { 10 };
        let campaign_users = 5usize;
        let campaign_classes = 3usize;
        let dir = std::env::temp_dir().join(format!("bench-campaign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = CampaignConfig::new(
            ConsensusConfig::paper_default(1.5, 1.5).with_min_users(2),
            campaign_users,
            campaign_classes,
            1e6,
            1e-6,
        )
        .with_seed(0xBE7C);
        let mut runner = CampaignRunner::open(&dir, config).expect("open bench campaign");
        let instances: Vec<Vec<Vec<f64>>> = (0..campaign_rounds)
            .map(|i| {
                let mut v = vec![0.0; campaign_classes];
                v[i % campaign_classes] = 1.0;
                vec![v; campaign_users]
            })
            .collect();
        println!("\nCampaign daemon telemetry ({campaign_rounds} rounds, |U| = {campaign_users}):");
        let campaign_meter = Meter::new();
        let start = Instant::now();
        let campaign =
            runner.run(&instances, Arc::clone(&campaign_meter)).expect("bench campaign completes");
        let secs = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(campaign.rounds.len(), campaign_rounds, "every bench instance answers");
        for cost in &campaign.rounds {
            println!(
                "  round {:<3} eps_total {:>8.3}  wall {:>8.2} ms  {:>8} B user  {:>8} B server",
                cost.round, cost.epsilon_total, cost.wall_ms, cost.user_bytes, cost.server_bytes
            );
            report.record_obj(&format!("campaign_round_{}", cost.round), cost.to_json());
        }
        let rps = campaign_rounds as f64 / secs;
        report.record_obj(
            "campaign_summary",
            format!(
                "{{\"rounds\": {campaign_rounds}, \"users\": {campaign_users}, \
                 \"rounds_per_sec\": {rps:.3}, \"epsilon_spent\": {:.6}, \"released\": {}}}",
                campaign.epsilon_spent,
                campaign.released.len(),
            ),
        );
        println!("  {rps:.2} rounds/sec, final epsilon {:.3}", campaign.epsilon_spent);
    }

    // ----- Multi-session reactor throughput -------------------------------
    // Every bench round so far was one blocking round at a time; the
    // reactor multiplexes many. 128 concurrent sessions (16 in smoke)
    // are admitted, fed through the session-frame codec, and driven
    // round-robin to completion; one extra admission past the cap is
    // shed on purpose so the `sessions_rejected` counter in
    // `fault_counters` exercises the overload path deterministically.
    // The row records sessions/sec plus p50/p99 admission→completion
    // latency — the concurrency numbers `scripts/check_bench.sh` gates.
    {
        let n_sessions = if smoke { 16usize } else { 128 };
        let r_users = 5usize;
        let r_classes = 3usize;
        let mut r_rng = StdRng::seed_from_u64(0x5E55);
        let r_engine = Arc::new(SecureEngine::new(
            SessionConfig::test(r_users, r_classes),
            ConsensusConfig::paper_default(1.5, 1.5),
            &mut r_rng,
        ));
        let r_roster: Vec<usize> = (0..r_users).collect();
        let r_votes: Vec<Vec<f64>> = (0..r_users)
            .map(|_| {
                let mut v = vec![0.0; r_classes];
                v[1] = 1.0;
                v
            })
            .collect();
        println!("\nMulti-session reactor ({n_sessions} concurrent sessions, |U| = {r_users}):");
        let mut reactor = Reactor::new(
            ReactorConfig { max_sessions: n_sessions, deadline: Duration::from_secs(600) },
            Arc::clone(&meter),
        );
        let start = Instant::now();
        let mut frame_sets = Vec::with_capacity(n_sessions);
        for i in 0..n_sessions {
            let (machine, frames) = SessionMachine::new(
                i as u64,
                Arc::clone(&r_engine),
                &r_votes,
                &r_roster,
                Arc::clone(&meter),
                &mut r_rng,
            )
            .expect("prepare bench session");
            reactor.admit(machine).expect("admit under the bench cap");
            frame_sets.push(frames);
        }
        let (overflow, _) = SessionMachine::new(
            n_sessions as u64,
            Arc::clone(&r_engine),
            &r_votes,
            &r_roster,
            Arc::clone(&meter),
            &mut r_rng,
        )
        .expect("prepare overflow session");
        assert!(reactor.admit(overflow).is_err(), "the session past the cap must be shed");
        for frames in frame_sets {
            for frame in frames {
                reactor.ingest(frame).expect("admitted bench session");
            }
        }
        reactor.run_until_idle();
        let secs = start.elapsed().as_secs_f64();
        for i in 0..n_sessions {
            match reactor.take_result(i as u64) {
                Some(SessionResult::Done(_)) => {}
                other => panic!("bench session {i} must complete, got {other:?}"),
            }
        }
        let mut lat: Vec<u128> = reactor.latencies().iter().map(|&(_, d)| d.as_nanos()).collect();
        lat.sort_unstable();
        let p50 = lat[lat.len() / 2];
        let p99 = lat[(lat.len() * 99 / 100).min(lat.len() - 1)];
        let sps = n_sessions as f64 / secs;
        report.record_obj(
            "reactor_sessions",
            format!(
                "{{\"sessions\": {n_sessions}, \"users\": {r_users}, \
                 \"sessions_per_sec\": {sps:.3}, \"p50_ns\": {p50}, \"p99_ns\": {p99}}}"
            ),
        );
        println!(
            "  {sps:.2} sessions/sec, p50 {:.2} ms, p99 {:.2} ms",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6
        );
    }

    // ----- Summary + JSON -------------------------------------------------
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    report.record_obj(
        "meta",
        format!(
            "{{\"available_cores\": {cores}, \"smoke\": {smoke}, \"vm_hwm_kb\": {}}}",
            proc_status_kb("VmHWM:").unwrap_or(0)
        ),
    );
    report.faults = meter.fault_stats();
    println!("\nSpeedups vs pre-change baseline (same operands):");
    for step in
        ["paillier_encrypt", "paillier_decrypt", "paillier_mul_plain", "dgk_encrypt", "dgk_is_zero"]
    {
        println!("  {step:<24} {:.2}x", report.speedup(step));
    }
    if sweep.len() > 1 {
        let base = sweep[0];
        println!("\nThread scaling vs {base} thread(s) (this machine):");
        for kind in ["par_pool_generate_per_item", "par_engine_round_u8_k10"] {
            let base_ns = report.ns(&format!("{kind}_t{base}"));
            for &t in &sweep[1..] {
                let ns = report.ns(&format!("{kind}_t{t}"));
                println!("  {kind:<32} t{t}: {:.2}x", base_ns as f64 / ns as f64);
            }
        }
    }

    std::fs::write(&out_path, report.to_json()).expect("write BENCH_protocol.json");
    println!("\nwrote {out_path}");
}
