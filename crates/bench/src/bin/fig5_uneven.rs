//! **Fig. 5(c)(d) — Uneven data distributions.** Aggregator accuracy for
//! the 2-8 / 3-7 / 4-6 divisions across user counts.
//!
//! Usage: `cargo run --release -p benches --bin fig5_uneven -- [--rounds R]`

use benches::{f3, Args, Table, USER_GRID};
use consensus_core::config::ConsensusConfig;
use consensus_core::pipeline::{PartitionKind, SingleLabelExperiment};
use mlsim::model::TrainConfig;
use mlsim::partition::Division;
use mlsim::synthetic::GaussianMixtureSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::capture();
    let rounds: usize = args.get("rounds", 1);
    let seed: u64 = args.get("seed", 6);
    let sigma: f64 = args.get("sigma", 4.0);
    let mut rng = StdRng::seed_from_u64(seed);

    for (name, spec) in [
        ("mnist-like", GaussianMixtureSpec::mnist_like()),
        ("svhn-like", GaussianMixtureSpec::svhn_like()),
    ] {
        println!("Fig. 5(c/d) [{name}]: aggregator accuracy under uneven distributions, σ = {sigma} votes\n");
        let mut table = Table::new(&["users", "even", "2-8", "3-7", "4-6"]);
        for &users in &USER_GRID {
            let mut cells = vec![users.to_string()];
            let kinds = [
                PartitionKind::Even,
                PartitionKind::Uneven(Division::D28),
                PartitionKind::Uneven(Division::D37),
                PartitionKind::Uneven(Division::D46),
            ];
            for kind in kinds {
                let mut acc = 0.0;
                for _ in 0..rounds {
                    let mut exp = SingleLabelExperiment::new(
                        spec,
                        users,
                        ConsensusConfig::paper_default(sigma, sigma),
                    )
                    .with_partition(kind);
                    exp.train_size = args.get("train", 4000);
                    exp.public_size = args.get("public", 500);
                    exp.test_size = args.get("test", 800);
                    exp.train_config =
                        TrainConfig { epochs: args.get("epochs", 25), ..TrainConfig::default() };
                    acc += exp.run(&mut rng).aggregator_accuracy;
                }
                cells.push(f3(acc / rounds as f64));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!(
        "Paper shape: accuracy is higher the closer the distribution is to even \
         (4-6 > 3-7 > 2-8); the loss under unevenness comes from reduced sample \
         retention, not reduced label accuracy (see table3_retention)."
    );
}
