//! End-to-end protocol benches: one full Alg. 5 instance (Table I's
//! "Overall" row, criterion-grade), plus the clear-path decision for the
//! clear-vs-secure ablation of DESIGN.md §5.

use consensus_core::clear::ClearEngine;
use consensus_core::config::ConsensusConfig;
use consensus_core::secure::SecureEngine;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use smc::SessionConfig;
use transport::Meter;

fn onehot(k: usize, classes: usize) -> Vec<f64> {
    let mut v = vec![0.0; classes];
    v[k] = 1.0;
    v
}

fn bench_secure_instance(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let engine = SecureEngine::new(
        SessionConfig::test(4, 4),
        ConsensusConfig::paper_default(1.0, 1.0),
        &mut rng,
    );
    let votes: Vec<Vec<f64>> = (0..4).map(|_| onehot(1, 4)).collect();
    let mut group = c.benchmark_group("secure_protocol");
    group.sample_size(10);
    group.bench_function("full_instance_4users_4classes", |b| {
        b.iter(|| engine.run_instance(&votes, Meter::new(), &mut rng).unwrap())
    });
    group.finish();
}

fn bench_clear_instance(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let engine = ClearEngine::new(ConsensusConfig::paper_default(1.0, 1.0), 100, 10);
    let votes: Vec<Vec<f64>> = (0..100).map(|u| onehot(u % 3, 10)).collect();
    c.bench_function("clear_instance_100users_10classes", |b| {
        b.iter(|| engine.decide(&votes, &mut rng))
    });
}

fn bench_noise_splitting_overhead(c: &mut Criterion) {
    // Ablation: distributed noise (2|U| draws) vs centralized (1 draw).
    let mut rng = StdRng::seed_from_u64(3);
    let dist = dp::DistributedNoise::new(40.0, 100);
    let central = dp::Gaussian::new(0.0, 40.0);
    c.bench_function("noise_distributed_100users", |b| b.iter(|| dist.aggregate(&mut rng)));
    c.bench_function("noise_centralized", |b| b.iter(|| central.sample(&mut rng)));
}

fn bench_argmax_strategies(c: &mut Criterion) {
    // Ablation: pairwise (paper, K(K-1)/2 comparisons) vs tournament
    // (K-1) — measured through the comparison count proxy on the clear
    // values, and end-to-end in the smc tests; here we measure the DGK
    // comparison itself as the unit cost.
    let mut rng = StdRng::seed_from_u64(4);
    let params = dgk::DgkParams::insecure_test();
    let keys = dgk::DgkKeypair::generate(&mut rng, &params);
    let mut group = c.benchmark_group("argmax_unit_cost");
    group.sample_size(10);
    group.bench_function("single_dgk_comparison", |b| {
        b.iter(|| dgk::comparison::compare_gt_plain(123, 456, &keys, &mut rng).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_secure_instance,
    bench_clear_instance,
    bench_noise_splitting_overhead,
    bench_argmax_strategies
);
criterion_main!(benches);
