//! Microbenches of the bigint substrate: multiplication, division and
//! modular exponentiation at the key sizes the cryptosystems use.

use bigint::modular::modpow;
use bigint::montgomery::{FixedBaseTable, MontgomeryContext};
use bigint::random;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("bigint_mul");
    for bits in [64u64, 128, 256, 1024] {
        let a = random::gen_exact_bits(&mut rng, bits);
        let b = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| &a * &b)
        });
    }
    group.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("bigint_divrem");
    for bits in [128u64, 256, 1024] {
        let a = random::gen_exact_bits(&mut rng, bits * 2);
        let b = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| a.div_rem(&b))
        });
    }
    group.finish();
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("bigint_modpow");
    group.sample_size(20);
    for bits in [64u64, 128, 256] {
        let m = random::gen_exact_bits(&mut rng, bits);
        let base = random::gen_below(&mut rng, &m);
        let exp = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| modpow(&base, &exp, &m))
        });
    }
    group.finish();
}

fn bench_modpow_montgomery(c: &mut Criterion) {
    // Ablation (DESIGN.md §5): Montgomery REDC vs division-based modpow.
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("bigint_modpow_montgomery");
    group.sample_size(20);
    for bits in [64u64, 128, 256] {
        let mut m = random::gen_exact_bits(&mut rng, bits);
        m.set_bit(0, true); // Montgomery needs odd moduli
        let ctx = MontgomeryContext::new(&m).expect("odd modulus");
        let base = random::gen_below(&mut rng, &m);
        let exp = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| ctx.modpow(&base, &exp))
        });
    }
    group.finish();
}

fn bench_fixed_base(c: &mut Criterion) {
    // Ablation (DESIGN.md §5): fixed-base windowed table vs plain
    // cached-context modpow for a reused generator.
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("bigint_fixed_base");
    group.sample_size(20);
    for bits in [64u64, 128, 256] {
        let mut m = random::gen_exact_bits(&mut rng, bits);
        m.set_bit(0, true);
        let ctx = Arc::new(MontgomeryContext::new(&m).expect("odd modulus"));
        let base = random::gen_below(&mut rng, &m);
        let table = FixedBaseTable::new(Arc::clone(&ctx), &base, bits);
        let exp = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| table.pow(&exp))
        });
    }
    group.finish();
}

fn bench_double_exp(c: &mut Criterion) {
    // Shamir/Straus simultaneous g^a·h^b vs two independent walks.
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("bigint_double_exp");
    group.sample_size(20);
    for bits in [128u64, 256] {
        let mut m = random::gen_exact_bits(&mut rng, bits);
        m.set_bit(0, true);
        let ctx = MontgomeryContext::new(&m).expect("odd modulus");
        let g = random::gen_below(&mut rng, &m);
        let h = random::gen_below(&mut rng, &m);
        let a = random::gen_exact_bits(&mut rng, bits);
        let b = random::gen_exact_bits(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| ctx.modpow2(&g, &a, &h, &b))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_divrem,
    bench_modpow,
    bench_modpow_montgomery,
    bench_fixed_base,
    bench_double_exp
);
criterion_main!(benches);
