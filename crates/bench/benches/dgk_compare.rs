//! Microbenches of the DGK cryptosystem and the comparison-bit-width
//! ablation from DESIGN.md §5 (ℓ drives the cost of steps 4/5/8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgk::{comparison, DgkKeypair, DgkParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_dgk_primitives(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let keys = DgkKeypair::generate(&mut rng, &DgkParams::insecure_test());
    let ct = keys.public_key().encrypt_u64(5, &mut rng);
    c.bench_function("dgk_encrypt", |b| b.iter(|| keys.public_key().encrypt_u64(7, &mut rng)));
    c.bench_function("dgk_zero_test", |b| b.iter(|| keys.private_key().is_zero(&ct).unwrap()));
    c.bench_function("dgk_table_decrypt", |b| b.iter(|| keys.private_key().decrypt(&ct).unwrap()));
}

fn bench_compare_bit_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgk_compare_gt");
    group.sample_size(10);
    for ell in [8u32, 16, 24, 40] {
        let mut rng = StdRng::seed_from_u64(ell as u64);
        let params = DgkParams { modulus_bits: 192, subgroup_bits: 24, compare_bits: ell };
        let keys = DgkKeypair::generate(&mut rng, &params);
        group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, _| {
            b.iter(|| {
                let a = rng.gen_range(0..(1u64 << ell));
                let bb = rng.gen_range(0..(1u64 << ell));
                comparison::compare_gt_plain(a, bb, &keys, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dgk_primitives, bench_compare_bit_widths);
criterion_main!(benches);
