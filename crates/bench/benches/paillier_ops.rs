//! Microbenches of the Paillier cryptosystem, including the key-size
//! ablation called out in DESIGN.md §5 (64-bit paper scale vs larger).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_encrypt");
    for bits in [64u64, 128, 256, 512] {
        let mut rng = StdRng::seed_from_u64(bits);
        let kp = Keypair::generate(&mut rng, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| kp.public_key().encrypt_u64(12345, &mut rng))
        });
    }
    group.finish();
}

fn bench_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier_decrypt");
    for bits in [64u64, 256] {
        let mut rng = StdRng::seed_from_u64(bits);
        let kp = Keypair::generate(&mut rng, bits);
        let ct = kp.public_key().encrypt_u64(9876, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| kp.private_key().decrypt(&ct).unwrap())
        });
    }
    group.finish();
}

fn bench_decrypt_crt(c: &mut Criterion) {
    // Ablation: CRT decryption vs direct λ-exponent decryption.
    let mut group = c.benchmark_group("paillier_decrypt_crt");
    for bits in [64u64, 256] {
        let mut rng = StdRng::seed_from_u64(bits);
        let kp = Keypair::generate(&mut rng, bits);
        let ct = kp.public_key().encrypt_u64(9876, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| kp.private_key().decrypt_crt(&ct).unwrap())
        });
    }
    group.finish();
}

fn bench_pooled_encryption(c: &mut Criterion) {
    // Ablation (§VI-A): precomputed randomizer pool vs full encryption.
    // Pool randomizers are single-use, so each timing iteration draws from
    // a fresh batch built outside the measured region.
    use criterion::BatchSize;
    use paillier::RandomizerPool;
    let mut rng = StdRng::seed_from_u64(9);
    let kp = Keypair::generate(&mut rng, 64);
    let pk = kp.public_key().clone();
    c.bench_function("paillier_encrypt_pooled_64", |b| {
        b.iter_batched(
            || RandomizerPool::generate(pk.clone(), 16, &mut StdRng::seed_from_u64(10)),
            |pool| {
                for _ in 0..16 {
                    pool.encrypt(&bigint::Ubig::from(12345u64)).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_homomorphic_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(64);
    let kp = Keypair::generate(&mut rng, 64);
    let pk = kp.public_key();
    let c1 = pk.encrypt_u64(11, &mut rng);
    let c2 = pk.encrypt_u64(22, &mut rng);
    c.bench_function("paillier_homomorphic_add_64", |b| b.iter(|| pk.add(&c1, &c2)));
    c.bench_function("paillier_scalar_mul_64", |b| {
        b.iter(|| pk.mul_plain(&c1, &bigint::Ubig::from(12345u64)))
    });
}

criterion_group!(
    benches,
    bench_encrypt,
    bench_decrypt,
    bench_decrypt_crt,
    bench_pooled_encryption,
    bench_homomorphic_ops
);
criterion_main!(benches);
