//! ML substrate for the private-consensus experiments.
//!
//! The paper evaluates on MNIST, SVHN and CelebA with Inception-V3
//! teachers. Neither the datasets nor a GPU training stack is available
//! offline, and the consensus protocol consumes nothing but the teachers'
//! *vote vectors* — so this crate provides the closest synthetic
//! equivalent (see DESIGN.md §4):
//!
//! * [`synthetic`] — controllable dataset generators: a Gaussian-mixture
//!   classification family ("mnist-like" easy margins, "svhn-like" noisy
//!   margins) and a sparse binary-attribute family ("celeba-like");
//! * [`partition`] — the paper's data distributions: even, and the
//!   2-8 / 3-7 / 4-6 divisions where x·10% of the data is spread over
//!   (10−x)·10% of the users;
//! * [`model`] — softmax regression and one-vs-all logistic banks trained
//!   by SGD: small, fast, and exhibiting the property every figure relies
//!   on — accuracy that falls as the local shard shrinks;
//! * [`teacher`] — ensemble training over a partition, with the
//!   majority/minority accuracy split of Fig. 2;
//! * [`student`] — the aggregator's semi-supervised step: train on
//!   consensus-labeled public instances, evaluate on held-out test data.
//!
//! # Examples
//!
//! ```
//! use mlsim::synthetic::GaussianMixtureSpec;
//! use mlsim::model::SoftmaxRegression;
//!
//! let mut rng = rand::thread_rng();
//! let spec = GaussianMixtureSpec::mnist_like();
//! let train = spec.generate(500, &mut rng);
//! let test = spec.generate(200, &mut rng);
//! let model = SoftmaxRegression::train(&train, &Default::default(), &mut rng);
//! assert!(model.accuracy(&test) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod knn;
pub mod metrics;
pub mod model;
pub mod partition;
pub mod student;
pub mod synthetic;
pub mod teacher;

pub use dataset::{Dataset, MultiLabelDataset};
pub use knn::{Classifier, GenericEnsemble, KnnClassifier};
pub use model::{LogisticBank, SoftmaxRegression, TrainConfig};
pub use partition::Division;
pub use teacher::TeacherEnsemble;
