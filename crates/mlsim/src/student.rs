//! The aggregator's semi-supervised step: training the student on
//! consensus-labeled public instances.

use rand::Rng;

use crate::dataset::{Dataset, MultiLabelDataset};
use crate::model::{LogisticBank, SoftmaxRegression, TrainConfig};

/// Trains the aggregator (student) model on the `(instance, label)` pairs
/// the consensus protocol released.
///
/// Returns `None` when no labels were retained (e.g. every query was
/// rejected at the threshold) — the aggregator then has nothing to learn
/// from, which the experiment harness reports as zero accuracy.
pub fn train_student<R: Rng + ?Sized>(
    features: &[Vec<f64>],
    labels: &[usize],
    num_classes: usize,
    config: &TrainConfig,
    rng: &mut R,
) -> Option<SoftmaxRegression> {
    assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
    if features.is_empty() {
        return None;
    }
    let data = Dataset::new(features.to_vec(), labels.to_vec(), num_classes);
    Some(SoftmaxRegression::train(&data, config, rng))
}

/// Multi-label variant: trains the student's logistic bank on released
/// attribute vectors.
pub fn train_student_multilabel<R: Rng + ?Sized>(
    features: &[Vec<f64>],
    attributes: &[Vec<bool>],
    num_attributes: usize,
    config: &TrainConfig,
    rng: &mut R,
) -> Option<LogisticBank> {
    assert_eq!(features.len(), attributes.len(), "features/attributes length mismatch");
    if features.is_empty() {
        return None;
    }
    let data = MultiLabelDataset::new(features.to_vec(), attributes.to_vec(), num_attributes);
    Some(LogisticBank::train(&data, config, rng))
}

/// Outcome metrics of one labeling campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingStats {
    /// Number of queries issued.
    pub queried: usize,
    /// Number of labels released (threshold passed).
    pub retained: usize,
    /// Fraction of released labels that match ground truth.
    pub label_accuracy: f64,
}

impl LabelingStats {
    /// Builds stats from a list of `(released_label, true_label)` pairs
    /// and a total query count.
    ///
    /// # Panics
    ///
    /// Panics if more labels were released than queried.
    pub fn from_released(released: &[(usize, usize)], queried: usize) -> LabelingStats {
        assert!(released.len() <= queried, "released exceeds queried");
        let correct = released.iter().filter(|(got, want)| got == want).count();
        LabelingStats {
            queried,
            retained: released.len(),
            label_accuracy: if released.is_empty() {
                0.0
            } else {
                correct as f64 / released.len() as f64
            },
        }
    }

    /// Fraction of queries whose labels were retained.
    pub fn retention(&self) -> f64 {
        if self.queried == 0 {
            0.0
        } else {
            self.retained as f64 / self.queried as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn student_learns_from_correct_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = GaussianMixtureSpec::mnist_like();
        let public = spec.generate(800, &mut rng);
        let test = spec.generate(300, &mut rng);
        let student =
            train_student(&public.features, &public.labels, 10, &TrainConfig::default(), &mut rng)
                .expect("labels present");
        assert!(student.accuracy(&test) > 0.8);
    }

    #[test]
    fn noisy_labels_hurt_the_student() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = GaussianMixtureSpec::mnist_like();
        let public = spec.generate(800, &mut rng);
        let test = spec.generate(300, &mut rng);
        // Corrupt 40% of labels.
        let noisy: Vec<usize> = public
            .labels
            .iter()
            .map(|&l| if rng.gen_bool(0.4) { rng.gen_range(0..10) } else { l })
            .collect();
        let clean =
            train_student(&public.features, &public.labels, 10, &TrainConfig::default(), &mut rng)
                .unwrap()
                .accuracy(&test);
        let corrupted =
            train_student(&public.features, &noisy, 10, &TrainConfig::default(), &mut rng)
                .unwrap()
                .accuracy(&test);
        assert!(clean > corrupted, "clean {clean} vs corrupted {corrupted}");
    }

    #[test]
    fn empty_release_gives_no_student() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(train_student(&[], &[], 10, &TrainConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn labeling_stats_arithmetic() {
        let released = [(1usize, 1usize), (2, 2), (3, 0), (0, 0)];
        let stats = LabelingStats::from_released(&released, 10);
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.queried, 10);
        assert_eq!(stats.retention(), 0.4);
        assert_eq!(stats.label_accuracy, 0.75);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LabelingStats::from_released(&[], 5);
        assert_eq!(stats.label_accuracy, 0.0);
        assert_eq!(stats.retention(), 0.0);
        let none = LabelingStats::from_released(&[], 0);
        assert_eq!(none.retention(), 0.0);
    }
}
