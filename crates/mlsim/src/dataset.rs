//! Dataset containers.

use serde::{Deserialize, Serialize};

/// A single-label classification dataset: dense feature vectors and one
/// class label per instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, row per instance.
    pub features: Vec<Vec<f64>>,
    /// Class label per instance, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes `K`.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if rows/labels disagree in length, rows have uneven widths,
    /// or a label is out of range.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        if let Some(first) = features.first() {
            let d = first.len();
            assert!(features.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        Dataset { features, labels, num_classes }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The subset at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits off the first `n` instances as one dataset and the rest as
    /// another.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split beyond dataset size");
        let head = Dataset {
            features: self.features[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        };
        let tail = Dataset {
            features: self.features[n..].to_vec(),
            labels: self.labels[n..].to_vec(),
            num_classes: self.num_classes,
        };
        (head, tail)
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

/// A multi-label dataset: each instance carries a vector of binary
/// attributes (the CelebA-like family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLabelDataset {
    /// Feature matrix, row per instance.
    pub features: Vec<Vec<f64>>,
    /// Binary attribute vector per instance.
    pub attributes: Vec<Vec<bool>>,
    /// Number of attributes.
    pub num_attributes: usize,
}

impl MultiLabelDataset {
    /// Creates a multi-label dataset, validating shape consistency.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows or mismatched lengths.
    pub fn new(features: Vec<Vec<f64>>, attributes: Vec<Vec<bool>>, num_attributes: usize) -> Self {
        assert_eq!(features.len(), attributes.len(), "features/attributes length mismatch");
        assert!(
            attributes.iter().all(|a| a.len() == num_attributes),
            "attribute rows must have num_attributes entries"
        );
        MultiLabelDataset { features, attributes, num_attributes }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The subset at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> MultiLabelDataset {
        MultiLabelDataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            attributes: indices.iter().map(|&i| self.attributes[i].clone()).collect(),
            num_attributes: self.num_attributes,
        }
    }

    /// Splits off the first `n` instances.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    pub fn split_at(&self, n: usize) -> (MultiLabelDataset, MultiLabelDataset) {
        assert!(n <= self.len(), "split beyond dataset size");
        (
            MultiLabelDataset {
                features: self.features[..n].to_vec(),
                attributes: self.attributes[..n].to_vec(),
                num_attributes: self.num_attributes,
            },
            MultiLabelDataset {
                features: self.features[n..].to_vec(),
                attributes: self.attributes[n..].to_vec(),
                num_attributes: self.num_attributes,
            },
        )
    }

    /// Fraction of positive attribute values across the dataset
    /// (CelebA-like data is *sparse*: this should be well below 0.5).
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let positives: usize =
            self.attributes.iter().map(|a| a.iter().filter(|&&b| b).count()).sum();
        positives as f64 / (self.len() * self.num_attributes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5], vec![2.0, 2.0]],
            vec![0, 1, 0, 2],
            3,
        )
    }

    #[test]
    fn shape_accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.class_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = tiny();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.labels, vec![2, 0]);
        assert_eq!(s.features[0], vec![2.0, 2.0]);
    }

    #[test]
    fn split_at_partitions() {
        let d = tiny();
        let (head, tail) = d.split_at(1);
        assert_eq!(head.len(), 1);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail.labels, vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        let _ = Dataset::new(vec![vec![0.0]], vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![0.0], vec![0.0, 1.0]], vec![0, 0], 1);
    }

    #[test]
    fn multilabel_positive_rate() {
        let d = MultiLabelDataset::new(
            vec![vec![0.0]; 2],
            vec![vec![true, false, false, false], vec![false, false, true, false]],
            4,
        );
        assert_eq!(d.positive_rate(), 0.25);
        assert_eq!(d.len(), 2);
        let (h, t) = d.split_at(1);
        assert_eq!(h.len(), 1);
        assert!(t.attributes[0][2]);
    }
}
