//! Synthetic dataset generators.
//!
//! Substitutes for the paper's MNIST/SVHN/CelebA (see DESIGN.md §4). The
//! knobs that matter for the consensus experiments are the *classification
//! margin* (how fast teacher accuracy falls with shrinking shards) and,
//! for the multi-label family, *attribute sparsity* (which drives the
//! CelebA consensus-loss effect of Fig. 6).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, MultiLabelDataset};

/// Draws one standard normal via Box–Muller (self-contained so `mlsim`
/// does not depend on the `dp` crate).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Spec for a Gaussian-mixture classification dataset: one isotropic
/// Gaussian cluster per class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixtureSpec {
    /// Number of classes `K`.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Norm of each class center (larger = easier).
    pub center_scale: f64,
    /// Within-class standard deviation (larger = harder).
    pub cluster_spread: f64,
    /// Probability a training label is flipped to a random class.
    pub label_noise: f64,
    /// Seed that fixes the class centers, so independently generated
    /// train/test sets share the same geometry.
    pub center_seed: u64,
}

impl GaussianMixtureSpec {
    /// Easy-margin 10-class problem — the MNIST surrogate.
    pub fn mnist_like() -> Self {
        GaussianMixtureSpec {
            num_classes: 10,
            dim: 24,
            center_scale: 3.9,
            cluster_spread: 1.0,
            label_noise: 0.0,
            center_seed: 0x6d6e_6973, // "mnis"
        }
    }

    /// Noisy-margin 10-class problem — the SVHN surrogate (lower teacher
    /// accuracy, larger inter-teacher disagreement).
    pub fn svhn_like() -> Self {
        GaussianMixtureSpec {
            num_classes: 10,
            dim: 24,
            center_scale: 2.6,
            cluster_spread: 1.25,
            label_noise: 0.03,
            center_seed: 0x7376_686e, // "svhn"
        }
    }

    /// The fixed class centers implied by `center_seed`.
    pub fn centers(&self) -> Vec<Vec<f64>> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.center_seed);
        (0..self.num_classes)
            .map(|_| {
                let raw: Vec<f64> = (0..self.dim).map(|_| standard_normal(&mut rng)).collect();
                let norm = raw.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                raw.iter().map(|x| x / norm * self.center_scale).collect()
            })
            .collect()
    }

    /// Generates `n` labeled instances.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero classes or dimensions.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        assert!(self.num_classes > 0 && self.dim > 0, "degenerate spec");
        let centers = self.centers();
        let mut features = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let class = rng.gen_range(0..self.num_classes);
            let x: Vec<f64> = centers[class]
                .iter()
                .map(|&c| c + self.cluster_spread * standard_normal(rng))
                .collect();
            let label = if self.label_noise > 0.0 && rng.gen_bool(self.label_noise) {
                rng.gen_range(0..self.num_classes)
            } else {
                class
            };
            features.push(x);
            labels.push(label);
        }
        Dataset::new(features, labels, self.num_classes)
    }
}

/// Spec for a sparse binary-attribute dataset — the CelebA surrogate.
///
/// Instances are generated from a latent vector; each attribute is a
/// noisy linear threshold of the latent, with the threshold placed so
/// positives are rare ([`MultiLabelDataset::positive_rate`] ≈
/// `positive_rate`). Features are a noisy linear expansion of the latent,
/// so attributes are learnable but not trivially.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseAttributeSpec {
    /// Number of binary attributes.
    pub num_attributes: usize,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Observed feature dimensionality.
    pub feature_dim: usize,
    /// Target marginal positive rate per attribute.
    pub positive_rate: f64,
    /// Observation noise on features.
    pub feature_noise: f64,
    /// Seed fixing the attribute weights and feature map.
    pub structure_seed: u64,
}

impl SparseAttributeSpec {
    /// 40 sparse attributes — the CelebA surrogate.
    pub fn celeba_like() -> Self {
        SparseAttributeSpec {
            num_attributes: 40,
            latent_dim: 12,
            feature_dim: 24,
            positive_rate: 0.15,
            feature_noise: 0.45,
            structure_seed: 0x6365_6c65, // "cele"
        }
    }

    /// The fixed attribute weight matrix and feature map.
    fn structure(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.structure_seed);
        let attr_weights: Vec<Vec<f64>> = (0..self.num_attributes)
            .map(|_| (0..self.latent_dim).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        let feature_map: Vec<Vec<f64>> = (0..self.feature_dim)
            .map(|_| (0..self.latent_dim).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        (attr_weights, feature_map)
    }

    /// Generates `n` instances.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec or `positive_rate` outside `(0, 1)`.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> MultiLabelDataset {
        assert!(self.num_attributes > 0 && self.latent_dim > 0 && self.feature_dim > 0);
        assert!(self.positive_rate > 0.0 && self.positive_rate < 1.0);
        let (attr_weights, feature_map) = self.structure();
        // A linear score w·z with ‖w‖²·Var(z) has std ≈ sqrt(latent_dim);
        // place the threshold at the (1−p) quantile of that Gaussian.
        let score_std = (self.latent_dim as f64).sqrt();
        let threshold = score_std * inverse_normal_cdf(1.0 - self.positive_rate);

        let mut features = Vec::with_capacity(n);
        let mut attributes = Vec::with_capacity(n);
        for _ in 0..n {
            let z: Vec<f64> = (0..self.latent_dim).map(|_| standard_normal(rng)).collect();
            let attrs: Vec<bool> = attr_weights
                .iter()
                .map(|w| w.iter().zip(&z).map(|(a, b)| a * b).sum::<f64>() > threshold)
                .collect();
            let x: Vec<f64> = feature_map
                .iter()
                .map(|row| {
                    row.iter().zip(&z).map(|(a, b)| a * b).sum::<f64>()
                        + self.feature_noise * standard_normal(rng)
                })
                .collect();
            features.push(x);
            attributes.push(attrs);
        }
        MultiLabelDataset::new(features, attributes, self.num_attributes)
    }
}

/// Acklam-style rational approximation of the standard normal inverse
/// CDF, accurate to ~1e-9 — good enough for placing sparsity thresholds.
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile outside (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = GaussianMixtureSpec::mnist_like().generate(100, &mut rng);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 24);
        assert_eq!(d.num_classes, 10);
    }

    #[test]
    fn centers_are_deterministic_per_spec() {
        let a = GaussianMixtureSpec::mnist_like().centers();
        let b = GaussianMixtureSpec::mnist_like().centers();
        assert_eq!(a, b);
        let c = GaussianMixtureSpec::svhn_like().centers();
        assert_ne!(a, c, "different seeds give different geometry");
    }

    #[test]
    fn centers_have_requested_norm() {
        let spec = GaussianMixtureSpec::mnist_like();
        for c in spec.centers() {
            let norm = c.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - spec.center_scale).abs() < 1e-9);
        }
    }

    #[test]
    fn all_classes_appear() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = GaussianMixtureSpec::mnist_like().generate(2000, &mut rng);
        assert!(d.class_counts().iter().all(|&c| c > 100), "{:?}", d.class_counts());
    }

    #[test]
    fn svhn_is_harder_than_mnist() {
        // Bayes-style 1-NN-to-center accuracy must be lower for the
        // svhn-like spec.
        let rng = StdRng::seed_from_u64(3);
        let acc = |spec: GaussianMixtureSpec| {
            let d = spec.generate(2000, &mut rng.clone());
            let centers = spec.centers();
            let correct = d
                .features
                .iter()
                .zip(&d.labels)
                .filter(|(x, &l)| {
                    let nearest = centers
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            let da: f64 =
                                a.iter().zip(x.iter()).map(|(c, v)| (c - v) * (c - v)).sum();
                            let db: f64 =
                                b.iter().zip(x.iter()).map(|(c, v)| (c - v) * (c - v)).sum();
                            da.partial_cmp(&db).expect("finite")
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    nearest == l
                })
                .count();
            correct as f64 / d.len() as f64
        };
        let mnist_acc = acc(GaussianMixtureSpec::mnist_like());
        let svhn_acc = acc(GaussianMixtureSpec::svhn_like());
        assert!(mnist_acc > svhn_acc + 0.05, "mnist {mnist_acc} vs svhn {svhn_acc}");
        assert!(mnist_acc > 0.9, "mnist surrogate should be easy: {mnist_acc}");
    }

    #[test]
    fn celeba_attributes_are_sparse() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SparseAttributeSpec::celeba_like().generate(3000, &mut rng);
        let rate = d.positive_rate();
        assert!((rate - 0.15).abs() < 0.03, "positive rate {rate}");
        assert_eq!(d.num_attributes, 40);
        assert_eq!(d.dim(), 24);
    }

    #[test]
    fn inverse_cdf_sane() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!(inverse_normal_cdf(0.999) > 3.0);
    }

    #[test]
    fn attributes_correlate_with_features() {
        // A linear probe on the features should beat chance on attribute 0.
        let mut rng = StdRng::seed_from_u64(5);
        let spec = SparseAttributeSpec::celeba_like();
        let d = spec.generate(4000, &mut rng);
        // Simple centroid classifier: mean feature of positives vs negatives.
        let dim = d.dim();
        let mut pos = vec![0.0; dim];
        let mut neg = vec![0.0; dim];
        let (mut np, mut nn) = (0usize, 0usize);
        for (x, a) in d.features.iter().zip(&d.attributes) {
            let (acc, n) = if a[0] { (&mut pos, &mut np) } else { (&mut neg, &mut nn) };
            for (s, v) in acc.iter_mut().zip(x) {
                *s += v;
            }
            *n += 1;
        }
        assert!(np > 10 && nn > 10);
        for v in pos.iter_mut() {
            *v /= np as f64;
        }
        for v in neg.iter_mut() {
            *v /= nn as f64;
        }
        let sep: f64 = pos.iter().zip(&neg).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(sep > 0.3, "attribute signal too weak: {sep}");
    }
}
