//! Teacher ensembles: one locally trained model per user.

use rand::Rng;

use crate::dataset::{Dataset, MultiLabelDataset};
use crate::model::{LogisticBank, SoftmaxRegression, TrainConfig};
use crate::partition::Partition;

/// Per-group accuracy summary for Fig. 2's majority/minority split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserAccuracy {
    /// Mean accuracy over all users.
    pub mean: f64,
    /// Mean accuracy over the majority group (small shards); `None` for
    /// even splits.
    pub majority: Option<f64>,
    /// Mean accuracy over the minority group (large shards); `None` for
    /// even splits.
    pub minority: Option<f64>,
}

/// A single-label teacher ensemble: one softmax-regression model per
/// user, trained on that user's shard.
#[derive(Debug, Clone)]
pub struct TeacherEnsemble {
    teachers: Vec<SoftmaxRegression>,
}

impl TeacherEnsemble {
    /// Trains one teacher per user over `partition` of `data`.
    ///
    /// Users whose shard is empty still get a model trained on a single
    /// uniform dummy example (they will vote near-randomly, as a
    /// data-starved user would).
    pub fn train<R: Rng + ?Sized>(
        data: &Dataset,
        partition: &Partition,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Self {
        let teachers = (0..partition.num_users())
            .map(|u| {
                let shard = partition.shard(data, u);
                if shard.is_empty() {
                    let dummy =
                        Dataset::new(vec![vec![0.0; data.dim()]], vec![0], data.num_classes);
                    SoftmaxRegression::train(&dummy, config, rng)
                } else {
                    SoftmaxRegression::train(&shard, config, rng)
                }
            })
            .collect();
        TeacherEnsemble { teachers }
    }

    /// Number of teachers.
    pub fn len(&self) -> usize {
        self.teachers.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.teachers.is_empty()
    }

    /// Borrow the individual teachers.
    pub fn teachers(&self) -> &[SoftmaxRegression] {
        &self.teachers
    }

    /// Every teacher's one-hot vote for one instance.
    pub fn votes_onehot(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.teachers.iter().map(|t| t.predict_onehot(x)).collect()
    }

    /// Every teacher's softmax vote for one instance.
    pub fn votes_softmax(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.teachers.iter().map(|t| t.predict_proba(x)).collect()
    }

    /// Plain vote-count aggregation (no privacy): sums one-hot votes.
    pub fn vote_counts(&self, x: &[f64]) -> Vec<f64> {
        let mut counts = vec![0.0; self.teachers.first().map_or(0, |t| t.num_classes())];
        for t in &self.teachers {
            counts[t.predict(x)] += 1.0;
        }
        counts
    }

    /// Per-user accuracy on a common test set, with majority/minority
    /// group means when the partition is uneven.
    pub fn user_accuracy(&self, test: &Dataset, partition: &Partition) -> UserAccuracy {
        let accs: Vec<f64> = self.teachers.iter().map(|t| t.accuracy(test)).collect();
        let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
        let group_mean = |users: &[usize]| {
            if users.is_empty() {
                None
            } else {
                Some(users.iter().map(|&u| accs[u]).sum::<f64>() / users.len() as f64)
            }
        };
        UserAccuracy {
            mean,
            majority: group_mean(&partition.majority_users),
            minority: group_mean(&partition.minority_users),
        }
    }
}

/// A multi-label teacher ensemble (CelebA-like): one logistic bank per
/// user.
#[derive(Debug, Clone)]
pub struct MultiLabelEnsemble {
    teachers: Vec<LogisticBank>,
}

impl MultiLabelEnsemble {
    /// Trains one logistic bank per user over `partition` of `data`.
    pub fn train<R: Rng + ?Sized>(
        data: &MultiLabelDataset,
        partition: &Partition,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Self {
        let teachers = (0..partition.num_users())
            .map(|u| {
                let shard = partition.shard_multilabel(data, u);
                if shard.is_empty() {
                    let dummy = MultiLabelDataset::new(
                        vec![vec![0.0; data.dim()]],
                        vec![vec![false; data.num_attributes]],
                        data.num_attributes,
                    );
                    LogisticBank::train(&dummy, config, rng)
                } else {
                    LogisticBank::train(&shard, config, rng)
                }
            })
            .collect();
        MultiLabelEnsemble { teachers }
    }

    /// Number of teachers.
    pub fn len(&self) -> usize {
        self.teachers.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.teachers.is_empty()
    }

    /// Borrow the individual teachers.
    pub fn teachers(&self) -> &[LogisticBank] {
        &self.teachers
    }

    /// Per-attribute positive-vote counts for one instance: entry `j` is
    /// the number of teachers predicting attribute `j` positive.
    pub fn attribute_vote_counts(&self, x: &[f64]) -> Vec<f64> {
        let m = self.teachers.first().map_or(0, |t| t.num_attributes());
        let mut counts = vec![0.0; m];
        for t in &self.teachers {
            for (j, bit) in t.predict(x).iter().enumerate() {
                if *bit {
                    counts[j] += 1.0;
                }
            }
        }
        counts
    }

    /// Mean per-user, per-attribute accuracy on a test set.
    pub fn user_accuracy(&self, test: &MultiLabelDataset, partition: &Partition) -> UserAccuracy {
        let accs: Vec<f64> = self.teachers.iter().map(|t| t.accuracy(test)).collect();
        let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
        let group_mean = |users: &[usize]| {
            if users.is_empty() {
                None
            } else {
                Some(users.iter().map(|&u| accs[u]).sum::<f64>() / users.len() as f64)
            }
        };
        UserAccuracy {
            mean,
            majority: group_mean(&partition.majority_users),
            minority: group_mean(&partition.minority_users),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{division_split, even_split, Division};
    use crate::synthetic::{GaussianMixtureSpec, SparseAttributeSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ensemble_votes_have_right_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = GaussianMixtureSpec::mnist_like().generate(300, &mut rng);
        let p = even_split(data.len(), 5, &mut rng);
        let ensemble = TeacherEnsemble::train(&data, &p, &TrainConfig::default(), &mut rng);
        assert_eq!(ensemble.len(), 5);
        let votes = ensemble.votes_onehot(&data.features[0]);
        assert_eq!(votes.len(), 5);
        assert!(votes.iter().all(|v| v.len() == 10 && v.iter().sum::<f64>() == 1.0));
        let counts = ensemble.vote_counts(&data.features[0]);
        assert_eq!(counts.iter().sum::<f64>(), 5.0);
    }

    #[test]
    fn majority_group_is_less_accurate() {
        // The Fig. 2(b-d) phenomenon: small-shard users underperform.
        let mut rng = StdRng::seed_from_u64(2);
        let spec = GaussianMixtureSpec::svhn_like();
        let data = spec.generate(2000, &mut rng);
        let test = spec.generate(500, &mut rng);
        let p = division_split(data.len(), 10, Division::D28, &mut rng);
        let ensemble = TeacherEnsemble::train(&data, &p, &TrainConfig::default(), &mut rng);
        let acc = ensemble.user_accuracy(&test, &p);
        let majority = acc.majority.expect("uneven split");
        let minority = acc.minority.expect("uneven split");
        assert!(
            minority > majority + 0.03,
            "minority (big shards) {minority} must beat majority {majority}"
        );
    }

    #[test]
    fn mean_accuracy_falls_with_more_users() {
        // Fig. 2(a): fixed data, more users → smaller shards → lower mean.
        let mut rng = StdRng::seed_from_u64(3);
        let spec = GaussianMixtureSpec::svhn_like();
        let data = spec.generate(1200, &mut rng);
        let test = spec.generate(400, &mut rng);
        let acc_at = |users: usize, rng: &mut StdRng| {
            let p = even_split(data.len(), users, rng);
            TeacherEnsemble::train(&data, &p, &TrainConfig::default(), rng)
                .user_accuracy(&test, &p)
                .mean
        };
        let few = acc_at(4, &mut rng);
        let many = acc_at(60, &mut rng);
        assert!(few > many + 0.02, "4 users {few} vs 60 users {many}");
    }

    #[test]
    fn even_split_has_no_group_stats() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = GaussianMixtureSpec::mnist_like().generate(200, &mut rng);
        let test = GaussianMixtureSpec::mnist_like().generate(100, &mut rng);
        let p = even_split(data.len(), 4, &mut rng);
        let acc = TeacherEnsemble::train(&data, &p, &TrainConfig::default(), &mut rng)
            .user_accuracy(&test, &p);
        assert!(acc.majority.is_none() && acc.minority.is_none());
        assert!(acc.mean > 0.0);
    }

    #[test]
    fn multilabel_ensemble_counts_votes() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = SparseAttributeSpec::celeba_like();
        let data = spec.generate(400, &mut rng);
        let p = even_split(data.len(), 4, &mut rng);
        let ensemble = MultiLabelEnsemble::train(&data, &p, &TrainConfig::default(), &mut rng);
        assert_eq!(ensemble.len(), 4);
        let counts = ensemble.attribute_vote_counts(&data.features[0]);
        assert_eq!(counts.len(), 40);
        assert!(counts.iter().all(|&c| (0.0..=4.0).contains(&c)));
    }
}
