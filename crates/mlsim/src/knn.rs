//! A second teacher family: k-nearest-neighbour classification, behind
//! the [`Classifier`] trait.
//!
//! The consensus protocol is agnostic to how teachers form their votes;
//! the trait makes that explicit, and k-NN provides a hyperparameter-free
//! sanity teacher — useful for checking that pipeline effects (retention,
//! consensus rates) are properties of the *vote distribution*, not of the
//! SGD training loop.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::model::SoftmaxRegression;

/// Anything that can vote on an instance.
///
/// Implemented by [`SoftmaxRegression`] and [`KnnClassifier`]; ensemble
/// helpers that only need votes can take `&dyn Classifier` or generics
/// over this trait.
pub trait Classifier {
    /// Number of classes the classifier votes over.
    fn num_classes(&self) -> usize;

    /// Class-probability vector for one instance.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Hard prediction: the argmax class (first max wins).
    fn predict(&self, x: &[f64]) -> usize {
        let probs = self.predict_proba(x);
        let mut best = 0;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[best] {
                best = i;
            }
        }
        best
    }

    /// One-hot vote vector.
    fn predict_onehot(&self, x: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; self.num_classes()];
        v[self.predict(x)] = 1.0;
        v
    }

    /// Accuracy on a labeled dataset (0 for an empty one).
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            data.features.iter().zip(&data.labels).filter(|(x, &y)| self.predict(x) == y).count();
        correct as f64 / data.len() as f64
    }
}

impl Classifier for SoftmaxRegression {
    fn num_classes(&self) -> usize {
        SoftmaxRegression::num_classes(self)
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        SoftmaxRegression::predict_proba(self, x)
    }

    fn predict(&self, x: &[f64]) -> usize {
        SoftmaxRegression::predict(self, x)
    }
}

/// A k-nearest-neighbour classifier over the training shard (L2 metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl KnnClassifier {
    /// Stores the training shard; `k` is clamped to the shard size.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `k == 0`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit k-NN on an empty dataset");
        assert!(k > 0, "k must be positive");
        KnnClassifier {
            k: k.min(data.len()),
            features: data.features.clone(),
            labels: data.labels.clone(),
            num_classes: data.num_classes,
        }
    }

    /// The (clamped) neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Indices of the `k` nearest training points to `x`.
    fn neighbours(&self, x: &[f64]) -> Vec<usize> {
        let mut dists: Vec<(f64, usize)> = self
            .features
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d: f64 = p.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, i)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        dists.into_iter().take(self.k).map(|(_, i)| i).collect()
    }
}

impl Classifier for KnnClassifier {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.num_classes];
        for i in self.neighbours(x) {
            votes[self.labels[i]] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in votes.iter_mut() {
                *v /= total;
            }
        }
        votes
    }
}

/// An ensemble of arbitrary classifiers — the trait-generic counterpart
/// of [`crate::teacher::TeacherEnsemble`], for workloads that mix
/// families.
#[derive(Debug, Clone)]
pub struct GenericEnsemble<C> {
    teachers: Vec<C>,
}

impl<C: Classifier> GenericEnsemble<C> {
    /// Wraps trained classifiers.
    pub fn new(teachers: Vec<C>) -> Self {
        GenericEnsemble { teachers }
    }

    /// Number of teachers.
    pub fn len(&self) -> usize {
        self.teachers.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.teachers.is_empty()
    }

    /// Borrow the teachers.
    pub fn teachers(&self) -> &[C] {
        &self.teachers
    }

    /// One-hot votes from every teacher.
    pub fn votes_onehot(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.teachers.iter().map(|t| t.predict_onehot(x)).collect()
    }

    /// Plain vote counts.
    pub fn vote_counts(&self, x: &[f64]) -> Vec<f64> {
        let k = self.teachers.first().map_or(0, |t| t.num_classes());
        let mut counts = vec![0.0; k];
        for t in &self.teachers {
            counts[t.predict(x)] += 1.0;
        }
        counts
    }

    /// Mean accuracy across teachers.
    pub fn mean_accuracy(&self, test: &Dataset) -> f64 {
        if self.teachers.is_empty() {
            return 0.0;
        }
        self.teachers.iter().map(|t| t.accuracy(test)).sum::<f64>() / self.teachers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainConfig;
    use crate::partition::even_split;
    use crate::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data(seed: u64) -> (Dataset, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::mnist_like();
        (spec.generate(600, &mut rng), spec.generate(200, &mut rng))
    }

    #[test]
    fn knn_learns_the_mixture() {
        let (train, test) = data(1);
        let knn = KnnClassifier::fit(&train, 5);
        assert!(Classifier::accuracy(&knn, &test) > 0.85, "k-NN on easy mixture");
        assert_eq!(knn.k(), 5);
    }

    #[test]
    fn proba_is_a_distribution() {
        let (train, test) = data(2);
        let knn = KnnClassifier::fit(&train, 7);
        for x in test.features.iter().take(10) {
            let p = knn.predict_proba(x);
            assert_eq!(p.len(), 10);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn k_clamps_to_shard_size() {
        let (train, _) = data(3);
        let tiny = train.subset(&[0, 1, 2]);
        let knn = KnnClassifier::fit(&tiny, 50);
        assert_eq!(knn.k(), 3);
    }

    #[test]
    fn one_nearest_neighbour_memorizes_training_points() {
        let (train, _) = data(4);
        let knn = KnnClassifier::fit(&train, 1);
        for i in (0..train.len()).step_by(37) {
            assert_eq!(knn.predict(&train.features[i]), train.labels[i]);
        }
    }

    #[test]
    fn trait_objects_vote_interchangeably() {
        let (train, test) = data(5);
        let mut rng = StdRng::seed_from_u64(6);
        let softmax = SoftmaxRegression::train(&train, &TrainConfig::default(), &mut rng);
        let knn = KnnClassifier::fit(&train, 5);
        let teachers: Vec<Box<dyn Classifier>> = vec![Box::new(softmax), Box::new(knn)];
        for t in &teachers {
            assert_eq!(t.num_classes(), 10);
            let onehot = t.predict_onehot(&test.features[0]);
            assert_eq!(onehot.iter().sum::<f64>(), 1.0);
            assert!(t.accuracy(&test) > 0.7);
        }
    }

    #[test]
    fn generic_ensemble_counts_knn_votes() {
        let (train, test) = data(7);
        let mut rng = StdRng::seed_from_u64(8);
        let partition = even_split(train.len(), 4, &mut rng);
        let teachers: Vec<KnnClassifier> =
            (0..4).map(|u| KnnClassifier::fit(&partition.shard(&train, u), 3)).collect();
        let ensemble = GenericEnsemble::new(teachers);
        assert_eq!(ensemble.len(), 4);
        let counts = ensemble.vote_counts(&test.features[0]);
        assert_eq!(counts.iter().sum::<f64>(), 4.0);
        assert!(ensemble.mean_accuracy(&test) > 0.6);
        let votes = ensemble.votes_onehot(&test.features[0]);
        assert!(votes.iter().all(|v| v.iter().sum::<f64>() == 1.0));
    }

    #[test]
    fn knn_and_softmax_vote_distributions_are_comparable() {
        // The pipeline property the trait exists for: either family's
        // votes feed the consensus machinery identically.
        let (train, test) = data(9);
        let mut rng = StdRng::seed_from_u64(10);
        let partition = even_split(train.len(), 6, &mut rng);
        let knn_teachers: Vec<KnnClassifier> =
            (0..6).map(|u| KnnClassifier::fit(&partition.shard(&train, u), 3)).collect();
        let sgd_teachers: Vec<SoftmaxRegression> = (0..6)
            .map(|u| {
                SoftmaxRegression::train(
                    &partition.shard(&train, u),
                    &TrainConfig::default(),
                    &mut rng,
                )
            })
            .collect();
        let knn_ens = GenericEnsemble::new(knn_teachers);
        let sgd_ens = GenericEnsemble::new(sgd_teachers);
        // Both ensembles give the plurality to the true label on a clear
        // majority of test points.
        let plurality_acc = |counts_fn: &dyn Fn(&[f64]) -> Vec<f64>| {
            let mut correct = 0;
            for (x, &y) in test.features.iter().zip(&test.labels) {
                let counts = counts_fn(x);
                let mut best = 0;
                for (i, &c) in counts.iter().enumerate() {
                    if c > counts[best] {
                        best = i;
                    }
                }
                if best == y {
                    correct += 1;
                }
            }
            correct as f64 / test.len() as f64
        };
        let knn_acc = plurality_acc(&|x| knn_ens.vote_counts(x));
        let sgd_acc = plurality_acc(&|x| sgd_ens.vote_counts(x));
        assert!(knn_acc > 0.8, "k-NN plurality {knn_acc}");
        assert!(sgd_acc > 0.8, "softmax plurality {sgd_acc}");
    }
}
