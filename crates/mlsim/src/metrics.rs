//! Ensemble analysis metrics: agreement, margins and confusion.
//!
//! The threshold behaviour of the consensus protocol (Fig. 5) is driven
//! entirely by the distribution of *vote margins* — how many teachers
//! back the top label. These helpers quantify that distribution so
//! threshold choices can be made from data rather than guessed.

use crate::dataset::Dataset;
use crate::teacher::TeacherEnsemble;

/// Vote-margin summary for one query instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoteMargin {
    /// Votes for the top label.
    pub top_votes: f64,
    /// Votes for the runner-up label.
    pub second_votes: f64,
    /// Number of voters.
    pub num_users: usize,
}

impl VoteMargin {
    /// Top votes as a fraction of the electorate — the quantity the
    /// threshold is compared against.
    pub fn plurality(&self) -> f64 {
        if self.num_users == 0 {
            0.0
        } else {
            self.top_votes / self.num_users as f64
        }
    }

    /// Gap between winner and runner-up, in votes — what Report Noisy
    /// Max must overcome to flip the label.
    pub fn gap(&self) -> f64 {
        self.top_votes - self.second_votes
    }
}

/// Computes the vote margin of an ensemble on one instance.
///
/// # Panics
///
/// Panics if the ensemble is empty.
pub fn vote_margin(ensemble: &TeacherEnsemble, x: &[f64]) -> VoteMargin {
    assert!(!ensemble.is_empty(), "empty ensemble");
    let counts = ensemble.vote_counts(x);
    let mut top = 0.0f64;
    let mut second = 0.0f64;
    for &c in &counts {
        if c > top {
            second = top;
            top = c;
        } else if c > second {
            second = c;
        }
    }
    VoteMargin { top_votes: top, second_votes: second, num_users: ensemble.len() }
}

/// Pairwise agreement rate: the probability two random teachers give the
/// same label, averaged over the instances.
///
/// Returns 0 for an empty instance set and 1 for a single-teacher
/// ensemble.
pub fn agreement_rate(ensemble: &TeacherEnsemble, instances: &[Vec<f64>]) -> f64 {
    let m = ensemble.len();
    if instances.is_empty() {
        return 0.0;
    }
    if m < 2 {
        return 1.0;
    }
    let pair_total = (m * (m - 1) / 2) as f64;
    let mut acc = 0.0;
    for x in instances {
        let counts = ensemble.vote_counts(x);
        let agreeing: f64 = counts.iter().map(|&c| c * (c - 1.0) / 2.0).sum();
        acc += agreeing / pair_total;
    }
    acc / instances.len() as f64
}

/// Fraction of instances whose plurality meets each candidate threshold —
/// the *noise-free retention curve* for tuning `T`.
pub fn retention_curve(
    ensemble: &TeacherEnsemble,
    instances: &[Vec<f64>],
    thresholds: &[f64],
) -> Vec<f64> {
    if instances.is_empty() {
        return vec![0.0; thresholds.len()];
    }
    let margins: Vec<f64> =
        instances.iter().map(|x| vote_margin(ensemble, x).plurality()).collect();
    thresholds
        .iter()
        .map(|&t| margins.iter().filter(|&&p| p >= t).count() as f64 / margins.len() as f64)
        .collect()
}

/// A `K×K` confusion matrix: `matrix[truth][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix of `predict` over a labeled dataset.
    pub fn from_predictions(data: &Dataset, predict: impl Fn(&[f64]) -> usize) -> Self {
        let k = data.num_classes;
        let mut counts = vec![vec![0usize; k]; k];
        for (x, &y) in data.features.iter().zip(&data.labels) {
            let p = predict(x);
            if p < k {
                counts[y][p] += 1;
            }
        }
        ConfusionMatrix { counts }
    }

    /// `matrix[truth][predicted]`.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Overall accuracy (trace over total).
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall; `None` for classes with no instances.
    pub fn recalls(&self) -> Vec<Option<f64>> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    None
                } else {
                    Some(row[i] as f64 / total as f64)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainConfig;
    use crate::partition::even_split;
    use crate::synthetic::GaussianMixtureSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ensemble(users: usize, seed: u64) -> (TeacherEnsemble, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = GaussianMixtureSpec::mnist_like();
        let train = spec.generate(600, &mut rng);
        let test = spec.generate(200, &mut rng);
        let p = even_split(train.len(), users, &mut rng);
        (TeacherEnsemble::train(&train, &p, &TrainConfig::default(), &mut rng), test)
    }

    #[test]
    fn margin_identifies_plurality() {
        let (e, test) = ensemble(5, 1);
        let m = vote_margin(&e, &test.features[0]);
        assert_eq!(m.num_users, 5);
        assert!(m.top_votes >= m.second_votes);
        assert!(m.top_votes <= 5.0);
        assert!(m.plurality() <= 1.0 && m.plurality() >= 0.2);
        assert!(m.gap() >= 0.0);
    }

    #[test]
    fn agreement_high_on_easy_data() {
        let (e, test) = ensemble(5, 2);
        let rate = agreement_rate(&e, &test.features);
        assert!(rate > 0.6, "strong teachers must mostly agree: {rate}");
        assert!(rate <= 1.0);
    }

    #[test]
    fn agreement_degenerate_cases() {
        let (e, _) = ensemble(1, 3);
        assert_eq!(agreement_rate(&e, &[vec![0.0; 24]]), 1.0);
        let (e5, _) = ensemble(5, 3);
        assert_eq!(agreement_rate(&e5, &[]), 0.0);
    }

    #[test]
    fn retention_curve_is_monotone_decreasing() {
        let (e, test) = ensemble(10, 4);
        let thresholds = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
        let curve = retention_curve(&e, &test.features, &thresholds);
        for w in curve.windows(2) {
            assert!(w[0] >= w[1], "retention must fall with threshold: {curve:?}");
        }
        assert!(curve[0] > 0.9, "almost everything clears a 10% threshold");
    }

    #[test]
    fn confusion_matrix_diagonal_dominates() {
        let (e, test) = ensemble(3, 5);
        let teacher = &e.teachers()[0];
        let cm = ConfusionMatrix::from_predictions(&test, |x| teacher.predict(x));
        assert!((cm.accuracy() - teacher.accuracy(&test)).abs() < 1e-12);
        assert!(cm.accuracy() > 0.6);
        let recalls = cm.recalls();
        assert_eq!(recalls.len(), 10);
        // Count bookkeeping: row sums equal class counts.
        let class_counts = test.class_counts();
        for (i, &n) in class_counts.iter().enumerate() {
            let row: usize = (0..10).map(|j| cm.count(i, j)).sum();
            assert_eq!(row, n);
        }
    }
}
