//! Data partitioners — the paper's even and `x–(10−x)` division splits.
//!
//! "Division 2-8 represents that 20% of the data is held by 80% of the
//! users" (§VI-C): the *majority* group (80% of users) shares 20% of the
//! data in small shards, while the *minority* group (20% of users) holds
//! the remaining 80% in large shards.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, MultiLabelDataset};

/// An uneven division `data_percent`–`user_percent` in the paper's
/// naming: `data_percent·10%` of the data goes to `user_percent·10%` of
/// the users... expressed here as fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Division {
    /// Fraction of the data shared by the majority user group.
    pub minority_data_fraction: f64,
    /// Fraction of users in the majority group.
    pub majority_user_fraction: f64,
}

impl Division {
    /// Division 2-8: 20% of data across 80% of users.
    pub const D28: Division = Division { minority_data_fraction: 0.2, majority_user_fraction: 0.8 };
    /// Division 3-7: 30% of data across 70% of users.
    pub const D37: Division = Division { minority_data_fraction: 0.3, majority_user_fraction: 0.7 };
    /// Division 4-6: 40% of data across 60% of users.
    pub const D46: Division = Division { minority_data_fraction: 0.4, majority_user_fraction: 0.6 };

    /// The paper's three divisions, in order.
    pub const ALL: [Division; 3] = [Division::D28, Division::D37, Division::D46];

    /// The paper's name for the division, e.g. `"2-8"`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}",
            (self.minority_data_fraction * 10.0).round() as u32,
            (self.majority_user_fraction * 10.0).round() as u32
        )
    }
}

/// Assignment of instances to users, plus group bookkeeping for the
/// majority/minority accuracy split of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `assignments[u]` = indices of instances owned by user `u`.
    pub assignments: Vec<Vec<usize>>,
    /// Users in the majority group (small shards); empty for even splits.
    pub majority_users: Vec<usize>,
    /// Users in the minority group (large shards); empty for even splits.
    pub minority_users: Vec<usize>,
}

impl Partition {
    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.assignments.len()
    }

    /// Materializes user `u`'s shard of a single-label dataset.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn shard(&self, dataset: &Dataset, u: usize) -> Dataset {
        dataset.subset(&self.assignments[u])
    }

    /// Materializes user `u`'s shard of a multi-label dataset.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn shard_multilabel(&self, dataset: &MultiLabelDataset, u: usize) -> MultiLabelDataset {
        dataset.subset(&self.assignments[u])
    }
}

/// Shuffled indices of `0..n`.
fn shuffled_indices<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Distributes `indices` round-robin over `groups` slots.
fn deal(indices: &[usize], groups: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::with_capacity(indices.len() / groups.max(1) + 1); groups];
    for (pos, &i) in indices.iter().enumerate() {
        out[pos % groups].push(i);
    }
    out
}

/// Even split: every user receives an equal (±1) random shard.
///
/// # Panics
///
/// Panics if `num_users == 0`.
pub fn even_split<R: Rng + ?Sized>(n_instances: usize, num_users: usize, rng: &mut R) -> Partition {
    assert!(num_users > 0, "need at least one user");
    let idx = shuffled_indices(n_instances, rng);
    Partition {
        assignments: deal(&idx, num_users),
        majority_users: Vec::new(),
        minority_users: Vec::new(),
    }
}

/// Uneven split per [`Division`]: the majority user group shares the
/// minority data fraction; the minority user group shares the rest.
///
/// # Panics
///
/// Panics if `num_users == 0` or the division would leave either group
/// without users.
pub fn division_split<R: Rng + ?Sized>(
    n_instances: usize,
    num_users: usize,
    division: Division,
    rng: &mut R,
) -> Partition {
    assert!(num_users > 0, "need at least one user");
    let majority_count = ((num_users as f64) * division.majority_user_fraction).round() as usize;
    let majority_count = majority_count.clamp(1, num_users - 1);
    let minority_count = num_users - majority_count;
    let small_data = ((n_instances as f64) * division.minority_data_fraction).round() as usize;

    let idx = shuffled_indices(n_instances, rng);
    let (small_pool, large_pool) = idx.split_at(small_data);

    let majority_shards = deal(small_pool, majority_count);
    let minority_shards = deal(large_pool, minority_count);

    let mut assignments = Vec::with_capacity(num_users);
    assignments.extend(majority_shards);
    assignments.extend(minority_shards);
    Partition {
        assignments,
        majority_users: (0..majority_count).collect(),
        minority_users: (majority_count..num_users).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn division_names() {
        assert_eq!(Division::D28.name(), "2-8");
        assert_eq!(Division::D37.name(), "3-7");
        assert_eq!(Division::D46.name(), "4-6");
    }

    #[test]
    fn even_split_is_balanced_and_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = even_split(103, 10, &mut rng);
        assert_eq!(p.num_users(), 10);
        let sizes: Vec<usize> = p.assignments.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11), "{sizes:?}");
        let mut all: Vec<usize> = p.assignments.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>(), "every instance assigned once");
        assert!(p.majority_users.is_empty());
    }

    #[test]
    fn division_2_8_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = division_split(1000, 10, Division::D28, &mut rng);
        assert_eq!(p.majority_users.len(), 8);
        assert_eq!(p.minority_users.len(), 2);
        // Majority users share 200 instances → 25 each; minority share
        // 800 → 400 each.
        for &u in &p.majority_users {
            assert_eq!(p.assignments[u].len(), 25);
        }
        for &u in &p.minority_users {
            assert_eq!(p.assignments[u].len(), 400);
        }
        let mut all: Vec<usize> = p.assignments.concat();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "no duplicates");
    }

    #[test]
    fn minority_shards_are_larger_for_all_divisions() {
        let mut rng = StdRng::seed_from_u64(3);
        for div in Division::ALL {
            let p = division_split(600, 20, div, &mut rng);
            let maj_avg: f64 =
                p.majority_users.iter().map(|&u| p.assignments[u].len()).sum::<usize>() as f64
                    / p.majority_users.len() as f64;
            let min_avg: f64 =
                p.minority_users.iter().map(|&u| p.assignments[u].len()).sum::<usize>() as f64
                    / p.minority_users.len() as f64;
            assert!(min_avg > 2.0 * maj_avg, "{}: {maj_avg} vs {min_avg}", div.name());
        }
    }

    #[test]
    fn shard_materialization() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = crate::synthetic::GaussianMixtureSpec::mnist_like().generate(50, &mut rng);
        let p = even_split(d.len(), 5, &mut rng);
        let shard = p.shard(&d, 0);
        assert_eq!(shard.len(), 10);
        assert_eq!(shard.num_classes, 10);
    }

    #[test]
    fn tiny_user_counts_stay_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = division_split(100, 2, Division::D28, &mut rng);
        assert_eq!(p.majority_users.len() + p.minority_users.len(), 2);
        assert!(p.assignments.iter().all(|a| !a.is_empty()));
    }
}
