//! Linear models trained by SGD: softmax regression for single-label
//! classification and a one-vs-all logistic bank for the multi-label
//! (CelebA-like) family.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, MultiLabelDataset};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 30, learning_rate: 0.08, l2: 1e-4 }
    }
}

/// Multinomial logistic regression (`K` classes, dense weights + bias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftmaxRegression {
    /// `weights[k]` is class `k`'s weight vector.
    weights: Vec<Vec<f64>>,
    /// Per-class bias.
    bias: Vec<f64>,
}

/// Numerically stable softmax.
fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

fn shuffled<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

impl SoftmaxRegression {
    /// Trains on `data` with plain SGD over shuffled epochs.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train<R: Rng + ?Sized>(data: &Dataset, config: &TrainConfig, rng: &mut R) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let k = data.num_classes;
        let d = data.dim();
        let mut model = SoftmaxRegression { weights: vec![vec![0.0; d]; k], bias: vec![0.0; k] };
        for _ in 0..config.epochs {
            for &i in &shuffled(data.len(), rng) {
                model.sgd_step(&data.features[i], data.labels[i], config);
            }
        }
        model
    }

    fn sgd_step(&mut self, x: &[f64], label: usize, config: &TrainConfig) {
        let probs = self.predict_proba(x);
        for (k, p) in probs.iter().enumerate() {
            let grad = p - if k == label { 1.0 } else { 0.0 };
            let w = &mut self.weights[k];
            for (wj, &xj) in w.iter_mut().zip(x) {
                *wj -= config.learning_rate * (grad * xj + config.l2 * *wj);
            }
            self.bias[k] -= config.learning_rate * grad;
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }

    /// Class-probability vector for one instance (softmax output).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let logits: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.bias)
            .map(|(w, &b)| {
                assert_eq!(w.len(), x.len(), "feature dimensionality mismatch");
                w.iter().zip(x).map(|(wj, xj)| wj * xj).sum::<f64>() + b
            })
            .collect();
        softmax(&logits)
    }

    /// Hard prediction: the argmax class.
    pub fn predict(&self, x: &[f64]) -> usize {
        let probs = self.predict_proba(x);
        let mut best = 0;
        for (i, &p) in probs.iter().enumerate() {
            if p > probs[best] {
                best = i;
            }
        }
        best
    }

    /// One-hot vote vector for one instance.
    pub fn predict_onehot(&self, x: &[f64]) -> Vec<f64> {
        let mut v = vec![0.0; self.num_classes()];
        v[self.predict(x)] = 1.0;
        v
    }

    /// Accuracy on a labeled dataset (0 for an empty one).
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct =
            data.features.iter().zip(&data.labels).filter(|(x, &y)| self.predict(x) == y).count();
        correct as f64 / data.len() as f64
    }
}

/// A bank of independent binary logistic regressions — one per attribute
/// of a multi-label dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticBank {
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticBank {
    /// Trains one logistic head per attribute with SGD.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train<R: Rng + ?Sized>(
        data: &MultiLabelDataset,
        config: &TrainConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let m = data.num_attributes;
        let d = data.dim();
        let mut bank = LogisticBank { weights: vec![vec![0.0; d]; m], bias: vec![0.0; m] };
        for _ in 0..config.epochs {
            for &i in &shuffled(data.len(), rng) {
                let x = &data.features[i];
                for (j, &target) in data.attributes[i].iter().enumerate() {
                    let z = bank.weights[j].iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
                        + bank.bias[j];
                    let grad = sigmoid(z) - target as u8 as f64;
                    let w = &mut bank.weights[j];
                    for (wj, &xj) in w.iter_mut().zip(x) {
                        *wj -= config.learning_rate * (grad * xj + config.l2 * *wj);
                    }
                    bank.bias[j] -= config.learning_rate * grad;
                }
            }
        }
        bank
    }

    /// Number of attribute heads.
    pub fn num_attributes(&self) -> usize {
        self.weights.len()
    }

    /// Per-attribute positive probabilities for one instance.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, &b)| {
                assert_eq!(w.len(), x.len(), "feature dimensionality mismatch");
                sigmoid(w.iter().zip(x).map(|(wj, xj)| wj * xj).sum::<f64>() + b)
            })
            .collect()
    }

    /// Hard attribute predictions at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> Vec<bool> {
        self.predict_proba(x).iter().map(|&p| p >= 0.5).collect()
    }

    /// Mean per-attribute accuracy on a dataset (0 for an empty one).
    pub fn accuracy(&self, data: &MultiLabelDataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for (x, attrs) in data.features.iter().zip(&data.attributes) {
            let pred = self.predict(x);
            correct += pred.iter().zip(attrs).filter(|(p, a)| p == a).count();
        }
        correct as f64 / (data.len() * data.num_attributes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{GaussianMixtureSpec, SparseAttributeSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn learns_separable_mixture() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = GaussianMixtureSpec::mnist_like();
        let train = spec.generate(1500, &mut rng);
        let test = spec.generate(500, &mut rng);
        let model = SoftmaxRegression::train(&train, &TrainConfig::default(), &mut rng);
        let acc = model.accuracy(&test);
        assert!(acc > 0.85, "mnist-like accuracy {acc}");
    }

    #[test]
    fn accuracy_grows_with_data() {
        // The learning-curve property every figure relies on.
        let mut rng = StdRng::seed_from_u64(2);
        let spec = GaussianMixtureSpec::svhn_like();
        let test = spec.generate(800, &mut rng);
        let small = spec.generate(30, &mut rng);
        let large = spec.generate(2000, &mut rng);
        let acc_small =
            SoftmaxRegression::train(&small, &TrainConfig::default(), &mut rng).accuracy(&test);
        let acc_large =
            SoftmaxRegression::train(&large, &TrainConfig::default(), &mut rng).accuracy(&test);
        assert!(
            acc_large > acc_small + 0.05,
            "learning curve: small {acc_small}, large {acc_large}"
        );
    }

    #[test]
    fn onehot_matches_argmax_of_proba() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = GaussianMixtureSpec::mnist_like();
        let data = spec.generate(200, &mut rng);
        let model = SoftmaxRegression::train(&data, &TrainConfig::default(), &mut rng);
        for x in data.features.iter().take(20) {
            let onehot = model.predict_onehot(x);
            assert_eq!(onehot.iter().sum::<f64>(), 1.0);
            assert_eq!(onehot.iter().position(|&v| v == 1.0).unwrap(), model.predict(x));
        }
    }

    #[test]
    fn logistic_bank_beats_majority_baseline() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = SparseAttributeSpec::celeba_like();
        let train = spec.generate(1500, &mut rng);
        let test = spec.generate(500, &mut rng);
        let bank = LogisticBank::train(&train, &TrainConfig::default(), &mut rng);
        let acc = bank.accuracy(&test);
        // Majority (all-negative) baseline sits at 1 − positive_rate ≈ 0.85.
        let majority = 1.0 - test.positive_rate();
        assert!(acc > majority + 0.02, "bank {acc} vs majority {majority}");
    }

    #[test]
    fn proba_vectors_have_model_arity() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = GaussianMixtureSpec::mnist_like().generate(100, &mut rng);
        let model = SoftmaxRegression::train(&data, &TrainConfig::default(), &mut rng);
        assert_eq!(model.num_classes(), 10);
        assert_eq!(model.predict_proba(&data.features[0]).len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let empty = Dataset::new(vec![], vec![], 3);
        let _ = SoftmaxRegression::train(
            &empty,
            &TrainConfig::default(),
            &mut StdRng::seed_from_u64(0),
        );
    }
}
