//! Durable round state checkpointing.
//!
//! A [`CheckpointStore`] persists each server's serialized round state
//! (one snapshot per completed protocol [`Step`]) so a supervisor can
//! restore the latest consistent S1/S2 snapshot pair after a crash and
//! resume the round instead of restarting it. The store is deliberately
//! dumb: it moves opaque, already-wire-encoded payloads and knows nothing
//! about their contents.
//!
//! Two implementations ship here:
//!
//! * [`MemoryCheckpointStore`] — a mutex-guarded map, for tests and for
//!   supervisors that only need crash recovery within one process;
//! * [`FileCheckpointStore`] — an append-only journal file with
//!   checksummed records. Appends are atomic at record granularity: a
//!   crash mid-append leaves a torn trailing record, which replay detects
//!   and discards, so every record that was fully flushed survives a
//!   process restart.
//!
//! Checkpoints hold live protocol secrets (aggregated shares, permuted
//! sequences), so callers must [`CheckpointStore::clear_round`] as soon
//! as a round completes — see DESIGN.md §"Recovery model" for what is
//! deliberately never checkpointed in the first place.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::journal::{AppendJournal, TOMBSTONE};
use crate::metrics::Step;
use crate::network::PartyId;
use crate::session::session_scoped_round;

/// Errors surfaced by a [`CheckpointStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The journal contained a structurally impossible record (not a torn
    /// tail, which is tolerated silently).
    CorruptJournal(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::CorruptJournal(what) => {
                write!(f, "corrupt checkpoint journal: {what}")
            }
        }
    }
}

impl Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// One stored snapshot: the step it completed and the wire-encoded state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The protocol step the snapshot was taken *after*.
    pub step: Step,
    /// The wire-encoded round state.
    pub payload: Vec<u8>,
}

/// A pluggable sink for per-(round, party, step) state snapshots.
pub trait CheckpointStore: Send + Sync {
    /// Persists `payload` as `party`'s snapshot after `step` of `round`,
    /// replacing any previous snapshot at the same coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the snapshot cannot be persisted.
    fn save(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
        payload: &[u8],
    ) -> Result<(), CheckpointError>;

    /// The snapshot with the highest step recorded for `(round, party)`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the store cannot be read.
    fn load_latest(
        &self,
        round: u64,
        party: PartyId,
    ) -> Result<Option<Checkpoint>, CheckpointError>;

    /// The snapshot recorded for `(round, party)` at exactly `step`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the store cannot be read.
    fn load_at(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
    ) -> Result<Option<Checkpoint>, CheckpointError>;

    /// Discards every snapshot of `round` (all parties), so round secrets
    /// do not outlive the round.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] if the discard cannot be persisted.
    fn clear_round(&self, round: u64) -> Result<(), CheckpointError>;
}

/// Stable numeric key for a party in store indexes and journal records.
fn party_key(p: PartyId) -> u64 {
    match p {
        PartyId::Server1 => 1,
        PartyId::Server2 => 2,
        PartyId::User(u) => 3 + u as u64,
    }
}

type RoundIndex = BTreeMap<(u64, u64), BTreeMap<u8, Vec<u8>>>;

fn index_latest(index: &RoundIndex, round: u64, party: PartyId) -> Option<Checkpoint> {
    index.get(&(round, party_key(party))).and_then(|steps| {
        steps.last_key_value().map(|(&ord, payload)| Checkpoint {
            step: Step::from_ordinal(ord).expect("index holds valid ordinals"),
            payload: payload.clone(),
        })
    })
}

fn index_at(index: &RoundIndex, round: u64, party: PartyId, step: Step) -> Option<Checkpoint> {
    index
        .get(&(round, party_key(party)))
        .and_then(|steps| steps.get(&step.ordinal()))
        .map(|payload| Checkpoint { step, payload: payload.clone() })
}

fn index_clear_round(index: &mut RoundIndex, round: u64) {
    index.retain(|&(r, _), _| r != round);
}

/// In-memory [`CheckpointStore`] — crash recovery within one process.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    index: Mutex<RoundIndex>,
}

impl MemoryCheckpointStore {
    /// Creates an empty store.
    pub fn new() -> MemoryCheckpointStore {
        MemoryCheckpointStore::default()
    }

    /// Number of snapshots currently held (all rounds and parties).
    pub fn len(&self) -> usize {
        self.index.lock().expect("checkpoint lock").values().map(BTreeMap::len).sum()
    }

    /// True if no snapshot is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        let mut index = self.index.lock().expect("checkpoint lock");
        index
            .entry((round, party_key(party)))
            .or_default()
            .insert(step.ordinal(), payload.to_vec());
        Ok(())
    }

    fn load_latest(
        &self,
        round: u64,
        party: PartyId,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(index_latest(&self.index.lock().expect("checkpoint lock"), round, party))
    }

    fn load_at(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(index_at(&self.index.lock().expect("checkpoint lock"), round, party, step))
    }

    fn clear_round(&self, round: u64) -> Result<(), CheckpointError> {
        index_clear_round(&mut self.index.lock().expect("checkpoint lock"), round);
        Ok(())
    }
}

struct FileStoreInner {
    journal: AppendJournal,
    index: RoundIndex,
}

/// File-backed [`CheckpointStore`]: an append-only, checksummed journal
/// that survives process restarts. The framing and crash discipline live
/// in [`crate::journal`]; this type layers the snapshot index and
/// tombstone semantics on top.
///
/// Every [`CheckpointStore::save`] and [`CheckpointStore::clear_round`]
/// appends one *fsynced* record (a `kill -9` immediately after a save
/// cannot lose it); [`FileCheckpointStore::open`] replays the journal to
/// rebuild the in-memory index, discarding a torn trailing record if the
/// previous process died mid-append.
pub struct FileCheckpointStore {
    path: PathBuf,
    inner: Mutex<FileStoreInner>,
}

impl fmt::Debug for FileCheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FileCheckpointStore({})", self.path.display())
    }
}

impl FileCheckpointStore {
    /// Opens (or creates) the journal at `dir/journal.ckpt`, creating the
    /// directory first and replaying any existing records. A torn
    /// trailing record — the signature of a crash mid-append — is
    /// truncated away; fully-persisted records all survive.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory or journal cannot
    /// be created or read, and [`CheckpointError::CorruptJournal`] if a
    /// fully-checksummed record carries an impossible step ordinal.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileCheckpointStore, CheckpointError> {
        let (journal, records) = AppendJournal::open(dir, "journal.ckpt")?;
        let mut index = RoundIndex::new();
        for rec in records {
            if rec.step == TOMBSTONE {
                index_clear_round(&mut index, rec.round);
            } else if Step::from_ordinal(rec.step).is_some() {
                index.entry((rec.round, rec.party)).or_default().insert(rec.step, rec.payload);
            } else {
                return Err(CheckpointError::CorruptJournal("unknown step ordinal"));
            }
        }
        let path = journal.path().to_path_buf();
        Ok(FileCheckpointStore { path, inner: Mutex::new(FileStoreInner { journal, index }) })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.journal.append(round, party_key(party), step.ordinal(), payload)?;
        inner
            .index
            .entry((round, party_key(party)))
            .or_default()
            .insert(step.ordinal(), payload.to_vec());
        Ok(())
    }

    fn load_latest(
        &self,
        round: u64,
        party: PartyId,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(index_latest(&self.inner.lock().expect("checkpoint lock").index, round, party))
    }

    fn load_at(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(index_at(&self.inner.lock().expect("checkpoint lock").index, round, party, step))
    }

    fn clear_round(&self, round: u64) -> Result<(), CheckpointError> {
        let mut inner = self.inner.lock().expect("checkpoint lock");
        inner.journal.append(round, 0, TOMBSTONE, &[])?;
        index_clear_round(&mut inner.index, round);
        Ok(())
    }
}

/// Shared ownership delegates: sessions scoping one common store hold
/// `Arc`s to it.
impl<S: CheckpointStore + ?Sized> CheckpointStore for std::sync::Arc<S> {
    fn save(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        (**self).save(round, party, step, payload)
    }

    fn load_latest(
        &self,
        round: u64,
        party: PartyId,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        (**self).load_latest(round, party)
    }

    fn load_at(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        (**self).load_at(round, party, step)
    }

    fn clear_round(&self, round: u64) -> Result<(), CheckpointError> {
        (**self).clear_round(round)
    }
}

/// Namespaces every round key of an inner [`CheckpointStore`] by a
/// session id (via [`session_scoped_round`]), so concurrent sessions
/// sharing one store directory can never collide on each other's
/// checkpoint records even when they use the same per-session round
/// numbering. Session 0 is the identity mapping, so existing
/// single-session journals stay readable.
#[derive(Debug)]
pub struct SessionScopedStore<S> {
    session: u64,
    inner: S,
}

impl<S: CheckpointStore> SessionScopedStore<S> {
    /// Wraps `inner`, scoping every round key to `session`.
    pub fn new(session: u64, inner: S) -> SessionScopedStore<S> {
        SessionScopedStore { session, inner }
    }

    /// The session every round key is scoped to.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: CheckpointStore> CheckpointStore for SessionScopedStore<S> {
    fn save(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        self.inner.save(session_scoped_round(self.session, round), party, step, payload)
    }

    fn load_latest(
        &self,
        round: u64,
        party: PartyId,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        self.inner.load_latest(session_scoped_round(self.session, round), party)
    }

    fn load_at(
        &self,
        round: u64,
        party: PartyId,
        step: Step,
    ) -> Result<Option<Checkpoint>, CheckpointError> {
        self.inner.load_at(session_scoped_round(self.session, round), party, step)
    }

    fn clear_round(&self, round: u64) -> Result<(), CheckpointError> {
        self.inner.clear_round(session_scoped_round(self.session, round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::encode_record;
    use std::fs::{self, OpenOptions};
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A unique per-test scratch directory under the system tempdir,
    /// removed on drop so CI leaves no artifacts.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("ckpt-test-{}-{tag}-{n}", std::process::id()));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn store_roundtrip(store: &dyn CheckpointStore) {
        store.save(7, PartyId::Server1, Step::SecureSumVotes, b"s1@2").unwrap();
        store.save(7, PartyId::Server1, Step::BlindPermute1, b"s1@3").unwrap();
        store.save(7, PartyId::Server2, Step::SecureSumVotes, b"s2@2").unwrap();
        store.save(8, PartyId::Server1, Step::SecureSumVotes, b"other-round").unwrap();

        let latest = store.load_latest(7, PartyId::Server1).unwrap().unwrap();
        assert_eq!(latest.step, Step::BlindPermute1);
        assert_eq!(latest.payload, b"s1@3");
        let at = store.load_at(7, PartyId::Server1, Step::SecureSumVotes).unwrap().unwrap();
        assert_eq!(at.payload, b"s1@2");
        assert_eq!(store.load_at(7, PartyId::Server1, Step::Restoration).unwrap(), None);
        assert_eq!(store.load_latest(7, PartyId::User(0)).unwrap(), None);

        // Re-saving the same coordinates replaces the payload.
        store.save(7, PartyId::Server2, Step::SecureSumVotes, b"s2@2-v2").unwrap();
        let replaced = store.load_latest(7, PartyId::Server2).unwrap().unwrap();
        assert_eq!(replaced.payload, b"s2@2-v2");

        store.clear_round(7).unwrap();
        assert_eq!(store.load_latest(7, PartyId::Server1).unwrap(), None);
        assert_eq!(store.load_latest(7, PartyId::Server2).unwrap(), None);
        // Other rounds are untouched.
        assert!(store.load_latest(8, PartyId::Server1).unwrap().is_some());
    }

    #[test]
    fn memory_store_roundtrip() {
        let store = MemoryCheckpointStore::new();
        assert!(store.is_empty());
        store_roundtrip(&store);
        assert_eq!(store.len(), 1); // round 8's lone snapshot remains
    }

    #[test]
    fn file_store_roundtrip() {
        let tmp = TempDir::new("roundtrip");
        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        store_roundtrip(&store);
    }

    #[test]
    fn file_store_survives_reopen() {
        let tmp = TempDir::new("reopen");
        {
            let store = FileCheckpointStore::open(&tmp.0).unwrap();
            store.save(1, PartyId::Server1, Step::CompareRank, b"alpha").unwrap();
            store.save(1, PartyId::Server2, Step::BlindPermute1, b"beta").unwrap();
            store.save(2, PartyId::Server1, Step::Setup, b"gamma").unwrap();
            store.clear_round(2).unwrap();
        }
        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        let s1 = store.load_latest(1, PartyId::Server1).unwrap().unwrap();
        assert_eq!((s1.step, s1.payload.as_slice()), (Step::CompareRank, b"alpha".as_slice()));
        let s2 = store.load_latest(1, PartyId::Server2).unwrap().unwrap();
        assert_eq!(s2.payload, b"beta");
        // Tombstones replay too: round 2 stays cleared across reopen.
        assert_eq!(store.load_latest(2, PartyId::Server1).unwrap(), None);
    }

    #[test]
    fn torn_tail_is_discarded_and_journal_stays_appendable() {
        let tmp = TempDir::new("torn");
        {
            let store = FileCheckpointStore::open(&tmp.0).unwrap();
            store.save(3, PartyId::Server1, Step::SecureSumVotes, b"whole").unwrap();
        }
        let path = tmp.0.join("journal.ckpt");
        // Simulate a crash mid-append: half a record at the tail.
        let half = encode_record(3, 1, Step::BlindPermute1.ordinal(), b"torn-away");
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&half[..half.len() / 2]).unwrap();
        drop(f);

        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        let latest = store.load_latest(3, PartyId::Server1).unwrap().unwrap();
        assert_eq!(
            (latest.step, latest.payload.as_slice()),
            (Step::SecureSumVotes, b"whole".as_slice())
        );
        // New appends after recovery land on the valid prefix and replay.
        store.save(3, PartyId::Server1, Step::CompareRank, b"after").unwrap();
        drop(store);
        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        assert_eq!(
            store.load_latest(3, PartyId::Server1).unwrap().unwrap().step,
            Step::CompareRank
        );
    }

    #[test]
    fn corrupted_record_body_truncates_from_there() {
        let tmp = TempDir::new("bitrot");
        {
            let store = FileCheckpointStore::open(&tmp.0).unwrap();
            store.save(4, PartyId::Server1, Step::SecureSumVotes, b"keep").unwrap();
            store.save(4, PartyId::Server1, Step::BlindPermute1, b"rot").unwrap();
        }
        let path = tmp.0.join("journal.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x40; // flip a bit inside the second record
        fs::write(&path, &bytes).unwrap();

        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        let latest = store.load_latest(4, PartyId::Server1).unwrap().unwrap();
        assert_eq!(
            (latest.step, latest.payload.as_slice()),
            (Step::SecureSumVotes, b"keep".as_slice())
        );
    }

    /// Durability regression: `save` must fsync, so a process killed the
    /// instant after a save returns (simulated here by never running the
    /// store's teardown) cannot lose the record — even when the kill
    /// leaves a torn half-record behind it.
    #[test]
    fn synced_append_survives_simulated_kill_with_torn_tail() {
        let tmp = TempDir::new("fsync");
        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        store.save(9, PartyId::Server1, Step::SecureSumVotes, b"charged").unwrap();
        // The record must already be fully on disk, not sitting in a
        // userspace buffer waiting for a flush that a kill -9 skips.
        let bytes = fs::read(tmp.0.join("journal.ckpt")).unwrap();
        let (rec, _) = crate::journal::decode_record(&bytes, 0).expect("record fully persisted");
        assert_eq!(rec.payload, b"charged");
        // A torn half-record written after the kill point must not take
        // the synced record with it on replay.
        let half = encode_record(9, 1, Step::BlindPermute1.ordinal(), b"lost");
        let mut f = OpenOptions::new().append(true).open(tmp.0.join("journal.ckpt")).unwrap();
        f.write_all(&half[..half.len() / 3]).unwrap();
        drop(f);
        std::mem::forget(store); // the "killed" process never runs Drop
        let store = FileCheckpointStore::open(&tmp.0).unwrap();
        let latest = store.load_latest(9, PartyId::Server1).unwrap().unwrap();
        assert_eq!(latest.payload, b"charged");
    }

    /// Regression for multi-session stores: two sessions interleaving
    /// saves against one shared directory, both using round id 0, must
    /// never read or clear each other's records.
    #[test]
    fn interleaved_sessions_sharing_a_directory_never_collide() {
        let tmp = TempDir::new("sessions");
        let shared = Arc::new(FileCheckpointStore::open(&tmp.0).unwrap());
        let a = SessionScopedStore::new(1, Arc::clone(&shared));
        let b = SessionScopedStore::new(2, Arc::clone(&shared));

        // Interleaved writes at identical (round, party, step) coords.
        a.save(0, PartyId::Server1, Step::SecureSumVotes, b"a@2").unwrap();
        b.save(0, PartyId::Server1, Step::SecureSumVotes, b"b@2").unwrap();
        a.save(0, PartyId::Server1, Step::BlindPermute1, b"a@3").unwrap();
        b.save(0, PartyId::Server2, Step::SecureSumVotes, b"b-s2@2").unwrap();

        let got_a = a.load_latest(0, PartyId::Server1).unwrap().unwrap();
        assert_eq!((got_a.step, got_a.payload.as_slice()), (Step::BlindPermute1, &b"a@3"[..]));
        let got_b = b.load_latest(0, PartyId::Server1).unwrap().unwrap();
        assert_eq!((got_b.step, got_b.payload.as_slice()), (Step::SecureSumVotes, &b"b@2"[..]));
        assert_eq!(a.load_latest(0, PartyId::Server2).unwrap(), None, "b's record leaked into a");

        // Clearing a's round must not touch b's records for the same id.
        a.clear_round(0).unwrap();
        assert_eq!(a.load_latest(0, PartyId::Server1).unwrap(), None);
        assert!(b.load_latest(0, PartyId::Server1).unwrap().is_some());

        // The scoping survives reopen: the keys really are namespaced on
        // disk, not just in the in-memory index.
        drop((a, b, shared));
        let reopened = FileCheckpointStore::open(&tmp.0).unwrap();
        let b2 = SessionScopedStore::new(2, reopened);
        assert_eq!(b2.load_latest(0, PartyId::Server1).unwrap().unwrap().payload, b"b@2");
        assert_eq!(b2.session(), 2);
        assert!(b2.inner().path().ends_with("journal.ckpt"));
    }

    #[test]
    fn stores_are_sharable_trait_objects() {
        let stores: Vec<Arc<dyn CheckpointStore>> = vec![Arc::new(MemoryCheckpointStore::new())];
        for store in stores {
            store.save(0, PartyId::Server1, Step::Setup, b"x").unwrap();
            assert!(store.load_latest(0, PartyId::Server1).unwrap().is_some());
        }
    }
}
