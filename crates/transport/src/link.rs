//! The link abstraction shared by every transport backend.
//!
//! An [`crate::Endpoint`] holds one *link sender* per peer and one
//! incoming envelope queue; everything above this line (sequence
//! numbers, checksums, dedup, stashing, timeouts, fault injection) is
//! backend-agnostic. A [`LinkSender`] is the backend-specific sending
//! half:
//!
//! * **In-proc** — a bounded channel straight into the peer's incoming
//!   queue (the classic mesh, now with backpressure);
//! * **TCP** — a bounded queue into a per-link writer thread that owns a
//!   real loopback socket (see [`crate::tcp`]).
//!
//! Both flavors are *bounded*: a send that finds the queue full records
//! [`FaultEvent::BackpressureBlocked`] on the meter and then blocks until
//! the consumer makes room — a slow consumer applies backpressure instead
//! of growing an unbounded buffer.

use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{Sender, TrySendError};

use crate::metrics::{FaultEvent, Meter, Step};
use crate::network::{PartyId, TransportError};
use crate::tcp::TcpLink;

/// Default bounded capacity of every link queue: generous enough that a
/// full protocol round never blocks on it, small enough that a runaway
/// sender cannot exhaust memory.
pub(crate) const DEFAULT_CAPACITY: usize = 4096;

/// One message in flight.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub(crate) from: PartyId,
    /// Carried for (sender, step) receive matching and wire framing.
    pub(crate) step: Step,
    /// Per-link sequence number (starts at 1); duplicates share it.
    pub(crate) seq: u64,
    /// Frame checksum over `(seq, payload)` computed before any fault
    /// mutation, so in-flight corruption is detectable.
    pub(crate) checksum: u64,
    /// Injected delivery delay: the receiver must not consume the frame
    /// before this instant.
    pub(crate) deliver_after: Option<Instant>,
    pub(crate) payload: Bytes,
}

/// FNV-1a over the payload, seeded with the sequence number.
pub(crate) fn frame_checksum(payload: &[u8], seq: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seq.wrapping_mul(0x0100_0000_01b3);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Deterministically flips one payload bit (position derived from `seq`).
pub(crate) fn corrupt_payload(payload: &Bytes, seq: u64) -> Bytes {
    let mut v = payload.to_vec();
    if !v.is_empty() {
        let idx = (seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) as usize) % v.len();
        v[idx] ^= 1 << (seq % 8);
    }
    Bytes::from(v)
}

/// Enqueues into a bounded channel with backpressure accounting: a full
/// queue is recorded once, then the send blocks until room appears.
pub(crate) fn send_bounded(
    tx: &Sender<Envelope>,
    env: Envelope,
    to: PartyId,
    meter: &Meter,
) -> Result<(), TransportError> {
    match tx.try_send(env) {
        Ok(()) => Ok(()),
        Err(TrySendError::Disconnected(_)) => Err(TransportError::Disconnected(to)),
        Err(TrySendError::Full(env)) => {
            meter.record_fault(FaultEvent::BackpressureBlocked);
            tx.send(env).map_err(|_| TransportError::Disconnected(to))
        }
    }
}

/// The sending half of one directed link, over whichever backend the
/// network was built with.
pub(crate) enum LinkSender {
    /// Bounded channel straight into the peer's incoming queue.
    Channel(Sender<Envelope>),
    /// Bounded queue into a socket writer thread.
    Tcp(TcpLink),
}

impl LinkSender {
    /// Hands an envelope to the link, blocking under backpressure.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the peer's queue (in-proc)
    /// or the link's writer (TCP, after fabric shutdown) is gone.
    pub(crate) fn send(
        &self,
        env: Envelope,
        to: PartyId,
        meter: &Meter,
    ) -> Result<(), TransportError> {
        match self {
            LinkSender::Channel(tx) => send_bounded(tx, env, to, meter),
            LinkSender::Tcp(link) => link.send(env, to, meter),
        }
    }
}
