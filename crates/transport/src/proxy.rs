//! Socket-level chaos: a loopback TCP proxy that injects faults a
//! channel-based injector cannot express.
//!
//! A [`ChaosProxy`] sits between a dialing link writer and the real
//! listener of the receiving party. The forward (dialer → listener)
//! stream passes through the fault spec ([`SocketFault`]): it can be
//! severed mid-frame after a byte budget, stalled for a pause, or
//! fragmented into tiny writes. The reverse stream (acks, `HelloAck`)
//! is forwarded untouched. One-shot faults (kill, stall) fire exactly
//! once across the proxy's lifetime, so the connection a link
//! re-establishes after the fault passes cleanly — which is precisely
//! what lets tests assert that reconnect-and-resume, not luck, carried
//! the round to completion.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::faults::SocketFault;

/// Size of the write fragments used when `partial_writes` is active.
const FRAGMENT: usize = 3;

/// Fault bookkeeping shared by every connection through one proxy.
struct ChaosState {
    fault: SocketFault,
    /// Bytes forwarded dialer → listener so far, across connections.
    forwarded: AtomicU64,
    killed: AtomicBool,
    stalled: AtomicBool,
    tampered: AtomicBool,
    shutdown: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl ChaosState {
    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().push(clone);
        }
    }
}

/// A running chaos proxy; dropping it closes the listener and severs
/// every connection it is carrying.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ChaosState>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding every
    /// accepted connection to `target` under the given fault spec.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(target: SocketAddr, fault: SocketFault) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ChaosState {
            fault,
            forwarded: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
            tampered: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("chaos-proxy-accept".into())
            .spawn(move || run_acceptor(listener, target, accept_state))
            .expect("spawn chaos proxy acceptor");
        Ok(ChaosProxy { addr, state })
    }

    /// The address dialers should connect to instead of the real target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        for conn in self.state.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

fn run_acceptor(listener: TcpListener, target: SocketAddr, state: Arc<ChaosState>) {
    listener.set_nonblocking(true).expect("nonblocking chaos listener");
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(upstream) = TcpStream::connect(target) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let _ = client.set_nonblocking(false);
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                state.register(&client);
                state.register(&upstream);
                let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone())
                else {
                    continue;
                };
                let fwd_state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name("chaos-proxy-fwd".into())
                    .spawn(move || pump_forward(client_r, upstream, &fwd_state))
                    .expect("spawn chaos forward pump");
                std::thread::Builder::new()
                    .name("chaos-proxy-rev".into())
                    .spawn(move || pump_reverse(upstream_r, client))
                    .expect("spawn chaos reverse pump");
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Writes `chunk` downstream, optionally fragmented into tiny writes.
fn write_chunk(mut out: &TcpStream, chunk: &[u8], fragment: bool) -> std::io::Result<()> {
    if fragment {
        for piece in chunk.chunks(FRAGMENT) {
            out.write_all(piece)?;
            out.flush()?;
        }
        Ok(())
    } else {
        out.write_all(chunk)
    }
}

/// The chaotic direction: dialer → listener, with faults applied.
fn pump_forward(mut client: TcpStream, upstream: TcpStream, state: &ChaosState) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match client.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let before = state.forwarded.load(Ordering::SeqCst);

        if let Some(at) = state.fault.tamper_byte_at {
            if before <= at
                && at < before + n as u64
                && !state.tampered.swap(true, Ordering::SeqCst)
            {
                // Flip one byte in flight; the frame checksum downstream
                // detects it and the link tears down and resumes.
                buf[(at - before) as usize] ^= 0xFF;
            }
        }
        let chunk = &buf[..n];

        if let Some((at, pause)) = state.fault.stall {
            if before < at && before + n as u64 >= at && !state.stalled.swap(true, Ordering::SeqCst)
            {
                std::thread::sleep(pause);
            }
        }

        if let Some(kill_at) = state.fault.kill_after_bytes {
            if !state.killed.load(Ordering::SeqCst) && before + n as u64 > kill_at {
                // Forward only the bytes up to the kill point — a frame
                // in flight is torn in half — then sever both directions.
                state.killed.store(true, Ordering::SeqCst);
                let keep = kill_at.saturating_sub(before) as usize;
                let _ = write_chunk(&upstream, &chunk[..keep], state.fault.partial_writes);
                state.forwarded.fetch_add(keep as u64, Ordering::SeqCst);
                let _ = client.shutdown(Shutdown::Both);
                let _ = upstream.shutdown(Shutdown::Both);
                return;
            }
        }

        if write_chunk(&upstream, chunk, state.fault.partial_writes).is_err() {
            break;
        }
        state.forwarded.fetch_add(n as u64, Ordering::SeqCst);
    }
    let _ = client.shutdown(Shutdown::Both);
    let _ = upstream.shutdown(Shutdown::Both);
}

/// The clean direction: listener → dialer (acks and handshake replies).
fn pump_reverse(mut upstream: TcpStream, mut client: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match upstream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if client.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if stream.write_all(&buf[..n]).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn clean_proxy_forwards_both_ways() {
        let target = echo_server();
        let proxy = ChaosProxy::spawn(target, SocketFault::default()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut back = [0u8; 4];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"ping");
    }

    #[test]
    fn partial_writes_still_deliver_everything() {
        let target = echo_server();
        let fault = SocketFault { partial_writes: true, ..SocketFault::default() };
        let proxy = ChaosProxy::spawn(target, fault).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        conn.write_all(&payload).unwrap();
        let mut back = vec![0u8; payload.len()];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn tamper_flips_exactly_one_byte_then_later_connections_pass() {
        let target = echo_server();
        let fault = SocketFault { tamper_byte_at: Some(2), ..SocketFault::default() };
        let proxy = ChaosProxy::spawn(target, fault).unwrap();

        let mut first = TcpStream::connect(proxy.addr()).unwrap();
        first.write_all(b"abcdef").unwrap();
        let mut back = [0u8; 6];
        first.read_exact(&mut back).unwrap();
        let mut expect = *b"abcdef";
        expect[2] ^= 0xFF;
        assert_eq!(back, expect, "byte at offset 2 must be flipped, rest untouched");

        // One-shot: a later connection through the same proxy is clean.
        let mut second = TcpStream::connect(proxy.addr()).unwrap();
        second.write_all(b"again").unwrap();
        let mut clean = [0u8; 5];
        second.read_exact(&mut clean).unwrap();
        assert_eq!(&clean, b"again");
    }

    #[test]
    fn one_shot_faults_do_not_refire_after_reconnect() {
        // Regression: every one-shot fault (kill, stall, tamper) must fire
        // at most once across the proxy's lifetime, so the connection a
        // link re-establishes after the fault passes cleanly.
        let target = echo_server();
        let fault = SocketFault {
            kill_after_bytes: Some(4),
            stall: Some((1, Duration::from_millis(1))),
            tamper_byte_at: Some(2),
            ..SocketFault::default()
        };
        let proxy = ChaosProxy::spawn(target, fault).unwrap();

        // First connection eats all three faults: stall at byte 1, tamper
        // at byte 2, kill at byte 4.
        let mut first = TcpStream::connect(proxy.addr()).unwrap();
        first.write_all(b"abcdefgh").unwrap();
        first.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = Vec::new();
        let got = first.read_to_end(&mut sink).unwrap_or(sink.len());
        assert!(got <= 4, "kill must truncate the stream, got {got} bytes");

        // Reconnections pass untouched, repeatedly.
        for round in 0..3u8 {
            let mut conn = TcpStream::connect(proxy.addr()).unwrap();
            let payload = [round; 16];
            conn.write_all(&payload).unwrap();
            let mut back = [0u8; 16];
            conn.read_exact(&mut back).unwrap();
            assert_eq!(back, payload, "reconnect #{round} must be clean");
        }
    }

    #[test]
    fn kill_fires_once_then_later_connections_pass() {
        let target = echo_server();
        let fault = SocketFault { kill_after_bytes: Some(2), ..SocketFault::default() };
        let proxy = ChaosProxy::spawn(target, fault).unwrap();

        let mut first = TcpStream::connect(proxy.addr()).unwrap();
        first.write_all(b"abcdef").unwrap();
        first.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = Vec::new();
        // At most the 2 pre-kill bytes come back before the sever.
        let got = first.read_to_end(&mut sink).unwrap_or(sink.len());
        assert!(got <= 2, "kill must truncate the stream, got {got} bytes");

        let mut second = TcpStream::connect(proxy.addr()).unwrap();
        second.write_all(b"again").unwrap();
        let mut back = [0u8; 5];
        second.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"again");
    }
}
