//! Deterministic fault injection for the in-process network.
//!
//! A [`FaultPlan`] describes which messages a [`crate::Network`] should
//! drop, delay, duplicate or corrupt, and which parties crash at which
//! protocol step. Decisions are a pure function of the plan's seed and
//! the message coordinates `(from, to, step, seq)`, so a given plan
//! injects exactly the same faults on every run regardless of thread
//! scheduling — chaos tests and benches are reproducible.
//!
//! Faults are applied on the *send* side:
//!
//! * **Drop** — the envelope is silently discarded; the receiver sees
//!   nothing and eventually times out.
//! * **Delay** — the envelope carries a not-before instant; the receiver
//!   honors it before delivery (head-of-line, like a slow link), counting
//!   the wait against its receive deadline.
//! * **Duplicate** — the envelope is enqueued a second time with the same
//!   sequence number; the receiver's dedup layer suppresses the copy.
//! * **Corrupt** — payload bits are flipped *after* the frame checksum is
//!   computed, so the receiver reliably detects the damage and surfaces
//!   [`crate::TransportError::Corrupt`].
//! * **Crash** — from the given step onward the party's sends vanish
//!   silently (the crashed party does not know it is dead; its peers
//!   observe only missing messages).
//!
//! The TCP backend adds a *socket* fault layer below all of the above:
//! a [`SocketFault`] attached to a directed link routes that link
//! through a chaos proxy ([`crate::ChaosProxy`]) that severs the
//! connection mid-frame, stalls reads, or fragments writes. Socket
//! faults exercise the transport's reconnect-and-resume machinery and
//! are ignored by the in-proc backend (which has no sockets to break).

use std::collections::BTreeMap;
use std::time::Duration;

use crate::metrics::{LinkKind, Step};
use crate::network::PartyId;

/// What the injector decided for one (logical) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Discard the envelope instead of enqueueing it.
    pub drop: bool,
    /// Deliver no earlier than this far in the future.
    pub delay: Option<Duration>,
    /// Enqueue this many extra copies (same sequence number).
    pub duplicates: u32,
    /// Flip payload bits after checksumming.
    pub corrupt: bool,
}

impl FaultDecision {
    /// A decision that leaves the message untouched.
    pub fn clean() -> FaultDecision {
        FaultDecision::default()
    }

    /// True if any fault fires.
    pub fn is_faulty(&self) -> bool {
        self.drop || self.delay.is_some() || self.duplicates > 0 || self.corrupt
    }
}

/// Socket-level chaos injected on one directed TCP link (applied by a
/// [`crate::ChaosProxy`] sitting between the dialer and the listener).
/// All byte counts are measured on the dialer → listener stream,
/// handshake bytes included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SocketFault {
    /// Sever the connection (both directions, mid-frame) once this many
    /// bytes have been forwarded. Fires once; subsequent reconnections
    /// pass cleanly, so resume machinery is what gets tested.
    pub kill_after_bytes: Option<u64>,
    /// Stall forwarding for the given pause once this many bytes have
    /// been forwarded (fires once) — models a hung read.
    pub stall: Option<(u64, Duration)>,
    /// Fragment every forwarded write into tiny chunks, exercising
    /// short-read handling in the framing layer.
    pub partial_writes: bool,
    /// Byzantine byte tampering: XOR the byte at this forwarded-stream
    /// offset with `0xFF` (fires once — a man-in-the-middle altering a
    /// frame in flight). The link's frame checksum catches the damage;
    /// the connection established after the resulting teardown passes
    /// cleanly, like the other one-shot faults.
    pub tamper_byte_at: Option<u64>,
}

/// A deterministic Byzantine deviation a server commits at one protocol
/// step. Unlike the crash/omission faults above, these model a *covert*
/// server that keeps the protocol running but computes or reports the
/// wrong thing; they are realized value-aware inside the SMC step
/// implementations (driven by [`FaultPlan::byzantine_action`]) so the
/// corruption stays silent at the transport layer and only the audit
/// layer (`smc::audit`) can catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ByzantineAction {
    /// Send a frame on the wire that differs from the frame the server
    /// attests to in its audit transcript — different stories to
    /// different observers.
    Equivocate,
    /// Use a permutation other than the one the committed seed derives.
    TamperPermutation,
    /// Skip one of the committed masks (use zero), leaking the value the
    /// mask was supposed to hide.
    DropMask,
    /// Replace a fresh protocol frame with a stale, previously sent one.
    ReplayStaleFrame,
}

/// A deterministic, seedable schedule of transport faults.
///
/// Probabilities are evaluated against a seeded per-message hash, not a
/// shared RNG, so two networks built from the same plan observe identical
/// faults even under different thread interleavings.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    delay_prob: f64,
    max_delay: Duration,
    duplicate_prob: f64,
    corrupt_prob: f64,
    /// Party → first step at which the party is dead.
    crashes: BTreeMap<PartyId, Step>,
    /// Party → first step at which a crashed party is alive again. A
    /// party with a crash entry but no revive entry stays dead forever.
    revives: BTreeMap<PartyId, Step>,
    /// When set, probabilistic faults only hit this link direction.
    link_filter: Option<LinkKind>,
    /// When set, probabilistic faults only hit this step.
    step_filter: Option<Step>,
    /// Socket-level chaos per directed link, applied only by the TCP
    /// backend (via a chaos proxy on that link).
    socket_faults: BTreeMap<(PartyId, PartyId), SocketFault>,
    /// (party, step) → covert deviation the party commits at that step,
    /// realized value-aware inside the SMC step implementations.
    byzantine: BTreeMap<(PartyId, Step), ByzantineAction>,
}

impl FaultPlan {
    /// A plan with no faults, rooted at `seed` (the seed matters once
    /// probabilistic faults are enabled).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            crashes: BTreeMap::new(),
            revives: BTreeMap::new(),
            link_filter: None,
            step_filter: None,
            socket_faults: BTreeMap::new(),
            byzantine: BTreeMap::new(),
        }
    }

    /// Drops each eligible message with probability `prob`.
    #[must_use]
    pub fn drop_messages(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "drop probability out of range");
        self.drop_prob = prob;
        self
    }

    /// Delays each eligible message with probability `prob`, by up to
    /// `max_delay` (uniform, deterministic per message).
    #[must_use]
    pub fn delay_messages(mut self, prob: f64, max_delay: Duration) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "delay probability out of range");
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Duplicates each eligible message with probability `prob`.
    #[must_use]
    pub fn duplicate_messages(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "duplicate probability out of range");
        self.duplicate_prob = prob;
        self
    }

    /// Corrupts each eligible message's payload with probability `prob`.
    #[must_use]
    pub fn corrupt_messages(mut self, prob: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&prob), "corrupt probability out of range");
        self.corrupt_prob = prob;
        self
    }

    /// Crashes `party` at the beginning of `step`: every send it attempts
    /// at that step or later silently disappears.
    #[must_use]
    pub fn crash(mut self, party: PartyId, step: Step) -> FaultPlan {
        self.crashes.insert(party, step);
        self
    }

    /// Revives a previously [`Self::crash`]ed party `steps` protocol steps
    /// after its crash point: the crash becomes a blackout window rather
    /// than a permanent death, modeling crash-then-restart. With
    /// `steps == 0` the crash never manifests; if the window extends past
    /// [`Step::Restoration`] the party stays dead for the whole round.
    ///
    /// # Panics
    ///
    /// Panics if `party` has no scheduled crash.
    #[must_use]
    pub fn revive_after(mut self, party: PartyId, steps: usize) -> FaultPlan {
        let at = *self
            .crashes
            .get(&party)
            .unwrap_or_else(|| panic!("revive_after({party:?}) without a scheduled crash"));
        match Step::from_ordinal((at.ordinal() as usize).saturating_add(steps).min(255) as u8) {
            Some(back) => {
                self.revives.insert(party, back);
            }
            // Window runs past the last step: equivalent to crash-forever.
            None => {
                self.revives.remove(&party);
            }
        }
        self
    }

    /// Removes any crash (and revive) scheduled for `party`, as when a
    /// supervisor restarts a crashed server before retrying a round.
    #[must_use]
    pub fn without_crash(mut self, party: PartyId) -> FaultPlan {
        self.crashes.remove(&party);
        self.revives.remove(&party);
        self
    }

    /// Restricts probabilistic faults to one link direction (crashes are
    /// unaffected).
    #[must_use]
    pub fn only_link(mut self, link: LinkKind) -> FaultPlan {
        self.link_filter = Some(link);
        self
    }

    /// Restricts probabilistic faults to one protocol step (crashes are
    /// unaffected).
    #[must_use]
    pub fn only_step(mut self, step: Step) -> FaultPlan {
        self.step_filter = Some(step);
        self
    }

    /// Severs the TCP connection carrying `from → to` traffic once
    /// `after_bytes` have crossed it (mid-frame, both directions). The
    /// kill fires once; the link's writer is expected to reconnect and
    /// replay unacknowledged frames. Ignored by the in-proc backend.
    #[must_use]
    pub fn sever_connection(mut self, from: PartyId, to: PartyId, after_bytes: u64) -> FaultPlan {
        self.socket_faults.entry((from, to)).or_default().kill_after_bytes = Some(after_bytes);
        self
    }

    /// Stalls the `from → to` TCP stream for `pause` once `after_bytes`
    /// have crossed it (fires once). Ignored by the in-proc backend.
    #[must_use]
    pub fn stall_connection(
        mut self,
        from: PartyId,
        to: PartyId,
        after_bytes: u64,
        pause: Duration,
    ) -> FaultPlan {
        self.socket_faults.entry((from, to)).or_default().stall = Some((after_bytes, pause));
        self
    }

    /// Fragments every write on the `from → to` TCP stream into tiny
    /// chunks. Ignored by the in-proc backend.
    #[must_use]
    pub fn partial_writes(mut self, from: PartyId, to: PartyId) -> FaultPlan {
        self.socket_faults.entry((from, to)).or_default().partial_writes = true;
        self
    }

    /// XORs the byte at forwarded-stream offset `at_byte` on the
    /// `from → to` TCP stream with `0xFF` (fires once) — a wire-level
    /// man-in-the-middle. The frame checksum detects the damage and the
    /// link tears down and resumes. Ignored by the in-proc backend.
    #[must_use]
    pub fn tamper_connection(mut self, from: PartyId, to: PartyId, at_byte: u64) -> FaultPlan {
        self.socket_faults.entry((from, to)).or_default().tamper_byte_at = Some(at_byte);
        self
    }

    /// Schedules `party` to [equivocate](ByzantineAction::Equivocate) at
    /// `step`: the frame it puts on the wire differs from the frame it
    /// attests to in its audit transcript.
    #[must_use]
    pub fn equivocate(mut self, party: PartyId, step: Step) -> FaultPlan {
        self.byzantine.insert((party, step), ByzantineAction::Equivocate);
        self
    }

    /// Schedules `party` to apply a permutation other than the one its
    /// committed seed derives at `step`.
    #[must_use]
    pub fn tamper_permutation(mut self, party: PartyId, step: Step) -> FaultPlan {
        self.byzantine.insert((party, step), ByzantineAction::TamperPermutation);
        self
    }

    /// Schedules `party` to skip one committed mask (use zero) at `step`.
    #[must_use]
    pub fn drop_mask(mut self, party: PartyId, step: Step) -> FaultPlan {
        self.byzantine.insert((party, step), ByzantineAction::DropMask);
        self
    }

    /// Schedules `party` to replay a stale, previously sent frame in
    /// place of the fresh one at `step`.
    #[must_use]
    pub fn replay_stale_frame(mut self, party: PartyId, step: Step) -> FaultPlan {
        self.byzantine.insert((party, step), ByzantineAction::ReplayStaleFrame);
        self
    }

    /// The covert deviation scheduled for `party` at `step`, if any.
    pub fn byzantine_action(&self, party: PartyId, step: Step) -> Option<ByzantineAction> {
        self.byzantine.get(&(party, step)).copied()
    }

    /// True if any covert deviation is scheduled on the plan.
    pub fn has_byzantine(&self) -> bool {
        !self.byzantine.is_empty()
    }

    /// The socket fault attached to the directed link `from → to`, if any.
    pub fn socket_fault(&self, from: PartyId, to: PartyId) -> Option<SocketFault> {
        self.socket_faults.get(&(from, to)).copied()
    }

    /// All scheduled socket faults, keyed by directed link.
    pub fn socket_faults(&self) -> &BTreeMap<(PartyId, PartyId), SocketFault> {
        &self.socket_faults
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The step at which `party` crashes, if scheduled.
    pub fn crash_step(&self, party: PartyId) -> Option<Step> {
        self.crashes.get(&party).copied()
    }

    /// The step at which a crashed `party` comes back, if scheduled via
    /// [`Self::revive_after`].
    pub fn revive_step(&self, party: PartyId) -> Option<Step> {
        self.revives.get(&party).copied()
    }

    /// True if `party` is dead at `step` (its sends must vanish): at or
    /// past its crash step and, when a revival is scheduled, before the
    /// revival step.
    pub fn is_crashed(&self, party: PartyId, step: Step) -> bool {
        self.crashes.get(&party).is_some_and(|&at| {
            step >= at && self.revives.get(&party).is_none_or(|&back| step < back)
        })
    }

    /// The deterministic decision for message `seq` from `from` to `to`
    /// at `step`. Crash handling is separate — see [`Self::is_crashed`].
    pub fn decide(&self, from: PartyId, to: PartyId, step: Step, seq: u64) -> FaultDecision {
        if let Some(link) = self.link_filter {
            if from.link_to(to) != link {
                return FaultDecision::clean();
            }
        }
        if let Some(only) = self.step_filter {
            if step != only {
                return FaultDecision::clean();
            }
        }
        let base = self.message_hash(from, to, step, seq);
        let drop = unit(mix(base, 0x01)) < self.drop_prob;
        if drop {
            // A dropped message cannot also be delayed/duplicated.
            return FaultDecision { drop: true, ..FaultDecision::clean() };
        }
        let delay = if unit(mix(base, 0x02)) < self.delay_prob && !self.max_delay.is_zero() {
            let nanos = self.max_delay.as_nanos().max(1) as u64;
            Some(Duration::from_nanos(1 + mix(base, 0x03) % nanos))
        } else {
            None
        };
        let duplicates = u32::from(unit(mix(base, 0x04)) < self.duplicate_prob);
        let corrupt = unit(mix(base, 0x05)) < self.corrupt_prob;
        FaultDecision { drop: false, delay, duplicates, corrupt }
    }

    fn message_hash(&self, from: PartyId, to: PartyId, step: Step, seq: u64) -> u64 {
        let mut h = self.seed ^ 0x9e3779b97f4a7c15;
        for word in [party_tag(from), party_tag(to), step_tag(step), seq] {
            h = mix(h, word);
        }
        h
    }
}

fn party_tag(p: PartyId) -> u64 {
    match p {
        PartyId::Server1 => 1,
        PartyId::Server2 => 2,
        PartyId::User(u) => 3 + u as u64,
    }
}

fn step_tag(step: Step) -> u64 {
    Step::ALL.iter().position(|&s| s == step).unwrap_or(usize::MAX) as u64
}

/// SplitMix64-style avalanche combining `h` and `salt`.
fn mix(h: u64, salt: u64) -> u64 {
    let mut z = h ^ salt.wrapping_mul(0xff51afd7ed558ccd);
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Maps a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_faults() {
        let plan = FaultPlan::new(42);
        for seq in 0..100 {
            let d = plan.decide(PartyId::User(0), PartyId::Server1, Step::SecureSumVotes, seq);
            assert!(!d.is_faulty());
        }
        assert!(!plan.is_crashed(PartyId::User(0), Step::Restoration));
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(7).drop_messages(0.5).delay_messages(0.5, Duration::from_millis(3));
        let b = a.clone();
        for seq in 0..200 {
            let from = PartyId::User((seq % 5) as usize);
            let d1 = a.decide(from, PartyId::Server2, Step::SecureSumNoisy, seq);
            let d2 = b.decide(from, PartyId::Server2, Step::SecureSumNoisy, seq);
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let plan = FaultPlan::new(11).drop_messages(0.3);
        let drops = (0..2000)
            .filter(|&seq| {
                plan.decide(PartyId::User(1), PartyId::Server1, Step::SecureSumVotes, seq).drop
            })
            .count();
        assert!((400..=800).contains(&drops), "expected ~600 drops, got {drops}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1).drop_messages(0.5);
        let b = FaultPlan::new(2).drop_messages(0.5);
        let disagreements = (0..256)
            .filter(|&seq| {
                let p = PartyId::User(0);
                a.decide(p, PartyId::Server1, Step::SecureSumVotes, seq).drop
                    != b.decide(p, PartyId::Server1, Step::SecureSumVotes, seq).drop
            })
            .count();
        assert!(disagreements > 50, "seeds should decorrelate, got {disagreements}");
    }

    #[test]
    fn crash_is_a_step_threshold() {
        let plan = FaultPlan::new(3).crash(PartyId::User(2), Step::SecureSumNoisy);
        assert!(!plan.is_crashed(PartyId::User(2), Step::SecureSumVotes));
        assert!(!plan.is_crashed(PartyId::User(2), Step::ThresholdCheck));
        assert!(plan.is_crashed(PartyId::User(2), Step::SecureSumNoisy));
        assert!(plan.is_crashed(PartyId::User(2), Step::Restoration));
        assert!(!plan.is_crashed(PartyId::User(1), Step::Restoration));
        assert_eq!(plan.crash_step(PartyId::User(2)), Some(Step::SecureSumNoisy));
    }

    #[test]
    fn revive_after_turns_crash_into_a_window() {
        let plan = FaultPlan::new(21)
            .crash(PartyId::Server1, Step::BlindPermute1)
            .revive_after(PartyId::Server1, 2);
        assert!(!plan.is_crashed(PartyId::Server1, Step::SecureSumVotes));
        assert!(plan.is_crashed(PartyId::Server1, Step::BlindPermute1));
        assert!(plan.is_crashed(PartyId::Server1, Step::CompareRank));
        assert!(!plan.is_crashed(PartyId::Server1, Step::ThresholdCheck));
        assert!(!plan.is_crashed(PartyId::Server1, Step::Restoration));
        assert_eq!(plan.revive_step(PartyId::Server1), Some(Step::ThresholdCheck));
    }

    #[test]
    fn revive_past_last_step_is_crash_forever() {
        let plan = FaultPlan::new(22)
            .crash(PartyId::User(0), Step::CompareNoisyRank)
            .revive_after(PartyId::User(0), 5);
        assert!(plan.is_crashed(PartyId::User(0), Step::Restoration));
        assert_eq!(plan.revive_step(PartyId::User(0)), None);
    }

    #[test]
    fn revive_after_zero_steps_never_crashes() {
        let plan = FaultPlan::new(23)
            .crash(PartyId::User(1), Step::SecureSumVotes)
            .revive_after(PartyId::User(1), 0);
        for step in Step::ALL {
            assert!(!plan.is_crashed(PartyId::User(1), step), "{step:?}");
        }
    }

    #[test]
    #[should_panic(expected = "without a scheduled crash")]
    fn revive_without_crash_panics() {
        let _ = FaultPlan::new(24).revive_after(PartyId::Server2, 1);
    }

    #[test]
    fn without_crash_clears_crash_and_revive() {
        let plan = FaultPlan::new(25)
            .crash(PartyId::Server2, Step::Setup)
            .revive_after(PartyId::Server2, 3)
            .crash(PartyId::User(4), Step::SecureSumNoisy)
            .without_crash(PartyId::Server2);
        for step in Step::ALL {
            assert!(!plan.is_crashed(PartyId::Server2, step), "{step:?}");
        }
        assert_eq!(plan.crash_step(PartyId::Server2), None);
        assert_eq!(plan.revive_step(PartyId::Server2), None);
        // Other parties' crashes survive the removal.
        assert!(plan.is_crashed(PartyId::User(4), Step::SecureSumNoisy));
    }

    #[test]
    fn filters_scope_probabilistic_faults() {
        let plan = FaultPlan::new(9)
            .drop_messages(1.0)
            .only_link(LinkKind::UserToServer)
            .only_step(Step::SecureSumVotes);
        let hit = plan.decide(PartyId::User(0), PartyId::Server1, Step::SecureSumVotes, 0);
        assert!(hit.drop);
        let wrong_link = plan.decide(PartyId::Server1, PartyId::Server2, Step::SecureSumVotes, 0);
        assert!(!wrong_link.is_faulty());
        let wrong_step = plan.decide(PartyId::User(0), PartyId::Server1, Step::SecureSumNoisy, 0);
        assert!(!wrong_step.is_faulty());
    }

    #[test]
    fn drop_excludes_other_faults() {
        let plan =
            FaultPlan::new(5).drop_messages(1.0).duplicate_messages(1.0).corrupt_messages(1.0);
        let d = plan.decide(PartyId::User(0), PartyId::Server1, Step::SecureSumVotes, 1);
        assert!(d.drop && d.duplicates == 0 && !d.corrupt);
    }

    #[test]
    fn socket_faults_accumulate_per_link() {
        let plan = FaultPlan::new(30)
            .sever_connection(PartyId::Server1, PartyId::Server2, 1024)
            .partial_writes(PartyId::Server1, PartyId::Server2)
            .stall_connection(PartyId::User(0), PartyId::Server1, 64, Duration::from_millis(5));
        let s12 = plan.socket_fault(PartyId::Server1, PartyId::Server2).unwrap();
        assert_eq!(s12.kill_after_bytes, Some(1024));
        assert!(s12.partial_writes);
        assert_eq!(s12.stall, None);
        let u0 = plan.socket_fault(PartyId::User(0), PartyId::Server1).unwrap();
        assert_eq!(u0.stall, Some((64, Duration::from_millis(5))));
        assert_eq!(u0.kill_after_bytes, None);
        assert_eq!(plan.socket_fault(PartyId::Server2, PartyId::Server1), None);
        assert_eq!(plan.socket_faults().len(), 2);
    }

    #[test]
    fn byzantine_actions_accumulate_per_party_step() {
        let plan = FaultPlan::new(31)
            .equivocate(PartyId::Server1, Step::BlindPermute1)
            .tamper_permutation(PartyId::Server2, Step::BlindPermute2)
            .drop_mask(PartyId::Server1, Step::Restoration)
            .replay_stale_frame(PartyId::Server2, Step::Restoration);
        assert_eq!(
            plan.byzantine_action(PartyId::Server1, Step::BlindPermute1),
            Some(ByzantineAction::Equivocate)
        );
        assert_eq!(
            plan.byzantine_action(PartyId::Server2, Step::BlindPermute2),
            Some(ByzantineAction::TamperPermutation)
        );
        assert_eq!(
            plan.byzantine_action(PartyId::Server1, Step::Restoration),
            Some(ByzantineAction::DropMask)
        );
        assert_eq!(
            plan.byzantine_action(PartyId::Server2, Step::Restoration),
            Some(ByzantineAction::ReplayStaleFrame)
        );
        assert_eq!(plan.byzantine_action(PartyId::Server1, Step::BlindPermute2), None);
        assert!(plan.has_byzantine());
        assert!(!FaultPlan::new(31).has_byzantine());
    }

    #[test]
    fn later_byzantine_builder_overrides_same_slot() {
        let plan = FaultPlan::new(32)
            .equivocate(PartyId::Server1, Step::BlindPermute1)
            .drop_mask(PartyId::Server1, Step::BlindPermute1);
        assert_eq!(
            plan.byzantine_action(PartyId::Server1, Step::BlindPermute1),
            Some(ByzantineAction::DropMask)
        );
    }

    #[test]
    fn tamper_connection_sets_socket_fault_byte() {
        let plan = FaultPlan::new(33)
            .tamper_connection(PartyId::Server1, PartyId::Server2, 512)
            .partial_writes(PartyId::Server1, PartyId::Server2);
        let s12 = plan.socket_fault(PartyId::Server1, PartyId::Server2).unwrap();
        assert_eq!(s12.tamper_byte_at, Some(512));
        assert!(s12.partial_writes);
        assert_eq!(plan.socket_fault(PartyId::Server2, PartyId::Server1), None);
    }

    #[test]
    fn delay_bounded_by_max() {
        let plan = FaultPlan::new(13).delay_messages(1.0, Duration::from_millis(5));
        for seq in 0..100 {
            let d = plan.decide(PartyId::User(0), PartyId::Server1, Step::SecureSumVotes, seq);
            let delay = d.delay.expect("delay must fire at p=1");
            assert!(delay <= Duration::from_millis(5));
            assert!(delay > Duration::ZERO);
        }
    }
}
