//! Real socket transport: loopback TCP links with handshake, heartbeats,
//! reconnect-and-resume and acknowledged delivery.
//!
//! Built on `std::net` only (thread-per-connection, no async runtime),
//! so it runs in offline sandboxes. Each party binds one loopback
//! listener; a directed link `A → B` is a TCP connection dialed lazily by
//! `A` on its first send. On the wire every frame is `[u32 LE length]`
//! followed by a [`Wire`]-encoded [`Frame`] body:
//!
//! * **Hello / HelloAck** — a versioned session handshake. `Hello`
//!   carries a magic tag, the protocol version, the network's session id
//!   and the claimed `(from, to)` identities; the receiver rejects
//!   mismatches by dropping the connection. `HelloAck` answers with the
//!   highest sequence number the receiver has already accepted on this
//!   link, which is where resume starts. A link is *not* tied to a
//!   single round: the session id identifies a network instance, and the
//!   multi-session reactor (`core::reactor`) multiplexes many concurrent
//!   rounds over shared infrastructure via session-tagged frames
//!   ([`crate::session`]).
//! * **Data** — one [`Envelope`]: step, per-link sequence number, the
//!   sender-side frame checksum, any injected delivery delay (encoded as
//!   remaining nanoseconds) and the payload. The receiver answers each
//!   accepted `Data` frame with an **Ack**, which prunes the sender's
//!   retransmit buffer.
//! * **Heartbeat** — emitted by an idle link writer every
//!   [`TcpConfig::heartbeat`]; any inbound frame refreshes the sender's
//!   liveness record. Liveness is tracked per *(peer, session)*, not per
//!   connection: on a multiplexed link one idle session going stale
//!   never fast-fails a healthy neighbor session's receives. A peer
//!   silent past [`TcpConfig::liveness`] in a session is declared dead
//!   there and that session's pending receive fails over to the
//!   existing dropout path ([`crate::TransportError::Timeout`]).
//!
//! **Reconnect-and-resume**: a link writer that loses its connection
//! (write failure, severed socket, torn frame) redials with exponential
//! backoff, re-runs the handshake and replays every frame newer than the
//! peer's acknowledged sequence number. The receive side dedups on
//! sequence numbers (exactly the logic the in-proc mesh already uses),
//! so a mid-frame connection kill is invisible above the transport:
//! same delivery, same order, same consensus fingerprint.
//!
//! Frames never outrun memory: link queues are bounded (backpressure,
//! see [`crate::link`]), a reader blocked on a slow endpoint stops
//! reading its socket (TCP flow control does the rest), and declared
//! frame lengths are capped at [`MAX_FRAME`] so a garbage prefix cannot
//! trigger a huge allocation.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::faults::FaultPlan;
use crate::link::{send_bounded, Envelope, LinkSender};
use crate::metrics::{FaultEvent, Meter, Step};
use crate::network::{PartyId, TransportError};
use crate::proxy::ChaosProxy;
use crate::wire::{Wire, WireError};

/// Leading tag of every `Hello`, so a stray connection is rejected on
/// its first bytes.
const MAGIC: u32 = 0x434E_5350; // "CNSP"

/// Handshake protocol version; mismatches drop the connection.
const VERSION: u32 = 1;

/// Upper bound on a declared frame length — matches the wire codec's
/// sanity bound, far above any legitimate protocol message.
const MAX_FRAME: u32 = 1 << 28;

/// Tuning knobs of the TCP backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// How often an idle link writer emits a heartbeat frame.
    pub heartbeat: Duration,
    /// How long a connected peer may stay silent before it is declared
    /// dead and pending receives fail over to the dropout path.
    pub liveness: Duration,
    /// Initial redial delay after a lost connection (doubles per failed
    /// attempt, capped at 250 ms).
    pub connect_backoff: Duration,
    /// How long a handshake waits for the peer's `Hello`/`HelloAck`.
    pub handshake_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            heartbeat: Duration::from_millis(25),
            liveness: Duration::from_secs(2),
            connect_backoff: Duration::from_millis(5),
            handshake_timeout: Duration::from_secs(1),
        }
    }
}

impl TcpConfig {
    /// Aggressive loopback tuning: failures surface in milliseconds.
    /// Pairs with [`crate::TimeoutPolicy::fast_local`] in tests and CI
    /// smokes.
    pub fn fast_local() -> TcpConfig {
        TcpConfig {
            heartbeat: Duration::from_millis(10),
            liveness: Duration::from_millis(400),
            connect_backoff: Duration::from_millis(2),
            handshake_timeout: Duration::from_millis(500),
        }
    }
}

/// One frame on a TCP link.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Frame {
    /// Session handshake: magic + version + session id + identities.
    Hello { version: u32, session: u64, from: PartyId, to: PartyId },
    /// Handshake answer: highest sequence number already accepted on
    /// this link — where a resuming sender restarts its replay.
    HelloAck { acked_seq: u64 },
    /// One envelope. `delay_nanos` is the remaining injected delivery
    /// delay at write time (0 = none).
    Data { step: Step, seq: u64, checksum: u64, delay_nanos: u64, payload: Bytes },
    /// Acknowledges the `Data` frame with this sequence number.
    Ack { seq: u64 },
    /// Keep-alive from an idle link writer.
    Heartbeat,
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_DATA: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;

impl Wire for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Hello { version, session, from, to } => {
                TAG_HELLO.encode(buf);
                MAGIC.encode(buf);
                version.encode(buf);
                session.encode(buf);
                from.encode(buf);
                to.encode(buf);
            }
            Frame::HelloAck { acked_seq } => {
                TAG_HELLO_ACK.encode(buf);
                acked_seq.encode(buf);
            }
            Frame::Data { step, seq, checksum, delay_nanos, payload } => {
                TAG_DATA.encode(buf);
                step.encode(buf);
                seq.encode(buf);
                checksum.encode(buf);
                delay_nanos.encode(buf);
                (payload.len() as u32).encode(buf);
                buf.put_slice(payload);
            }
            Frame::Ack { seq } => {
                TAG_ACK.encode(buf);
                seq.encode(buf);
            }
            Frame::Heartbeat => TAG_HEARTBEAT.encode(buf),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            TAG_HELLO => {
                let magic = u32::decode(buf)?;
                if magic != MAGIC {
                    return Err(WireError::Malformed("hello magic mismatch"));
                }
                Ok(Frame::Hello {
                    version: u32::decode(buf)?,
                    session: u64::decode(buf)?,
                    from: PartyId::decode(buf)?,
                    to: PartyId::decode(buf)?,
                })
            }
            TAG_HELLO_ACK => Ok(Frame::HelloAck { acked_seq: u64::decode(buf)? }),
            TAG_DATA => {
                let step = Step::decode(buf)?;
                let seq = u64::decode(buf)?;
                let checksum = u64::decode(buf)?;
                let delay_nanos = u64::decode(buf)?;
                let len = u32::decode(buf)? as u64;
                if len > u64::from(MAX_FRAME) {
                    return Err(WireError::LengthOverflow(len));
                }
                if (buf.remaining() as u64) < len {
                    return Err(WireError::Truncated);
                }
                let payload = buf.slice(0..len as usize);
                buf.advance(len as usize);
                Ok(Frame::Data { step, seq, checksum, delay_nanos, payload })
            }
            TAG_ACK => Ok(Frame::Ack { seq: u64::decode(buf)? }),
            TAG_HEARTBEAT => Ok(Frame::Heartbeat),
            tag => Err(WireError::InvalidTag(tag)),
        }
    }
}

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let body = frame.to_bytes();
    debug_assert!(body.len() as u64 <= u64::from(MAX_FRAME));
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed frame. A torn tail (EOF mid-frame) surfaces
/// as the underlying `UnexpectedEof`; a garbage prefix or undecodable
/// body as `InvalidData`.
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds bounds"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Frame::from_bytes(Bytes::from(body))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Per-endpoint record of when each connected peer was last heard from
/// (any frame counts, heartbeats included). Consulted by the receive
/// loop to convert a silent peer into a timely dropout.
///
/// Records are keyed per *(peer, session)*, not per connection: one
/// physical link may multiplex several sessions, and an idle session
/// whose deadline lapses must not fast-fail the receives of a healthy
/// neighbor session sharing the socket.
pub(crate) struct Liveness {
    deadline: Duration,
    poll: Duration,
    last: Mutex<HashMap<(PartyId, u64), Instant>>,
    /// How many receives each session has failed over to the dropout
    /// path on a lapsed liveness deadline.
    expirations: Mutex<HashMap<u64, u64>>,
}

impl Liveness {
    fn new(cfg: &TcpConfig) -> Liveness {
        Liveness {
            deadline: cfg.liveness,
            poll: cfg.heartbeat.clamp(Duration::from_millis(1), Duration::from_millis(25)),
            last: Mutex::new(HashMap::new()),
            expirations: Mutex::new(HashMap::new()),
        }
    }

    fn touch(&self, from: PartyId, session: u64) {
        self.last.lock().insert((from, session), Instant::now());
    }

    /// True when `from` once connected in `session` and has now been
    /// silent past the deadline there. A peer that never connected is
    /// governed by the receive policy alone, and a peer stale in one
    /// session stays live in every other.
    pub(crate) fn expired(&self, from: PartyId, session: u64) -> bool {
        self.last.lock().get(&(from, session)).is_some_and(|at| at.elapsed() > self.deadline)
    }

    /// Records one liveness-expiry failover for `session`.
    pub(crate) fn note_expired(&self, session: u64) {
        *self.expirations.lock().entry(session).or_insert(0) += 1;
    }

    /// Liveness-expiry failovers recorded for `session`.
    pub(crate) fn expired_count(&self, session: u64) -> u64 {
        self.expirations.lock().get(&session).copied().unwrap_or(0)
    }

    /// How often a blocking receive should wake to re-check liveness.
    pub(crate) fn poll_interval(&self) -> Duration {
        self.poll
    }
}

/// State shared with every fabric thread (acceptors, readers, writers):
/// the shutdown flag and the registry of open sockets to unblock on
/// shutdown.
struct FabricShared {
    shutdown: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl FabricShared {
    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().push(clone);
        }
    }
}

/// The socket fabric of one network: listener addresses, chaos proxies
/// and the shutdown handle. Dropping the last owner (the [`crate::Network`]
/// and every taken endpoint) severs all connections and winds the
/// fabric's threads down.
pub(crate) struct TcpFabric {
    shared: Arc<FabricShared>,
    /// Real listener address of each party (dialers may be pointed at a
    /// chaos proxy instead — see [`ChaosProxy`]).
    pub(crate) addrs: HashMap<PartyId, SocketAddr>,
    _proxies: Vec<ChaosProxy>,
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().iter() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Everything a link writer needs to (re)establish its connection.
#[derive(Clone)]
struct LinkCtx {
    from: PartyId,
    to: PartyId,
    dial: SocketAddr,
    session: u64,
    cfg: TcpConfig,
    meter: Arc<Meter>,
    shared: Arc<FabricShared>,
}

/// The sending half of one directed TCP link: a bounded queue into a
/// lazily spawned writer thread that owns the socket.
pub(crate) struct TcpLink {
    ctx: LinkCtx,
    capacity: usize,
    queue: Mutex<Option<Sender<Envelope>>>,
}

impl TcpLink {
    /// Enqueues an envelope for the writer, spawning it on first use.
    pub(crate) fn send(
        &self,
        env: Envelope,
        to: PartyId,
        meter: &Meter,
    ) -> Result<(), TransportError> {
        let tx = {
            let mut queue = self.queue.lock();
            match &*queue {
                Some(tx) => tx.clone(),
                None => {
                    let (tx, rx) = bounded(self.capacity);
                    let ctx = self.ctx.clone();
                    std::thread::Builder::new()
                        .name(format!("tcp-writer-{}-{}", ctx.from, ctx.to))
                        .spawn(move || run_writer(ctx, rx))
                        .expect("spawn tcp writer thread");
                    *queue = Some(tx.clone());
                    tx
                }
            }
        };
        send_bounded(&tx, env, to, meter)
    }
}

/// Dials the peer, runs the versioned handshake and returns the stream
/// plus the peer's acknowledged sequence number.
fn connect_handshake(ctx: &LinkCtx) -> std::io::Result<(TcpStream, u64)> {
    let stream = TcpStream::connect(ctx.dial)?;
    let _ = stream.set_nodelay(true);
    write_frame(
        &mut (&stream),
        &Frame::Hello { version: VERSION, session: ctx.session, from: ctx.from, to: ctx.to },
    )?;
    stream.set_read_timeout(Some(ctx.cfg.handshake_timeout))?;
    let frame = read_frame(&mut (&stream))?;
    stream.set_read_timeout(None)?;
    match frame {
        Frame::HelloAck { acked_seq } => Ok((stream, acked_seq)),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "expected HelloAck in handshake",
        )),
    }
}

/// Encodes an envelope as a `Data` frame, converting its delivery-delay
/// instant into the nanoseconds still remaining.
fn data_frame(env: &Envelope) -> Frame {
    let delay_nanos = env
        .deliver_after
        .map(|at| at.saturating_duration_since(Instant::now()).as_nanos() as u64)
        .unwrap_or(0);
    Frame::Data {
        step: env.step,
        seq: env.seq,
        checksum: env.checksum,
        delay_nanos,
        payload: env.payload.clone(),
    }
}

/// The link writer: owns the socket, heartbeats when idle, retransmits
/// after reconnects, prunes its buffer on acks. Exits once its endpoint
/// is gone and everything it accepted has been acknowledged (or the
/// fabric shuts down).
fn run_writer(ctx: LinkCtx, rx: Receiver<Envelope>) {
    let acked = Arc::new(AtomicU64::new(0));
    let mut conn: Option<TcpStream> = None;
    // Accepted from the endpoint but not yet written on any connection.
    let mut outbox: VecDeque<Envelope> = VecDeque::new();
    // Written but not yet acknowledged — replayed after a reconnect.
    let mut unacked: VecDeque<Envelope> = VecDeque::new();
    let mut backoff = ctx.cfg.connect_backoff;
    let mut ever_connected = false;
    let mut queue_closed = false;

    let drop_conn = |conn: &mut Option<TcpStream>| {
        if let Some(stream) = conn.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    };

    loop {
        if ctx.shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let high = acked.load(Ordering::SeqCst);
        while unacked.front().is_some_and(|e| e.seq <= high) {
            unacked.pop_front();
        }
        if queue_closed && outbox.is_empty() && unacked.is_empty() {
            // Endpoint gone and every frame acknowledged: orderly close.
            break;
        }

        if conn.is_none() {
            match connect_handshake(&ctx) {
                Ok((stream, peer_acked)) => {
                    acked.fetch_max(peer_acked, Ordering::SeqCst);
                    let high = acked.load(Ordering::SeqCst);
                    while unacked.front().is_some_and(|e| e.seq <= high) {
                        unacked.pop_front();
                    }
                    // Resume: replay everything the peer has not acked.
                    let mut replay_ok = true;
                    for env in &unacked {
                        if write_frame(&mut (&stream), &data_frame(env)).is_err() {
                            replay_ok = false;
                            break;
                        }
                    }
                    if !replay_ok {
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_millis(250));
                        continue;
                    }
                    if ever_connected {
                        ctx.meter.record_fault(FaultEvent::Reconnected);
                    }
                    ever_connected = true;
                    backoff = ctx.cfg.connect_backoff;
                    ctx.shared.register(&stream);
                    let reader_stream = stream.try_clone().ok();
                    if let Some(reader_stream) = reader_stream {
                        let acked = Arc::clone(&acked);
                        std::thread::Builder::new()
                            .name(format!("tcp-acks-{}-{}", ctx.from, ctx.to))
                            .spawn(move || run_ack_reader(reader_stream, acked))
                            .expect("spawn tcp ack reader");
                    }
                    conn = Some(stream);
                }
                Err(_) => {
                    // Peer unreachable: keep accepting work (bounded) and
                    // retry with exponential backoff.
                    if !queue_closed {
                        match rx.recv_timeout(backoff) {
                            Ok(env) => outbox.push_back(env),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => queue_closed = true,
                        }
                    } else {
                        std::thread::sleep(backoff);
                    }
                    backoff = (backoff * 2).min(Duration::from_millis(250));
                    continue;
                }
            }
        }

        let stream = conn.as_ref().expect("connection established above");
        let mut write_failed = false;
        while let Some(env) = outbox.pop_front() {
            let frame = data_frame(&env);
            unacked.push_back(env);
            if write_frame(&mut &*stream, &frame).is_err() {
                write_failed = true;
                break;
            }
        }
        if write_failed {
            drop_conn(&mut conn);
            continue;
        }

        if queue_closed {
            // Draining: wait for acks, keep the connection validated.
            std::thread::sleep(ctx.cfg.heartbeat);
            if write_frame(&mut &*stream, &Frame::Heartbeat).is_err() {
                drop_conn(&mut conn);
            }
            continue;
        }
        match rx.recv_timeout(ctx.cfg.heartbeat) {
            Ok(env) => outbox.push_back(env),
            Err(RecvTimeoutError::Timeout) => {
                if write_frame(&mut &*stream, &Frame::Heartbeat).is_err() {
                    drop_conn(&mut conn);
                }
            }
            Err(RecvTimeoutError::Disconnected) => queue_closed = true,
        }
    }
    drop_conn(&mut conn);
}

/// Drains acknowledgement frames from the writer's connection into the
/// shared high-water mark; exits when the connection dies.
fn run_ack_reader(stream: TcpStream, acked: Arc<AtomicU64>) {
    loop {
        match read_frame(&mut (&stream)) {
            Ok(Frame::Ack { seq }) => {
                acked.fetch_max(seq, Ordering::SeqCst);
            }
            Ok(_) => {}
            Err(_) => break,
        }
    }
}

/// The receive side of one endpoint, shared by its acceptor and every
/// inbound connection's reader thread.
struct Inbox {
    id: PartyId,
    session: u64,
    tx: Sender<Envelope>,
    /// Highest sequence number accepted per sender — what `HelloAck`
    /// reports so resuming senders replay from the right place.
    delivered: Mutex<HashMap<PartyId, u64>>,
    liveness: Arc<Liveness>,
    meter: Arc<Meter>,
    shared: Arc<FabricShared>,
}

/// Accept loop of one party's listener.
fn run_acceptor(listener: TcpListener, inbox: Arc<Inbox>) {
    listener.set_nonblocking(true).expect("nonblocking listener");
    while !inbox.shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                inbox.shared.register(&stream);
                let inbox = Arc::clone(&inbox);
                std::thread::Builder::new()
                    .name(format!("tcp-reader-{}", inbox.id))
                    .spawn(move || run_reader(stream, inbox))
                    .expect("spawn tcp reader thread");
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Validates a `Hello` against this inbox; `None` rejects the connection.
fn validate_hello(frame: &Frame, inbox: &Inbox) -> Option<PartyId> {
    match frame {
        Frame::Hello { version, session, from, to }
            if *version == VERSION && *session == inbox.session && *to == inbox.id =>
        {
            Some(*from)
        }
        _ => None,
    }
}

/// One inbound connection: handshake, then decode `Data` frames into
/// envelopes, ack each, and keep the sender's liveness record fresh.
fn run_reader(stream: TcpStream, inbox: Arc<Inbox>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
        return;
    }
    let Ok(hello) = read_frame(&mut (&stream)) else { return };
    let Some(from) = validate_hello(&hello, &inbox) else {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    };
    let acked_seq = inbox.delivered.lock().get(&from).copied().unwrap_or(0);
    if write_frame(&mut (&stream), &Frame::HelloAck { acked_seq }).is_err() {
        return;
    }
    if stream.set_read_timeout(None).is_err() {
        return;
    }
    inbox.liveness.touch(from, inbox.session);
    loop {
        match read_frame(&mut (&stream)) {
            Ok(Frame::Data { step, seq, checksum, delay_nanos, payload }) => {
                inbox.liveness.touch(from, inbox.session);
                let deliver_after =
                    (delay_nanos > 0).then(|| Instant::now() + Duration::from_nanos(delay_nanos));
                let env = Envelope { from, step, seq, checksum, deliver_after, payload };
                // Bounded enqueue: a slow endpoint blocks this reader,
                // which stops reading the socket — TCP flow control
                // propagates the backpressure to the sender.
                if inbox.tx.send(env).is_err() {
                    break; // endpoint gone
                }
                let mut delivered = inbox.delivered.lock();
                let entry = delivered.entry(from).or_insert(0);
                *entry = (*entry).max(seq);
                drop(delivered);
                if write_frame(&mut (&stream), &Frame::Ack { seq }).is_err() {
                    break;
                }
            }
            Ok(Frame::Heartbeat) => inbox.liveness.touch(from, inbox.session),
            Ok(_) => {} // stray handshake frames: ignore
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Garbage length prefix or undecodable body: the stream
                // is unframeable from here — drop the connection and let
                // the sender re-handshake and replay.
                inbox.meter.record_fault(FaultEvent::CorruptionDetected);
                break;
            }
            Err(_) => break, // EOF, reset or torn frame
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The assembled socket fabric of one network, keyed by party.
pub(crate) struct TcpMesh {
    pub(crate) incoming: HashMap<PartyId, Receiver<Envelope>>,
    pub(crate) outgoing: HashMap<PartyId, HashMap<PartyId, LinkSender>>,
    pub(crate) liveness: HashMap<PartyId, Arc<Liveness>>,
    pub(crate) fabric: Arc<TcpFabric>,
}

/// Binds one loopback listener per party, inserts chaos proxies on links
/// the fault plan targets, and wires lazy TCP link senders for every
/// directed pair.
///
/// # Panics
///
/// Panics if a loopback listener cannot be bound — the harness cannot
/// run without sockets.
pub(crate) fn build_mesh(
    parties: &[PartyId],
    session: u64,
    cfg: TcpConfig,
    capacity: usize,
    meter: &Arc<Meter>,
    faults: Option<&FaultPlan>,
) -> TcpMesh {
    let shared =
        Arc::new(FabricShared { shutdown: AtomicBool::new(false), conns: Mutex::new(Vec::new()) });

    let mut addrs = HashMap::new();
    let mut incoming = HashMap::new();
    let mut liveness = HashMap::new();
    for &p in parties {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener address");
        addrs.insert(p, addr);
        let (tx, rx) = bounded(capacity);
        let live = Arc::new(Liveness::new(&cfg));
        let inbox = Arc::new(Inbox {
            id: p,
            session,
            tx,
            delivered: Mutex::new(HashMap::new()),
            liveness: Arc::clone(&live),
            meter: Arc::clone(meter),
            shared: Arc::clone(&shared),
        });
        std::thread::Builder::new()
            .name(format!("tcp-accept-{p}"))
            .spawn(move || run_acceptor(listener, inbox))
            .expect("spawn tcp acceptor thread");
        incoming.insert(p, rx);
        liveness.insert(p, live);
    }

    // Chaos proxies: links the fault plan targets dial a proxy that
    // forwards to the real listener while injecting socket-level faults.
    let mut proxies = Vec::new();
    let mut dial: HashMap<(PartyId, PartyId), SocketAddr> = HashMap::new();
    if let Some(plan) = faults {
        for (&(from, to), &fault) in plan.socket_faults() {
            if let Some(&target) = addrs.get(&to) {
                let proxy = ChaosProxy::spawn(target, fault).expect("spawn chaos proxy");
                dial.insert((from, to), proxy.addr());
                proxies.push(proxy);
            }
        }
    }

    let fabric = Arc::new(TcpFabric {
        shared: Arc::clone(&shared),
        addrs: addrs.clone(),
        _proxies: proxies,
    });
    let mut outgoing = HashMap::new();
    for &p in parties {
        let mut links = HashMap::new();
        for &q in parties {
            if q == p {
                continue;
            }
            let ctx = LinkCtx {
                from: p,
                to: q,
                dial: dial.get(&(p, q)).copied().unwrap_or(addrs[&q]),
                session,
                cfg,
                meter: Arc::clone(meter),
                shared: Arc::clone(&shared),
            };
            links.insert(q, LinkSender::Tcp(TcpLink { ctx, capacity, queue: Mutex::new(None) }));
        }
        outgoing.insert(p, links);
    }
    TcpMesh { incoming, outgoing, liveness, fabric }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::frame_checksum;
    use crate::network::{Network, TimeoutPolicy, TransportError};
    use proptest::prelude::*;

    fn sample_frames() -> Vec<Frame> {
        let payload = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        vec![
            Frame::Hello {
                version: VERSION,
                session: 7,
                from: PartyId::User(3),
                to: PartyId::Server1,
            },
            Frame::HelloAck { acked_seq: 42 },
            Frame::Data {
                step: Step::SecureSumVotes,
                seq: 9,
                checksum: frame_checksum(&payload, 9),
                delay_nanos: 1_000_000,
                payload,
            },
            Frame::Ack { seq: 11 },
            Frame::Heartbeat,
        ]
    }

    #[test]
    fn frames_roundtrip_through_length_prefixed_wire() {
        for frame in sample_frames() {
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = read_frame(&mut std::io::Cursor::new(&wire[..])).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn torn_tail_at_every_boundary_is_detected() {
        for frame in sample_frames() {
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            for cut in 0..wire.len() {
                let torn = read_frame(&mut std::io::Cursor::new(&wire[..cut]));
                assert!(torn.is_err(), "prefix of {cut}/{} bytes must not parse", wire.len());
            }
        }
    }

    #[test]
    fn hello_magic_mismatch_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample_frames()[0]).unwrap();
        wire[5] ^= 0xff; // byte 4 is the tag; 5..9 carry the magic
        let err = read_frame(&mut std::io::Cursor::new(&wire[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    proptest! {
        #[test]
        fn data_frames_roundtrip(
            seq in any::<u64>(),
            delay_nanos in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let payload = Bytes::from(payload);
            let frame = Frame::Data {
                step: Step::CompareNoisyRank,
                seq,
                checksum: frame_checksum(&payload, seq),
                delay_nanos,
                payload,
            };
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let back = read_frame(&mut std::io::Cursor::new(&wire[..])).unwrap();
            prop_assert_eq!(back, frame);
        }

        #[test]
        fn torn_tails_never_parse(
            cut_seed in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let frame = Frame::Data {
                step: Step::SecureSumNoisy,
                seq: 7,
                checksum: 13,
                delay_nanos: 0,
                payload: Bytes::from(payload),
            };
            let mut wire = Vec::new();
            write_frame(&mut wire, &frame).unwrap();
            let cut = cut_seed as usize % wire.len();
            prop_assert!(read_frame(&mut std::io::Cursor::new(&wire[..cut])).is_err());
        }

        #[test]
        fn garbage_length_prefixes_are_rejected_without_allocating(
            decl in (MAX_FRAME + 1)..u32::MAX,
            tail in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let mut wire = decl.to_le_bytes().to_vec();
            wire.extend_from_slice(&tail);
            let err = read_frame(&mut std::io::Cursor::new(&wire[..])).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }
    }

    // --- socket-backend integration (loopback) ---------------------------

    #[test]
    fn tcp_backend_full_duplex_exchange() {
        let mut net = Network::builder(0)
            .tcp(TcpConfig::fast_local())
            .timeout(TimeoutPolicy::with_retries(Duration::from_millis(300), 2, 2.0))
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                s1.send(PartyId::Server2, Step::CompareRank, &21u64).unwrap();
                let echo: u64 = s1.recv(PartyId::Server2, Step::CompareRank).unwrap();
                assert_eq!(echo, 42);
            });
            let v: u64 = s2.recv(PartyId::Server1, Step::CompareRank).unwrap();
            s2.send(PartyId::Server1, Step::CompareRank, &(v * 2)).unwrap();
        });
    }

    #[test]
    fn handshake_rejects_wrong_session_and_version() {
        let mut net = Network::builder(0)
            .tcp(TcpConfig::fast_local())
            .session(42)
            .timeout(TimeoutPolicy::new(Duration::from_millis(150)))
            .build();
        let addr = net.listener_addrs().expect("tcp backend")[&PartyId::Server1];
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let payload = 123u64.to_bytes();
        let data = Frame::Data {
            step: Step::Setup,
            seq: 1,
            checksum: frame_checksum(&payload, 1),
            delay_nanos: 0,
            payload,
        };

        // Wrong session: the connection is dropped before any delivery.
        let bad_session = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut (&bad_session),
            &Frame::Hello {
                version: VERSION,
                session: 41,
                from: PartyId::Server2,
                to: PartyId::Server1,
            },
        )
        .unwrap();
        let _ = write_frame(&mut (&bad_session), &data);

        // Wrong version: likewise rejected.
        let bad_version = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut (&bad_version),
            &Frame::Hello {
                version: VERSION + 1,
                session: 42,
                from: PartyId::Server2,
                to: PartyId::Server1,
            },
        )
        .unwrap();
        let _ = write_frame(&mut (&bad_version), &data);

        let err = s1.recv::<u64>(PartyId::Server2, Step::Setup).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::Server2));

        // A correct handshake on the same listener delivers.
        let good = TcpStream::connect(addr).unwrap();
        write_frame(
            &mut (&good),
            &Frame::Hello {
                version: VERSION,
                session: 42,
                from: PartyId::Server2,
                to: PartyId::Server1,
            },
        )
        .unwrap();
        match read_frame(&mut (&good)).unwrap() {
            Frame::HelloAck { acked_seq } => assert_eq!(acked_seq, 0),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        write_frame(&mut (&good), &data).unwrap();
        let v: u64 = s1.recv(PartyId::Server2, Step::Setup).unwrap();
        assert_eq!(v, 123);
    }

    #[test]
    fn liveness_converts_silent_peer_into_timely_dropout() {
        let cfg = TcpConfig {
            heartbeat: Duration::from_millis(10),
            liveness: Duration::from_millis(120),
            ..TcpConfig::fast_local()
        };
        let mut net = Network::builder(1)
            .tcp(cfg)
            .timeout(TimeoutPolicy::new(Duration::from_secs(30)))
            .build();
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap(), 1);

        // The user's endpoint dies; once its link drains, heartbeats stop
        // and the liveness deadline — not the 30 s policy — ends the wait.
        drop(u);
        let start = Instant::now();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "liveness deadline must preempt the receive policy, took {:?}",
            start.elapsed()
        );
        assert!(net.meter().fault_stats().liveness_expired >= 1);
    }

    #[test]
    fn liveness_is_tracked_per_session_not_per_connection() {
        let cfg = TcpConfig { liveness: Duration::from_millis(40), ..TcpConfig::fast_local() };
        let live = Liveness::new(&cfg);
        let peer = PartyId::User(0);
        // The same peer is active in two sessions sharing the link; only
        // session 1 goes idle.
        live.touch(peer, 1);
        live.touch(peer, 2);
        std::thread::sleep(Duration::from_millis(60));
        live.touch(peer, 2);
        assert!(live.expired(peer, 1), "idle session must expire");
        assert!(!live.expired(peer, 2), "a fresh neighbor session must stay live");
        // A session the peer never connected in is governed by the
        // receive policy alone.
        assert!(!live.expired(peer, 3));
        // Per-session expiry counting.
        live.note_expired(1);
        live.note_expired(1);
        assert_eq!(live.expired_count(1), 2);
        assert_eq!(live.expired_count(2), 0);
    }

    #[test]
    fn severed_connection_reconnects_and_replays_in_order() {
        // Sever the user→S1 stream after 180 bytes — mid-frame, past the
        // handshake but inside the burst of ten messages.
        let plan = FaultPlan::new(0).sever_connection(PartyId::User(0), PartyId::Server1, 180);
        let mut net = Network::builder(1)
            .tcp(TcpConfig::fast_local())
            .faults(plan)
            .timeout(TimeoutPolicy::with_retries(Duration::from_millis(400), 2, 2.0))
            .build();
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        for i in 0..10u64 {
            u.send(PartyId::Server1, Step::SecureSumVotes, &(i * 31)).unwrap();
        }
        for i in 0..10u64 {
            let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
            assert_eq!(v, i * 31, "replay must preserve per-link FIFO order");
        }
        let stats = net.meter().fault_stats();
        assert!(stats.reconnects >= 1, "the sever must force a reconnect: {stats:?}");
    }
}
