//! Message-passing runtime for the private consensus protocol.
//!
//! The paper's prototype wires users and the two aggregation servers
//! together with `torch.distributed` `send`/`recv`, serializing ciphertexts
//! into tensors by segmentation (§VI-A). This crate plays that role for the
//! Rust reproduction:
//!
//! * [`wire`] — a compact length-prefixed binary codec for every message
//!   type the protocol exchanges (big integers, ciphertexts, share
//!   vectors, comparison rounds);
//! * [`network`] — a network of parties (N users + two servers) with
//!   blocking typed send/receive over one of two interchangeable
//!   backends ([`TransportBackend`]): bounded in-process channels, or
//!   real loopback TCP sockets;
//! * [`tcp`] — the TCP backend: length-prefixed framing, a versioned
//!   session handshake, heartbeats with a liveness deadline, and
//!   reconnect-and-resume from the last acknowledged sequence number;
//! * [`session`] — session-tagged frames and per-session demultiplexing,
//!   so one link can carry many concurrent consensus rounds (see
//!   `core::reactor`);
//! * [`proxy`] — a socket-level chaos proxy (mid-frame severs, stalled
//!   reads, fragmented writes) driven by [`FaultPlan`] socket faults;
//! * [`metrics`] — per-protocol-step counters of bytes, messages and wall
//!   time, split by link direction. These counters regenerate Table I
//!   (computation) and Table II (communication) of the paper.
//!
//! Link queues on both backends are *bounded*: a slow consumer blocks its
//! senders (recorded as backpressure on the [`Meter`]) instead of growing
//! an unbounded buffer.
//!
//! # Examples
//!
//! ```
//! use transport::network::{Network, PartyId};
//! use transport::metrics::Step;
//!
//! let mut net = Network::new(1); // one user + two servers
//! let mut user = net.take_endpoint(PartyId::User(0));
//! let mut s1 = net.take_endpoint(PartyId::Server1);
//!
//! std::thread::scope(|scope| {
//!     scope.spawn(move || {
//!         user.send(PartyId::Server1, Step::SecureSumVotes, &42u64).unwrap();
//!     });
//!     let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
//!     assert_eq!(v, 42);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod faults;
pub mod journal;
pub mod latency;
mod link;
pub mod metrics;
pub mod network;
pub mod proxy;
pub mod segment;
pub mod session;
pub mod tcp;
pub mod wire;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointStore, FileCheckpointStore, MemoryCheckpointStore,
    SessionScopedStore,
};
pub use faults::{ByzantineAction, FaultDecision, FaultPlan, SocketFault};
pub use journal::{AppendJournal, JournalRecord};
pub use latency::{LinkProfile, NetworkProfile};
pub use metrics::{FaultEvent, FaultStats, LinkKind, Meter, MeterReport, Step};
pub use network::{
    Endpoint, Network, NetworkBuilder, PartyId, RecvEachError, TimeoutPolicy, TransportBackend,
    TransportError,
};
pub use proxy::ChaosProxy;
pub use session::{
    read_session_frame, session_scoped_round, write_session_frame, SessionDemux, SessionError,
    SessionFrame,
};
pub use tcp::TcpConfig;
pub use wire::{Wire, WireError};
