//! Ciphertext segmentation — the paper's tensor transport trick.
//!
//! §VI-A: the prototype moves everything through `torch.distributed`
//! `send`/`recv`, which carry *tensors*; a Paillier ciphertext does not
//! fit one tensor element, so "before being sent, the ciphertext is
//! divided into units with each unit being a 18-digit long decimal number
//! which could fit into a tensor, and the ciphertext is sent by segments;
//! upon receiving these segments, we re-compose the original ciphertext".
//!
//! This module reproduces that codec faithfully: a big integer is
//! rendered in base `10^18` (each unit fits an `i64`/f64-safe tensor slot),
//! least-significant unit first, and recomposed by Horner evaluation. The
//! in-process [`crate::network`] does not need it (our wire codec moves
//! raw bytes), but the segmentation is part of the system the paper
//! describes, is exercised by tests, and quantifies the expansion a
//! tensor transport pays versus raw bytes (~1.5× for 64-bit-key
//! ciphertexts; ~3× against the plaintext they carry, as Table II notes).

use bigint::Ubig;

use crate::wire::WireError;

/// Decimal digits per tensor unit (the paper's choice: 18, the largest
/// power of ten whose values always fit a signed 64-bit tensor element).
pub const UNIT_DIGITS: u32 = 18;

/// The unit base `10^18`.
pub const UNIT_BASE: u64 = 1_000_000_000_000_000_000;

/// Splits a big integer into base-`10^18` units, least significant first.
/// Zero encodes as a single zero unit (a tensor must carry at least one
/// element).
///
/// # Examples
///
/// ```
/// use transport::segment::{segment, recompose, UNIT_BASE};
/// use bigint::Ubig;
///
/// let x = Ubig::from(u128::MAX);
/// let units = segment(&x);
/// assert!(units.iter().all(|&u| u < UNIT_BASE));
/// assert_eq!(recompose(&units).unwrap(), x);
/// ```
pub fn segment(value: &Ubig) -> Vec<u64> {
    if value.is_zero() {
        return vec![0];
    }
    let mut units = Vec::new();
    let mut cur = value.clone();
    while !cur.is_zero() {
        let (q, r) = cur.div_rem_limb(UNIT_BASE);
        units.push(r);
        cur = q;
    }
    units
}

/// Recomposes a big integer from base-`10^18` units.
///
/// # Errors
///
/// Returns [`WireError::InvalidTag`] if the unit list is empty, or
/// [`WireError::LengthOverflow`] if any unit is `>= 10^18` (a corrupted
/// segment).
pub fn recompose(units: &[u64]) -> Result<Ubig, WireError> {
    if units.is_empty() {
        return Err(WireError::InvalidTag(0));
    }
    let base = Ubig::from(UNIT_BASE);
    let mut acc = Ubig::zero();
    for &unit in units.iter().rev() {
        if unit >= UNIT_BASE {
            return Err(WireError::LengthOverflow(unit));
        }
        acc = &(&acc * &base) + &Ubig::from(unit);
    }
    Ok(acc)
}

/// Segments a whole ciphertext vector into one flat tensor payload:
/// `[count, len_0, units_0 …, len_1, units_1 …]`. This is the shape the
/// prototype ships a `K`-class encrypted vote vector in.
pub fn segment_vector(values: &[Ubig]) -> Vec<u64> {
    let mut out = vec![values.len() as u64];
    for v in values {
        let units = segment(v);
        out.push(units.len() as u64);
        out.extend(units);
    }
    out
}

/// Inverse of [`segment_vector`].
///
/// # Errors
///
/// Returns a [`WireError`] on truncated or corrupted payloads.
pub fn recompose_vector(payload: &[u64]) -> Result<Vec<Ubig>, WireError> {
    let mut iter = payload.iter().copied();
    let count = iter.next().ok_or(WireError::Truncated)? as usize;
    if count as u64 > (1 << 32) {
        return Err(WireError::LengthOverflow(count as u64));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = iter.next().ok_or(WireError::Truncated)? as usize;
        let units: Vec<u64> = iter.by_ref().take(len).collect();
        if units.len() != len {
            return Err(WireError::Truncated);
        }
        out.push(recompose(&units)?);
    }
    if iter.next().is_some() {
        return Err(WireError::Truncated);
    }
    Ok(out)
}

/// How many tensor units a value of `bits` bits needs — the transport
/// expansion the paper's Table II pays relative to raw bytes.
pub fn units_for_bits(bits: u64) -> usize {
    // 10^18 holds log2(10^18) ≈ 59.79 bits per unit.
    let bits_per_unit = 18.0 * std::f64::consts::LOG2_10;
    ((bits as f64 / bits_per_unit).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigint::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_small_values() {
        assert_eq!(segment(&Ubig::zero()), vec![0]);
        assert_eq!(recompose(&[0]).unwrap(), Ubig::zero());
        assert_eq!(segment(&Ubig::from(42u64)), vec![42]);
        assert_eq!(segment(&Ubig::from(UNIT_BASE)), vec![0, 1]);
    }

    #[test]
    fn units_stay_below_base() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [64u64, 128, 256, 1024] {
            let v = random::gen_exact_bits(&mut rng, bits);
            let units = segment(&v);
            assert!(units.iter().all(|&u| u < UNIT_BASE), "{bits}-bit value");
            assert_eq!(recompose(&units).unwrap(), v, "{bits}-bit roundtrip");
        }
    }

    #[test]
    fn random_roundtrips() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let v = random::gen_bits(&mut rng, 200);
            assert_eq!(recompose(&segment(&v)).unwrap(), v);
        }
    }

    #[test]
    fn corrupted_units_rejected() {
        assert!(matches!(recompose(&[]), Err(WireError::InvalidTag(_))));
        assert!(matches!(recompose(&[UNIT_BASE]), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn vector_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<Ubig> = (0..10).map(|_| random::gen_bits(&mut rng, 128)).collect();
        let payload = segment_vector(&values);
        assert_eq!(recompose_vector(&payload).unwrap(), values);
        // Empty vector is representable.
        assert_eq!(recompose_vector(&segment_vector(&[])).unwrap(), Vec::<Ubig>::new());
    }

    #[test]
    fn truncated_vector_rejected() {
        let values = vec![Ubig::from(u64::MAX)];
        let mut payload = segment_vector(&values);
        payload.pop();
        assert!(matches!(recompose_vector(&payload), Err(WireError::Truncated)));
        // Trailing garbage also rejected.
        let mut payload = segment_vector(&values);
        payload.push(7);
        assert!(matches!(recompose_vector(&payload), Err(WireError::Truncated)));
    }

    #[test]
    fn unit_count_estimate_matches_actual() {
        let mut rng = StdRng::seed_from_u64(4);
        for bits in [59u64, 60, 128, 512] {
            let v = random::gen_exact_bits(&mut rng, bits);
            let actual = segment(&v).len();
            let estimate = units_for_bits(bits);
            assert!(
                (actual as i64 - estimate as i64).abs() <= 1,
                "bits {bits}: actual {actual} vs estimate {estimate}"
            );
        }
    }

    #[test]
    fn paper_expansion_factor() {
        // A 128-bit Paillier ciphertext (64-bit key) fits 16 raw bytes but
        // needs 3 tensor units of 8 bytes = 24 bytes: ×1.5 expansion, and
        // ~×3 against the 8-byte plaintext share it carries — consistent
        // with Table II's "approximately 3 times larger than plaintext".
        assert_eq!(units_for_bits(128), 3);
    }
}
