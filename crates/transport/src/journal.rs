//! Reusable append-only journal framing.
//!
//! The checkpoint store and the durable privacy ledger both persist
//! their state as an append-only file of checksummed records and both
//! need the same crash discipline: a record is either fully on disk or
//! it is a *torn tail* that replay silently truncates away. This module
//! is that discipline, factored out of [`crate::checkpoint`] so other
//! journals (the RDP charge ledger in `crates/dp`) reuse the framing
//! instead of reinventing it.
//!
//! Record layout (little-endian):
//!
//! ```text
//! magic(4) | round(8) | party(8) | step(1) | len(4) | payload(len) | fnv1a(8)
//! ```
//!
//! The checksum covers everything before it, so replay can tell a torn
//! or bit-rotted tail (checksum mismatch → truncate) from a fully
//! persisted record. `step == 0xFF` is reserved as a tombstone marker by
//! convention; this layer does not interpret it.
//!
//! Durability: [`AppendJournal::append`] calls `sync_data` after the
//! write, so once `append` returns the record survives `kill -9` — a
//! `flush` alone only drains userspace buffers and guarantees nothing
//! about the page cache. [`AppendJournal::open`] creates the parent
//! directory and fsyncs it after creating the file, so the directory
//! entry itself is durable too.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal record framing magic: "CKPT".
pub const MAGIC: u32 = 0x434B_5054;
/// Step byte conventionally marking a tombstone rather than a payload
/// record. The framing layer treats it as any other step; replayers
/// decide what it means.
pub const TOMBSTONE: u8 = 0xFF;
/// Fixed bytes before the payload: magic + round + party + step + len.
pub const HEADER_LEN: usize = 4 + 8 + 8 + 1 + 4;
/// Sanity cap on a record's declared payload length.
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// FNV-1a over the serialized record body — cheap, and plenty to detect
/// the torn or bit-rotted tail of a crashed append.
pub fn record_checksum(body: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in body {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes one record (header, payload, trailing checksum).
pub fn encode_record(round: u64, party: u64, step: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    rec.extend_from_slice(&MAGIC.to_le_bytes());
    rec.extend_from_slice(&round.to_le_bytes());
    rec.extend_from_slice(&party.to_le_bytes());
    rec.push(step);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    let sum = record_checksum(&rec);
    rec.extend_from_slice(&sum.to_le_bytes());
    rec
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Round id the record belongs to.
    pub round: u64,
    /// Journal-specific party / namespace key.
    pub party: u64,
    /// Journal-specific record kind ([`TOMBSTONE`] by convention).
    pub step: u8,
    /// Opaque record payload.
    pub payload: Vec<u8>,
}

/// Attempts to decode one record at `buf[at..]`. Returns the record and
/// the offset just past it, or `None` for a torn/invalid record (replay
/// treats that as the end of the valid prefix).
pub fn decode_record(buf: &[u8], at: usize) -> Option<(JournalRecord, usize)> {
    let header = buf.get(at..at + HEADER_LEN)?;
    if header[0..4] != MAGIC.to_le_bytes() {
        return None;
    }
    let round = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
    let party = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let step = header[20];
    let len = u32::from_le_bytes(header[21..25].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return None;
    }
    let body_end = at + HEADER_LEN + len as usize;
    let payload = buf.get(at + HEADER_LEN..body_end)?.to_vec();
    let sum_bytes = buf.get(body_end..body_end + 8)?;
    let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if sum != record_checksum(&buf[at..body_end]) {
        return None;
    }
    Some((JournalRecord { round, party, step, payload }, body_end + 8))
}

/// An open append-only journal file with the torn-tail recovery and
/// fsync-on-append discipline.
pub struct AppendJournal {
    path: PathBuf,
    file: File,
}

impl std::fmt::Debug for AppendJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppendJournal({})", self.path.display())
    }
}

impl AppendJournal {
    /// Opens (or creates) `dir/name`, creating `dir` first, and replays
    /// every fully-persisted record. A torn trailing record — the
    /// signature of a crash mid-append — is truncated away so fresh
    /// appends extend a valid prefix. The directory is fsynced after the
    /// file is created so the entry itself survives a crash.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory or journal cannot be
    /// created or read, or if the directory fsync that makes the new
    /// entry durable fails. A torn tail is not an error.
    pub fn open(
        dir: impl AsRef<Path>,
        name: &str,
    ) -> io::Result<(AppendJournal, Vec<JournalRecord>)> {
        fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(name);
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        // Make the directory entry durable: a file that exists only in a
        // dirty directory page vanishes with the page cache. A failure
        // here is a real durability hole, so it propagates.
        File::open(dir.as_ref())?.sync_all()?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut records = Vec::new();
        let mut at = 0usize;
        while at < buf.len() {
            match decode_record(&buf, at) {
                Some((rec, next)) => {
                    records.push(rec);
                    at = next;
                }
                // Torn tail: drop it so fresh appends extend a valid prefix.
                None => break,
            }
        }
        if at < buf.len() {
            file.set_len(at as u64)?;
            file.seek(SeekFrom::End(0))?;
        }
        Ok((AppendJournal { path, file }, records))
    }

    /// Appends one record and fsyncs it to stable storage: when this
    /// returns `Ok`, the record survives an immediate `kill -9` or power
    /// loss (modulo lying hardware).
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the write or sync fails; the journal may
    /// then hold a torn tail, which the next [`AppendJournal::open`]
    /// truncates.
    pub fn append(&mut self, round: u64, party: u64, step: u8, payload: &[u8]) -> io::Result<()> {
        let record = encode_record(round, party, step, payload);
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("journal-test-{}-{tag}-{n}", std::process::id()));
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = encode_record(7, 3, 2, b"payload");
        let (decoded, next) = decode_record(&rec, 0).unwrap();
        assert_eq!(
            decoded,
            JournalRecord { round: 7, party: 3, step: 2, payload: b"payload".to_vec() }
        );
        assert_eq!(next, rec.len());
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let tmp = TempDir::new("torn");
        {
            let (mut j, _) = AppendJournal::open(&tmp.0, "j.log").unwrap();
            j.append(1, 0, 1, b"whole").unwrap();
        }
        let half = encode_record(1, 0, 2, b"torn-away");
        {
            let mut f = OpenOptions::new().append(true).open(tmp.0.join("j.log")).unwrap();
            f.write_all(&half[..half.len() / 2]).unwrap();
        }
        let (mut j, records) = AppendJournal::open(&tmp.0, "j.log").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"whole");
        // Appends after recovery land on the valid prefix.
        j.append(1, 0, 3, b"after").unwrap();
        drop(j);
        let (_, records) = AppendJournal::open(&tmp.0, "j.log").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].step, 3);
    }

    #[test]
    fn open_creates_missing_parent_dirs() {
        let tmp = TempDir::new("mkdir");
        let nested = tmp.0.join("a").join("b");
        let (mut j, records) = AppendJournal::open(&nested, "j.log").unwrap();
        assert!(records.is_empty());
        j.append(0, 0, 0, b"x").unwrap();
        assert!(nested.join("j.log").exists());
    }
}
