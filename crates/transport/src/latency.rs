//! Analytic network-cost modeling.
//!
//! The in-process channels deliver messages in microseconds, so the wall
//! times in Table I reflect pure computation. A real deployment pays
//! latency per message round and serialization per byte; since the meter
//! records exactly how many messages and bytes each step moved, the total
//! network cost of a run can be *estimated analytically* for any link
//! profile rather than re-run over a WAN. This is how the cost binaries
//! answer "what would this protocol cost across data centers?" without a
//! testbed.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::metrics::{LinkKind, MeterReport, Step};

/// A link's latency/bandwidth characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// One-way message latency in microseconds.
    pub latency_us: u64,
    /// Usable bandwidth in bytes per second.
    pub bytes_per_sec: u64,
}

impl LinkProfile {
    /// A same-rack / loopback link: 50 µs, 10 Gb/s.
    pub fn loopback() -> Self {
        LinkProfile { latency_us: 50, bytes_per_sec: 1_250_000_000 }
    }

    /// A LAN link: 0.5 ms, 1 Gb/s.
    pub fn lan() -> Self {
        LinkProfile { latency_us: 500, bytes_per_sec: 125_000_000 }
    }

    /// A WAN link between data centers: 30 ms, 100 Mb/s.
    pub fn wan() -> Self {
        LinkProfile { latency_us: 30_000, bytes_per_sec: 12_500_000 }
    }

    /// Time to move one message of `bytes` payload bytes.
    pub fn message_time(&self, bytes: u64) -> Duration {
        Duration::from_micros(self.latency_us)
            + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
    }
}

/// Link profiles for the three link kinds of the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Users ↔ servers (typically WAN: users are remote institutions).
    pub user_server: LinkProfile,
    /// Server ↔ server (typically LAN or inter-DC).
    pub server_server: LinkProfile,
}

impl NetworkProfile {
    /// Everything on one machine.
    pub fn local() -> Self {
        NetworkProfile {
            user_server: LinkProfile::loopback(),
            server_server: LinkProfile::loopback(),
        }
    }

    /// Users over WAN, servers co-located on a LAN — the paper's
    /// two-corporation deployment story.
    pub fn federated() -> Self {
        NetworkProfile { user_server: LinkProfile::wan(), server_server: LinkProfile::lan() }
    }

    /// Everything across data centers.
    pub fn wide_area() -> Self {
        NetworkProfile { user_server: LinkProfile::wan(), server_server: LinkProfile::wan() }
    }

    fn profile_for(&self, link: LinkKind) -> LinkProfile {
        match link {
            LinkKind::UserToServer | LinkKind::ServerToUser => self.user_server,
            LinkKind::ServerToServer => self.server_server,
        }
    }

    /// Estimated network time of one step under this profile: every
    /// message pays the link latency (the protocol's server↔server
    /// messages are strictly sequential rounds) plus serialization.
    pub fn step_network_time(&self, report: &MeterReport, step: Step) -> Duration {
        let mut total = Duration::ZERO;
        for (s, link, stats) in report.comm_rows() {
            if s != step {
                continue;
            }
            let profile = self.profile_for(link);
            // User messages of one step travel concurrently: charge one
            // latency for the slowest plus full serialization; the
            // server↔server dialogue is sequential rounds.
            match link {
                LinkKind::UserToServer | LinkKind::ServerToUser => {
                    if stats.messages > 0 {
                        total += Duration::from_micros(profile.latency_us);
                        total += Duration::from_secs_f64(
                            stats.bytes as f64 / profile.bytes_per_sec as f64,
                        );
                    }
                }
                LinkKind::ServerToServer => {
                    total += Duration::from_micros(profile.latency_us) * stats.messages as u32;
                    total +=
                        Duration::from_secs_f64(stats.bytes as f64 / profile.bytes_per_sec as f64);
                }
            }
        }
        total
    }

    /// Estimated total network time across all steps.
    pub fn total_network_time(&self, report: &MeterReport) -> Duration {
        Step::ALL.iter().map(|&s| self.step_network_time(report, s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Meter;

    fn sample_report() -> MeterReport {
        let meter = Meter::new();
        // 10 users upload one 1 KB message each.
        for _ in 0..10 {
            meter.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 1024);
        }
        // 45 comparison rounds of 2 messages, 4 KB each.
        for _ in 0..90 {
            meter.record_message(Step::CompareRank, LinkKind::ServerToServer, 4096);
        }
        meter.report()
    }

    #[test]
    fn message_time_combines_latency_and_bandwidth() {
        let link = LinkProfile { latency_us: 1000, bytes_per_sec: 1_000_000 };
        let t = link.message_time(500_000);
        // 1 ms latency + 0.5 s transfer.
        assert!((t.as_secs_f64() - 0.501).abs() < 1e-9);
    }

    #[test]
    fn sequential_rounds_dominate_on_wan() {
        let report = sample_report();
        let profile = NetworkProfile::wide_area();
        let compare = profile.step_network_time(&report, Step::CompareRank);
        // 90 sequential messages × 30 ms ≈ 2.7 s of pure latency.
        assert!(compare.as_secs_f64() > 2.6, "{compare:?}");
        let upload = profile.step_network_time(&report, Step::SecureSumVotes);
        // Concurrent uploads: one latency + 10 KB transfer — far smaller.
        assert!(upload < compare / 10, "upload {upload:?} vs compare {compare:?}");
    }

    #[test]
    fn faster_links_cost_less() {
        let report = sample_report();
        let local = NetworkProfile::local().total_network_time(&report);
        let fed = NetworkProfile::federated().total_network_time(&report);
        let wan = NetworkProfile::wide_area().total_network_time(&report);
        assert!(local < fed);
        assert!(fed <= wan);
    }

    #[test]
    fn empty_report_is_free() {
        let report = Meter::new().report();
        assert_eq!(NetworkProfile::wide_area().total_network_time(&report), Duration::ZERO);
    }

    #[test]
    fn total_is_sum_of_steps() {
        let report = sample_report();
        let profile = NetworkProfile::federated();
        let by_steps: Duration =
            Step::ALL.iter().map(|&s| profile.step_network_time(&report, s)).sum();
        assert_eq!(by_steps, profile.total_network_time(&report));
    }
}
