//! Per-step communication and computation accounting.
//!
//! Every protocol message is tagged with the [`Step`] of Alg. 5 it belongs
//! to; the [`Meter`] aggregates bytes and message counts per step and link
//! direction (user→server vs server↔server), plus wall-clock time per
//! step. [`MeterReport`] renders the same rows as the paper's Table I
//! (computational costs) and Table II (communication costs).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The protocol step a message or timing belongs to, named and numbered as
/// in Alg. 5 of the paper (and Tables I/II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Key distribution and session setup (not in the paper's tables).
    Setup,
    /// Step 2 — users send encrypted vote shares; servers aggregate.
    SecureSumVotes,
    /// Step 3 — first Blind-and-Permute over the aggregated shares.
    BlindPermute1,
    /// Step 4 — pairwise DGK comparisons to find `π(i*)`.
    CompareRank,
    /// Step 5 — DGK threshold check of the noisy maximum.
    ThresholdCheck,
    /// Step 6 — users send noisy shares for Report Noisy Max.
    SecureSumNoisy,
    /// Step 7 — second Blind-and-Permute.
    BlindPermute2,
    /// Step 8 — pairwise DGK comparisons on noisy votes to find `π′(ĩ*)`.
    CompareNoisyRank,
    /// Step 9 — Restoration of the winning index.
    Restoration,
}

impl Step {
    /// All steps in protocol order.
    pub const ALL: [Step; 9] = [
        Step::Setup,
        Step::SecureSumVotes,
        Step::BlindPermute1,
        Step::CompareRank,
        Step::ThresholdCheck,
        Step::SecureSumNoisy,
        Step::BlindPermute2,
        Step::CompareNoisyRank,
        Step::Restoration,
    ];

    /// The step number used in Alg. 5 / Tables I-II, or `None` for setup.
    pub fn paper_number(&self) -> Option<u8> {
        match self {
            Step::Setup => None,
            Step::SecureSumVotes => Some(2),
            Step::BlindPermute1 => Some(3),
            Step::CompareRank => Some(4),
            Step::ThresholdCheck => Some(5),
            Step::SecureSumNoisy => Some(6),
            Step::BlindPermute2 => Some(7),
            Step::CompareNoisyRank => Some(8),
            Step::Restoration => Some(9),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Step::Setup => "Setup",
            Step::SecureSumVotes => "Secure Sum",
            Step::BlindPermute1 => "Blind-and-Permute",
            Step::CompareRank => "Secure Comparison",
            Step::ThresholdCheck => "Threshold Checking",
            Step::SecureSumNoisy => "Secure Sum",
            Step::BlindPermute2 => "Blind-and-Permute",
            Step::CompareNoisyRank => "Secure Comparison",
            Step::Restoration => "Restoration",
        };
        match self.paper_number() {
            Some(n) => write!(f, "{name} ({n})"),
            None => write!(f, "{name}"),
        }
    }
}

/// Which kind of link carried a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// A user sending to one of the servers.
    UserToServer,
    /// Server-to-server traffic.
    ServerToServer,
    /// A server replying to a user (rare in this protocol).
    ServerToUser,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::UserToServer => write!(f, "user-to-server"),
            LinkKind::ServerToServer => write!(f, "server-to-server"),
            LinkKind::ServerToUser => write!(f, "server-to-user"),
        }
    }
}

/// Byte/message counters for one (step, link) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Number of messages sent.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// A reliability event observed by an endpoint.
///
/// Injected events come from an attached [`crate::faults::FaultPlan`];
/// detected/observed events come from the receive path regardless of
/// whether a plan is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEvent {
    /// A receive exhausted every retry window.
    Timeout,
    /// A receive window expired and an extended (retry) window began.
    Retry,
    /// The plan discarded a sent message.
    DropInjected,
    /// The plan attached a delivery delay to a sent message.
    DelayInjected,
    /// The plan enqueued an extra copy of a sent message.
    DuplicateInjected,
    /// The receiver's dedup layer discarded a duplicate frame.
    DuplicateSuppressed,
    /// The plan flipped payload bits in a sent message.
    CorruptionInjected,
    /// A frame checksum mismatch was caught on receive.
    CorruptionDetected,
    /// A crashed party attempted a send (silently discarded).
    CrashedSend,
}

/// Totals of reliability events, one counter per [`FaultEvent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Receives that exhausted every retry window.
    pub timeouts: u64,
    /// Extended receive windows consumed.
    pub retries: u64,
    /// Messages discarded by the fault plan.
    pub drops_injected: u64,
    /// Messages delayed by the fault plan.
    pub delays_injected: u64,
    /// Extra copies enqueued by the fault plan.
    pub duplicates_injected: u64,
    /// Duplicate frames discarded by receivers.
    pub duplicates_suppressed: u64,
    /// Payloads corrupted by the fault plan.
    pub corruptions_injected: u64,
    /// Checksum mismatches caught by receivers.
    pub corruptions_detected: u64,
    /// Sends attempted by crashed parties.
    pub crashed_sends: u64,
}

impl FaultStats {
    fn bump(&mut self, event: FaultEvent) {
        let slot = match event {
            FaultEvent::Timeout => &mut self.timeouts,
            FaultEvent::Retry => &mut self.retries,
            FaultEvent::DropInjected => &mut self.drops_injected,
            FaultEvent::DelayInjected => &mut self.delays_injected,
            FaultEvent::DuplicateInjected => &mut self.duplicates_injected,
            FaultEvent::DuplicateSuppressed => &mut self.duplicates_suppressed,
            FaultEvent::CorruptionInjected => &mut self.corruptions_injected,
            FaultEvent::CorruptionDetected => &mut self.corruptions_detected,
            FaultEvent::CrashedSend => &mut self.crashed_sends,
        };
        *slot += 1;
    }

    /// True if no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Wall-clock totals for one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeStats {
    /// Accumulated duration across all recorded spans.
    pub total: Duration,
    /// Number of recorded spans.
    pub spans: u64,
}

#[derive(Default)]
struct MeterInner {
    comm: BTreeMap<(Step, LinkKind), LinkStats>,
    time: BTreeMap<Step, TimeStats>,
    faults: FaultStats,
}

/// Thread-safe accumulator shared by all endpoints of a [`crate::Network`].
#[derive(Default)]
pub struct Meter {
    inner: Mutex<MeterInner>,
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Arc<Meter> {
        Arc::new(Meter::default())
    }

    /// Records one message of `bytes` payload bytes.
    pub fn record_message(&self, step: Step, link: LinkKind, bytes: usize) {
        let mut inner = self.inner.lock();
        let stats = inner.comm.entry((step, link)).or_default();
        stats.messages += 1;
        stats.bytes += bytes as u64;
    }

    /// Records `elapsed` wall-clock time against `step`.
    pub fn record_time(&self, step: Step, elapsed: Duration) {
        let mut inner = self.inner.lock();
        let stats = inner.time.entry(step).or_default();
        stats.total += elapsed;
        stats.spans += 1;
    }

    /// Times a closure and records its duration against `step`.
    pub fn time<T>(&self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_time(step, start.elapsed());
        out
    }

    /// Records one reliability event.
    pub fn record_fault(&self, event: FaultEvent) {
        self.inner.lock().faults.bump(event);
    }

    /// Snapshot of the reliability counters alone.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.lock().faults
    }

    /// Snapshot of all counters.
    pub fn report(&self) -> MeterReport {
        let inner = self.inner.lock();
        MeterReport { comm: inner.comm.clone(), time: inner.time.clone(), faults: inner.faults }
    }

    /// Clears all counters (e.g. between benchmark warmup and measurement).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.comm.clear();
        inner.time.clear();
        inner.faults = FaultStats::default();
    }
}

impl fmt::Debug for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Meter({} rows)", self.inner.lock().comm.len())
    }
}

/// An immutable snapshot of meter counters, with Table I/II style
/// renderers.
#[derive(Debug, Clone, Default)]
pub struct MeterReport {
    comm: BTreeMap<(Step, LinkKind), LinkStats>,
    time: BTreeMap<Step, TimeStats>,
    faults: FaultStats,
}

impl MeterReport {
    /// Communication stats for one (step, link) pair.
    pub fn link_stats(&self, step: Step, link: LinkKind) -> LinkStats {
        self.comm.get(&(step, link)).copied().unwrap_or_default()
    }

    /// Total bytes sent in a step across all links.
    pub fn step_bytes(&self, step: Step) -> u64 {
        self.comm.iter().filter(|((s, _), _)| *s == step).map(|(_, stats)| stats.bytes).sum()
    }

    /// Total bytes across all steps and links.
    pub fn total_bytes(&self) -> u64 {
        self.comm.values().map(|s| s.bytes).sum()
    }

    /// Wall time recorded for one step.
    pub fn step_time(&self, step: Step) -> Duration {
        self.time.get(&step).map(|t| t.total).unwrap_or_default()
    }

    /// Total wall time across all steps.
    pub fn total_time(&self) -> Duration {
        self.time.values().map(|t| t.total).sum()
    }

    /// Iterates over all (step, link, stats) communication rows.
    pub fn comm_rows(&self) -> impl Iterator<Item = (Step, LinkKind, LinkStats)> + '_ {
        self.comm.iter().map(|(&(s, l), &stats)| (s, l, stats))
    }

    /// Reliability counters accumulated during the run.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Renders the reliability counters, or a "no faults" line when the
    /// run was clean.
    pub fn render_fault_summary(&self) -> String {
        let f = self.faults;
        if f.is_empty() {
            return String::from("Reliability: no timeouts, retries or injected faults\n");
        }
        let mut out = String::from("Reliability events\n------------------\n");
        for (label, count) in [
            ("receive timeouts", f.timeouts),
            ("retry windows used", f.retries),
            ("messages dropped (injected)", f.drops_injected),
            ("messages delayed (injected)", f.delays_injected),
            ("duplicates injected", f.duplicates_injected),
            ("duplicates suppressed", f.duplicates_suppressed),
            ("corruptions injected", f.corruptions_injected),
            ("corruptions detected", f.corruptions_detected),
            ("sends by crashed parties", f.crashed_sends),
        ] {
            if count > 0 {
                out.push_str(&format!("{label:<28} | {count}\n"));
            }
        }
        out
    }

    /// Renders the paper's Table I (per-step running time in seconds).
    pub fn render_table1(&self) -> String {
        let mut out = String::from("Step                     | Average Running Time (s)\n");
        out.push_str("-------------------------|-------------------------\n");
        for step in Step::ALL {
            if step.paper_number().is_none() {
                continue;
            }
            let t = self.step_time(step);
            if t.is_zero() && self.step_bytes(step) == 0 {
                continue;
            }
            out.push_str(&format!("{:<24} | {:.3}\n", step.to_string(), t.as_secs_f64()));
        }
        out.push_str(&format!("{:<24} | {:.3}\n", "Overall", self.total_time().as_secs_f64()));
        if !self.faults.is_empty() {
            out.push('\n');
            out.push_str(&self.render_fault_summary());
        }
        out
    }

    /// Renders the paper's Table II (per-step message size in KB per
    /// party/link).
    pub fn render_table2(&self) -> String {
        let mut out = String::from("Step                     | Message Size Per Party (KB)\n");
        out.push_str("-------------------------|----------------------------\n");
        for step in Step::ALL {
            if step.paper_number().is_none() {
                continue;
            }
            for link in [LinkKind::UserToServer, LinkKind::ServerToServer, LinkKind::ServerToUser] {
                let stats = self.link_stats(step, link);
                if stats.bytes == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<24} | {} ({link})\n",
                    step.to_string(),
                    stats.bytes / 1024,
                ));
            }
        }
        if !self.faults.is_empty() {
            out.push('\n');
            out.push_str(&self.render_fault_summary());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_messages() {
        let meter = Meter::new();
        meter.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 100);
        meter.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 50);
        meter.record_message(Step::CompareRank, LinkKind::ServerToServer, 2048);
        let report = meter.report();
        let s = report.link_stats(Step::SecureSumVotes, LinkKind::UserToServer);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(report.step_bytes(Step::CompareRank), 2048);
        assert_eq!(report.total_bytes(), 2198);
    }

    #[test]
    fn timing_accumulates() {
        let meter = Meter::new();
        meter.record_time(Step::BlindPermute1, Duration::from_millis(5));
        meter.record_time(Step::BlindPermute1, Duration::from_millis(7));
        let report = meter.report();
        assert_eq!(report.step_time(Step::BlindPermute1), Duration::from_millis(12));
        assert_eq!(report.total_time(), Duration::from_millis(12));
    }

    #[test]
    fn time_closure_returns_value() {
        let meter = Meter::new();
        let v = meter.time(Step::Restoration, || 41 + 1);
        assert_eq!(v, 42);
        assert!(meter.report().step_time(Step::Restoration) > Duration::ZERO);
    }

    #[test]
    fn reset_clears() {
        let meter = Meter::new();
        meter.record_message(Step::Setup, LinkKind::UserToServer, 10);
        meter.reset();
        assert_eq!(meter.report().total_bytes(), 0);
    }

    #[test]
    fn table_renderers_contain_step_names() {
        let meter = Meter::new();
        meter.record_time(Step::CompareRank, Duration::from_secs(1));
        meter.record_message(Step::CompareRank, LinkKind::ServerToServer, 4096);
        let report = meter.report();
        let t1 = report.render_table1();
        assert!(t1.contains("Secure Comparison (4)"), "{t1}");
        assert!(t1.contains("Overall"));
        let t2 = report.render_table2();
        assert!(t2.contains("server-to-server"), "{t2}");
        assert!(t2.contains("4 ("), "4 KB expected: {t2}");
    }

    #[test]
    fn fault_events_accumulate_and_render() {
        let meter = Meter::new();
        assert!(meter.fault_stats().is_empty());
        meter.record_fault(FaultEvent::Timeout);
        meter.record_fault(FaultEvent::Retry);
        meter.record_fault(FaultEvent::Retry);
        meter.record_fault(FaultEvent::DropInjected);
        meter.record_fault(FaultEvent::DuplicateSuppressed);
        meter.record_fault(FaultEvent::CorruptionDetected);
        meter.record_fault(FaultEvent::CrashedSend);
        let stats = meter.fault_stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.drops_injected, 1);
        assert_eq!(stats.duplicates_suppressed, 1);
        assert_eq!(stats.corruptions_detected, 1);
        assert_eq!(stats.crashed_sends, 1);
        let report = meter.report();
        let summary = report.render_fault_summary();
        assert!(summary.contains("receive timeouts"), "{summary}");
        assert!(summary.contains("retry windows used"), "{summary}");
        // Faulty runs surface the counters in both paper tables.
        assert!(report.render_table1().contains("Reliability events"));
        assert!(report.render_table2().contains("Reliability events"));
        meter.reset();
        assert!(meter.fault_stats().is_empty());
    }

    #[test]
    fn clean_runs_keep_tables_unchanged() {
        let meter = Meter::new();
        meter.record_time(Step::CompareRank, Duration::from_millis(1));
        let report = meter.report();
        assert!(!report.render_table1().contains("Reliability events"));
        assert!(report.render_fault_summary().contains("no timeouts"));
    }

    #[test]
    fn paper_numbers_match_algorithm5() {
        assert_eq!(Step::SecureSumVotes.paper_number(), Some(2));
        assert_eq!(Step::Restoration.paper_number(), Some(9));
        assert_eq!(Step::Setup.paper_number(), None);
    }

    #[test]
    fn concurrent_recording() {
        let meter = Meter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&meter);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 1);
                    }
                });
            }
        });
        assert_eq!(meter.report().total_bytes(), 800);
    }
}
