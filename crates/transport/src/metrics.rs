//! Per-step communication and computation accounting.
//!
//! Every protocol message is tagged with the [`Step`] of Alg. 5 it belongs
//! to; the [`Meter`] aggregates bytes and message counts per step and link
//! direction (user→server vs server↔server), plus wall-clock time per
//! step. [`MeterReport`] renders the same rows as the paper's Table I
//! (computational costs) and Table II (communication costs).
//!
//! The meter is shared by every endpoint and, since the data-parallel
//! engine landed, by every worker thread inside a single endpoint's hot
//! loops. Counters are therefore plain relaxed atomics over fixed
//! `Step × LinkKind` arrays — recording never takes a lock and never
//! allocates, so metering adds no serialization point to parallel
//! sections.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// The protocol step a message or timing belongs to, named and numbered as
/// in Alg. 5 of the paper (and Tables I/II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Key distribution and session setup (not in the paper's tables).
    Setup,
    /// Step 2 — users send encrypted vote shares; servers aggregate.
    SecureSumVotes,
    /// Step 3 — first Blind-and-Permute over the aggregated shares.
    BlindPermute1,
    /// Step 4 — pairwise DGK comparisons to find `π(i*)`.
    CompareRank,
    /// Step 5 — DGK threshold check of the noisy maximum.
    ThresholdCheck,
    /// Step 6 — users send noisy shares for Report Noisy Max.
    SecureSumNoisy,
    /// Step 7 — second Blind-and-Permute.
    BlindPermute2,
    /// Step 8 — pairwise DGK comparisons on noisy votes to find `π′(ĩ*)`.
    CompareNoisyRank,
    /// Step 9 — Restoration of the winning index.
    Restoration,
}

impl Step {
    /// All steps in protocol order.
    pub const ALL: [Step; 9] = [
        Step::Setup,
        Step::SecureSumVotes,
        Step::BlindPermute1,
        Step::CompareRank,
        Step::ThresholdCheck,
        Step::SecureSumNoisy,
        Step::BlindPermute2,
        Step::CompareNoisyRank,
        Step::Restoration,
    ];

    /// Dense index into the meter's per-step counter arrays.
    const fn index(self) -> usize {
        match self {
            Step::Setup => 0,
            Step::SecureSumVotes => 1,
            Step::BlindPermute1 => 2,
            Step::CompareRank => 3,
            Step::ThresholdCheck => 4,
            Step::SecureSumNoisy => 5,
            Step::BlindPermute2 => 6,
            Step::CompareNoisyRank => 7,
            Step::Restoration => 8,
        }
    }

    /// Position of this step in [`Step::ALL`] — a dense, stable ordinal
    /// also used as the step's wire tag in checkpoint records.
    pub const fn ordinal(self) -> u8 {
        self.index() as u8
    }

    /// Inverse of [`Step::ordinal`]: `None` if `tag` is out of range.
    pub fn from_ordinal(tag: u8) -> Option<Step> {
        Step::ALL.get(tag as usize).copied()
    }

    /// The step number used in Alg. 5 / Tables I-II, or `None` for setup.
    pub fn paper_number(&self) -> Option<u8> {
        match self {
            Step::Setup => None,
            Step::SecureSumVotes => Some(2),
            Step::BlindPermute1 => Some(3),
            Step::CompareRank => Some(4),
            Step::ThresholdCheck => Some(5),
            Step::SecureSumNoisy => Some(6),
            Step::BlindPermute2 => Some(7),
            Step::CompareNoisyRank => Some(8),
            Step::Restoration => Some(9),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Step::Setup => "Setup",
            Step::SecureSumVotes => "Secure Sum",
            Step::BlindPermute1 => "Blind-and-Permute",
            Step::CompareRank => "Secure Comparison",
            Step::ThresholdCheck => "Threshold Checking",
            Step::SecureSumNoisy => "Secure Sum",
            Step::BlindPermute2 => "Blind-and-Permute",
            Step::CompareNoisyRank => "Secure Comparison",
            Step::Restoration => "Restoration",
        };
        match self.paper_number() {
            Some(n) => write!(f, "{name} ({n})"),
            None => write!(f, "{name}"),
        }
    }
}

/// Which kind of link carried a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// A user sending to one of the servers.
    UserToServer,
    /// Server-to-server traffic.
    ServerToServer,
    /// A server replying to a user (rare in this protocol).
    ServerToUser,
}

impl LinkKind {
    /// All link kinds, in counter-array order.
    const ALL: [LinkKind; 3] =
        [LinkKind::UserToServer, LinkKind::ServerToServer, LinkKind::ServerToUser];

    /// Dense index into the meter's per-link counter arrays.
    const fn index(self) -> usize {
        match self {
            LinkKind::UserToServer => 0,
            LinkKind::ServerToServer => 1,
            LinkKind::ServerToUser => 2,
        }
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::UserToServer => write!(f, "user-to-server"),
            LinkKind::ServerToServer => write!(f, "server-to-server"),
            LinkKind::ServerToUser => write!(f, "server-to-user"),
        }
    }
}

/// Byte/message counters for one (step, link) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Number of messages sent.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// A reliability event observed by an endpoint.
///
/// Injected events come from an attached [`crate::faults::FaultPlan`];
/// detected/observed events come from the receive path regardless of
/// whether a plan is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEvent {
    /// A receive exhausted every retry window.
    Timeout,
    /// A receive window expired and an extended (retry) window began.
    Retry,
    /// The plan discarded a sent message.
    DropInjected,
    /// The plan attached a delivery delay to a sent message.
    DelayInjected,
    /// The plan enqueued an extra copy of a sent message.
    DuplicateInjected,
    /// The receiver's dedup layer discarded a duplicate frame.
    DuplicateSuppressed,
    /// The plan flipped payload bits in a sent message.
    CorruptionInjected,
    /// A frame checksum mismatch was caught on receive.
    CorruptionDetected,
    /// A crashed party attempted a send (silently discarded).
    CrashedSend,
    /// A round state snapshot was written to a checkpoint store.
    CheckpointSaved,
    /// A round state snapshot was restored from a checkpoint store.
    CheckpointRestored,
    /// A supervised round was resumed from a checkpoint after a failure.
    RoundResumed,
    /// An inbound Paillier ciphertext failed well-formedness validation.
    RejectedCiphertext,
    /// An inbound share vector had the wrong arity for the session.
    RejectedArity,
    /// An inbound (sender, step, seq) submission was already processed.
    RejectedDuplicate,
    /// A send found its bounded link queue full and had to block until
    /// the consumer made room (backpressure, not loss).
    BackpressureBlocked,
    /// A connected peer went silent past the liveness deadline and was
    /// declared dead (the receive fails over to the dropout path).
    LivenessExpired,
    /// A severed socket link was re-established and resumed from the
    /// last acknowledged sequence number.
    Reconnected,
    /// A covert-security audit challenge verification ran on a
    /// server-to-server step (commitment opened and replayed).
    AuditChallenge,
    /// An audit verification found a deviation and raised a typed
    /// audit failure.
    AuditFailureDetected,
    /// An audit verification caught a server equivocating: the frames it
    /// attested to differ from the frames it put on the wire, or its
    /// opening does not match its pre-step commitment.
    EquivocationDetected,
    /// A planned aggregation shard lost its *entire* membership: every
    /// member dropped before reconciliation, and the round degraded to
    /// the surviving shards with rescaled noise instead of aborting.
    ShardDropped,
    /// A reactor admitted a new concurrent consensus session.
    SessionAdmitted,
    /// A reactor refused a new session (capacity cap or privacy budget)
    /// with a typed `SessionRejected` instead of queueing it.
    SessionRejected,
    /// A reactor evicted a stalled session whose per-session deadline
    /// passed, failing it over to the dropout/`QuorumLost` path without
    /// touching its neighbors.
    SessionEvicted,
}

/// Totals of reliability events, one counter per [`FaultEvent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Receives that exhausted every retry window.
    pub timeouts: u64,
    /// Extended receive windows consumed.
    pub retries: u64,
    /// Messages discarded by the fault plan.
    pub drops_injected: u64,
    /// Messages delayed by the fault plan.
    pub delays_injected: u64,
    /// Extra copies enqueued by the fault plan.
    pub duplicates_injected: u64,
    /// Duplicate frames discarded by receivers.
    pub duplicates_suppressed: u64,
    /// Payloads corrupted by the fault plan.
    pub corruptions_injected: u64,
    /// Checksum mismatches caught by receivers.
    pub corruptions_detected: u64,
    /// Sends attempted by crashed parties.
    pub crashed_sends: u64,
    /// Round state snapshots written to a checkpoint store.
    pub checkpoints_saved: u64,
    /// Round state snapshots restored from a checkpoint store.
    pub checkpoints_restored: u64,
    /// Supervised rounds resumed from a checkpoint after a failure.
    pub rounds_resumed: u64,
    /// Inbound ciphertexts rejected by well-formedness validation.
    pub rejected_ciphertexts: u64,
    /// Inbound share vectors rejected for wrong arity.
    pub rejected_arity: u64,
    /// Inbound submissions rejected as (sender, step, seq) duplicates.
    pub rejected_duplicates: u64,
    /// Sends that blocked on a full bounded link queue.
    pub backpressure_blocked: u64,
    /// Peers declared dead after going silent past the liveness deadline.
    pub liveness_expired: u64,
    /// Socket links re-established after a connection loss.
    pub reconnects: u64,
    /// Audit challenge verifications run on server-to-server steps.
    pub audit_challenges: u64,
    /// Audit verifications that found a deviation.
    pub audit_failures: u64,
    /// Audit verifications that caught a server equivocating between its
    /// attested transcript and the frames it actually sent.
    pub equivocation_detected: u64,
    /// Aggregation shards whose entire membership dropped mid-round
    /// (the round completed on the surviving shards).
    pub shards_dropped: u64,
    /// Concurrent consensus sessions admitted by a reactor.
    pub sessions_admitted: u64,
    /// Sessions refused at admission (capacity cap or privacy budget).
    pub sessions_rejected: u64,
    /// Stalled sessions evicted by a per-session deadline watchdog.
    pub sessions_evicted: u64,
}

impl FaultEvent {
    /// Dense index into the meter's fault-counter array.
    const fn index(self) -> usize {
        match self {
            FaultEvent::Timeout => 0,
            FaultEvent::Retry => 1,
            FaultEvent::DropInjected => 2,
            FaultEvent::DelayInjected => 3,
            FaultEvent::DuplicateInjected => 4,
            FaultEvent::DuplicateSuppressed => 5,
            FaultEvent::CorruptionInjected => 6,
            FaultEvent::CorruptionDetected => 7,
            FaultEvent::CrashedSend => 8,
            FaultEvent::CheckpointSaved => 9,
            FaultEvent::CheckpointRestored => 10,
            FaultEvent::RoundResumed => 11,
            FaultEvent::RejectedCiphertext => 12,
            FaultEvent::RejectedArity => 13,
            FaultEvent::RejectedDuplicate => 14,
            FaultEvent::BackpressureBlocked => 15,
            FaultEvent::LivenessExpired => 16,
            FaultEvent::Reconnected => 17,
            FaultEvent::AuditChallenge => 18,
            FaultEvent::AuditFailureDetected => 19,
            FaultEvent::EquivocationDetected => 20,
            FaultEvent::ShardDropped => 21,
            FaultEvent::SessionAdmitted => 22,
            FaultEvent::SessionRejected => 23,
            FaultEvent::SessionEvicted => 24,
        }
    }
}

/// Number of [`FaultEvent`] variants (fault-counter array length).
const FAULT_KINDS: usize = 25;

impl FaultStats {
    /// True if no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Wall-clock totals for one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeStats {
    /// Accumulated duration across all recorded spans.
    pub total: Duration,
    /// Number of recorded spans.
    pub spans: u64,
}

/// Message/byte counters for one (step, link) cell.
#[derive(Default)]
struct CommCell {
    messages: AtomicU64,
    bytes: AtomicU64,
}

/// Wall-clock counters for one step.
#[derive(Default)]
struct TimeCell {
    nanos: AtomicU64,
    spans: AtomicU64,
}

/// Thread-safe accumulator shared by all endpoints of a [`crate::Network`].
///
/// Internally a fixed `Step × LinkKind` grid of relaxed atomics: recording
/// a message, span or fault is a pair of `fetch_add`s with no lock and no
/// allocation, so worker threads inside the data-parallel hot loops never
/// serialize on the meter. Snapshots ([`Meter::report`]) are *per-counter*
/// consistent, not cross-counter atomic — fine for accounting, as every
/// caller quiesces the protocol before reading.
#[derive(Default)]
pub struct Meter {
    comm: [[CommCell; LinkKind::ALL.len()]; Step::ALL.len()],
    time: [TimeCell; Step::ALL.len()],
    faults: [AtomicU64; FAULT_KINDS],
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Arc<Meter> {
        Arc::new(Meter::default())
    }

    /// Records one message of `bytes` payload bytes.
    pub fn record_message(&self, step: Step, link: LinkKind, bytes: usize) {
        let cell = &self.comm[step.index()][link.index()];
        cell.messages.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records `elapsed` wall-clock time against `step`.
    pub fn record_time(&self, step: Step, elapsed: Duration) {
        let cell = &self.time[step.index()];
        cell.nanos
            .fetch_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
        cell.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Times a closure and records its duration against `step`.
    pub fn time<T>(&self, step: Step, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_time(step, start.elapsed());
        out
    }

    /// Records one reliability event.
    pub fn record_fault(&self, event: FaultEvent) {
        self.faults[event.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the reliability counters alone.
    pub fn fault_stats(&self) -> FaultStats {
        let read = |event: FaultEvent| self.faults[event.index()].load(Ordering::Relaxed);
        FaultStats {
            timeouts: read(FaultEvent::Timeout),
            retries: read(FaultEvent::Retry),
            drops_injected: read(FaultEvent::DropInjected),
            delays_injected: read(FaultEvent::DelayInjected),
            duplicates_injected: read(FaultEvent::DuplicateInjected),
            duplicates_suppressed: read(FaultEvent::DuplicateSuppressed),
            corruptions_injected: read(FaultEvent::CorruptionInjected),
            corruptions_detected: read(FaultEvent::CorruptionDetected),
            crashed_sends: read(FaultEvent::CrashedSend),
            checkpoints_saved: read(FaultEvent::CheckpointSaved),
            checkpoints_restored: read(FaultEvent::CheckpointRestored),
            rounds_resumed: read(FaultEvent::RoundResumed),
            rejected_ciphertexts: read(FaultEvent::RejectedCiphertext),
            rejected_arity: read(FaultEvent::RejectedArity),
            rejected_duplicates: read(FaultEvent::RejectedDuplicate),
            backpressure_blocked: read(FaultEvent::BackpressureBlocked),
            liveness_expired: read(FaultEvent::LivenessExpired),
            reconnects: read(FaultEvent::Reconnected),
            audit_challenges: read(FaultEvent::AuditChallenge),
            audit_failures: read(FaultEvent::AuditFailureDetected),
            equivocation_detected: read(FaultEvent::EquivocationDetected),
            shards_dropped: read(FaultEvent::ShardDropped),
            sessions_admitted: read(FaultEvent::SessionAdmitted),
            sessions_rejected: read(FaultEvent::SessionRejected),
            sessions_evicted: read(FaultEvent::SessionEvicted),
        }
    }

    /// Snapshot of all counters. Only touched rows appear in the report,
    /// mirroring the map-based meter this replaced.
    pub fn report(&self) -> MeterReport {
        let mut comm = BTreeMap::new();
        let mut time = BTreeMap::new();
        for step in Step::ALL {
            for link in LinkKind::ALL {
                let cell = &self.comm[step.index()][link.index()];
                let stats = LinkStats {
                    messages: cell.messages.load(Ordering::Relaxed),
                    bytes: cell.bytes.load(Ordering::Relaxed),
                };
                if stats.messages > 0 || stats.bytes > 0 {
                    comm.insert((step, link), stats);
                }
            }
            let cell = &self.time[step.index()];
            let spans = cell.spans.load(Ordering::Relaxed);
            if spans > 0 {
                let total = Duration::from_nanos(cell.nanos.load(Ordering::Relaxed));
                time.insert(step, TimeStats { total, spans });
            }
        }
        MeterReport { comm, time, faults: self.fault_stats() }
    }

    /// Clears all counters (e.g. between benchmark warmup and measurement).
    pub fn reset(&self) {
        for row in &self.comm {
            for cell in row {
                cell.messages.store(0, Ordering::Relaxed);
                cell.bytes.store(0, Ordering::Relaxed);
            }
        }
        for cell in &self.time {
            cell.nanos.store(0, Ordering::Relaxed);
            cell.spans.store(0, Ordering::Relaxed);
        }
        for counter in &self.faults {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = self
            .comm
            .iter()
            .flatten()
            .filter(|cell| cell.messages.load(Ordering::Relaxed) > 0)
            .count();
        write!(f, "Meter({rows} rows)")
    }
}

/// An immutable snapshot of meter counters, with Table I/II style
/// renderers.
#[derive(Debug, Clone, Default)]
pub struct MeterReport {
    comm: BTreeMap<(Step, LinkKind), LinkStats>,
    time: BTreeMap<Step, TimeStats>,
    faults: FaultStats,
}

impl MeterReport {
    /// Communication stats for one (step, link) pair.
    pub fn link_stats(&self, step: Step, link: LinkKind) -> LinkStats {
        self.comm.get(&(step, link)).copied().unwrap_or_default()
    }

    /// Total bytes sent in a step across all links.
    pub fn step_bytes(&self, step: Step) -> u64 {
        self.comm.iter().filter(|((s, _), _)| *s == step).map(|(_, stats)| stats.bytes).sum()
    }

    /// Total bytes across all steps and links.
    pub fn total_bytes(&self) -> u64 {
        self.comm.values().map(|s| s.bytes).sum()
    }

    /// Wall time recorded for one step.
    pub fn step_time(&self, step: Step) -> Duration {
        self.time.get(&step).map(|t| t.total).unwrap_or_default()
    }

    /// Total wall time across all steps.
    pub fn total_time(&self) -> Duration {
        self.time.values().map(|t| t.total).sum()
    }

    /// Iterates over all (step, link, stats) communication rows.
    pub fn comm_rows(&self) -> impl Iterator<Item = (Step, LinkKind, LinkStats)> + '_ {
        self.comm.iter().map(|(&(s, l), &stats)| (s, l, stats))
    }

    /// Reliability counters accumulated during the run.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Renders the reliability counters, or a "no faults" line when the
    /// run was clean.
    pub fn render_fault_summary(&self) -> String {
        let f = self.faults;
        if f.is_empty() {
            return String::from("Reliability: no timeouts, retries or injected faults\n");
        }
        let mut out = String::from("Reliability events\n------------------\n");
        for (label, count) in [
            ("receive timeouts", f.timeouts),
            ("retry windows used", f.retries),
            ("messages dropped (injected)", f.drops_injected),
            ("messages delayed (injected)", f.delays_injected),
            ("duplicates injected", f.duplicates_injected),
            ("duplicates suppressed", f.duplicates_suppressed),
            ("corruptions injected", f.corruptions_injected),
            ("corruptions detected", f.corruptions_detected),
            ("sends by crashed parties", f.crashed_sends),
            ("checkpoints saved", f.checkpoints_saved),
            ("checkpoints restored", f.checkpoints_restored),
            ("rounds resumed", f.rounds_resumed),
            ("ciphertexts rejected", f.rejected_ciphertexts),
            ("bad-arity vectors rejected", f.rejected_arity),
            ("duplicate submissions rejected", f.rejected_duplicates),
            ("sends blocked on backpressure", f.backpressure_blocked),
            ("peers declared dead (liveness)", f.liveness_expired),
            ("connections re-established", f.reconnects),
            ("audit challenges run", f.audit_challenges),
            ("audit failures detected", f.audit_failures),
            ("equivocations detected", f.equivocation_detected),
            ("whole shards dropped", f.shards_dropped),
            ("sessions admitted", f.sessions_admitted),
            ("sessions rejected (shedding)", f.sessions_rejected),
            ("sessions evicted (stalled)", f.sessions_evicted),
        ] {
            if count > 0 {
                out.push_str(&format!("{label:<28} | {count}\n"));
            }
        }
        out
    }

    /// Renders the paper's Table I (per-step running time in seconds).
    pub fn render_table1(&self) -> String {
        let mut out = String::from("Step                     | Average Running Time (s)\n");
        out.push_str("-------------------------|-------------------------\n");
        for step in Step::ALL {
            if step.paper_number().is_none() {
                continue;
            }
            let t = self.step_time(step);
            if t.is_zero() && self.step_bytes(step) == 0 {
                continue;
            }
            out.push_str(&format!("{:<24} | {:.3}\n", step.to_string(), t.as_secs_f64()));
        }
        out.push_str(&format!("{:<24} | {:.3}\n", "Overall", self.total_time().as_secs_f64()));
        if !self.faults.is_empty() {
            out.push('\n');
            out.push_str(&self.render_fault_summary());
        }
        out
    }

    /// Renders the paper's Table II (per-step message size in KB per
    /// party/link).
    pub fn render_table2(&self) -> String {
        let mut out = String::from("Step                     | Message Size Per Party (KB)\n");
        out.push_str("-------------------------|----------------------------\n");
        for step in Step::ALL {
            if step.paper_number().is_none() {
                continue;
            }
            for link in [LinkKind::UserToServer, LinkKind::ServerToServer, LinkKind::ServerToUser] {
                let stats = self.link_stats(step, link);
                if stats.bytes == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{:<24} | {} ({link})\n",
                    step.to_string(),
                    stats.bytes / 1024,
                ));
            }
        }
        if !self.faults.is_empty() {
            out.push('\n');
            out.push_str(&self.render_fault_summary());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_messages() {
        let meter = Meter::new();
        meter.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 100);
        meter.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 50);
        meter.record_message(Step::CompareRank, LinkKind::ServerToServer, 2048);
        let report = meter.report();
        let s = report.link_stats(Step::SecureSumVotes, LinkKind::UserToServer);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(report.step_bytes(Step::CompareRank), 2048);
        assert_eq!(report.total_bytes(), 2198);
    }

    #[test]
    fn timing_accumulates() {
        let meter = Meter::new();
        meter.record_time(Step::BlindPermute1, Duration::from_millis(5));
        meter.record_time(Step::BlindPermute1, Duration::from_millis(7));
        let report = meter.report();
        assert_eq!(report.step_time(Step::BlindPermute1), Duration::from_millis(12));
        assert_eq!(report.total_time(), Duration::from_millis(12));
    }

    #[test]
    fn time_closure_returns_value() {
        let meter = Meter::new();
        let v = meter.time(Step::Restoration, || 41 + 1);
        assert_eq!(v, 42);
        assert!(meter.report().step_time(Step::Restoration) > Duration::ZERO);
    }

    #[test]
    fn reset_clears() {
        let meter = Meter::new();
        meter.record_message(Step::Setup, LinkKind::UserToServer, 10);
        meter.reset();
        assert_eq!(meter.report().total_bytes(), 0);
    }

    #[test]
    fn table_renderers_contain_step_names() {
        let meter = Meter::new();
        meter.record_time(Step::CompareRank, Duration::from_secs(1));
        meter.record_message(Step::CompareRank, LinkKind::ServerToServer, 4096);
        let report = meter.report();
        let t1 = report.render_table1();
        assert!(t1.contains("Secure Comparison (4)"), "{t1}");
        assert!(t1.contains("Overall"));
        let t2 = report.render_table2();
        assert!(t2.contains("server-to-server"), "{t2}");
        assert!(t2.contains("4 ("), "4 KB expected: {t2}");
    }

    #[test]
    fn fault_events_accumulate_and_render() {
        let meter = Meter::new();
        assert!(meter.fault_stats().is_empty());
        meter.record_fault(FaultEvent::Timeout);
        meter.record_fault(FaultEvent::Retry);
        meter.record_fault(FaultEvent::Retry);
        meter.record_fault(FaultEvent::DropInjected);
        meter.record_fault(FaultEvent::DuplicateSuppressed);
        meter.record_fault(FaultEvent::CorruptionDetected);
        meter.record_fault(FaultEvent::CrashedSend);
        let stats = meter.fault_stats();
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.drops_injected, 1);
        assert_eq!(stats.duplicates_suppressed, 1);
        assert_eq!(stats.corruptions_detected, 1);
        assert_eq!(stats.crashed_sends, 1);
        let report = meter.report();
        let summary = report.render_fault_summary();
        assert!(summary.contains("receive timeouts"), "{summary}");
        assert!(summary.contains("retry windows used"), "{summary}");
        // Faulty runs surface the counters in both paper tables.
        assert!(report.render_table1().contains("Reliability events"));
        assert!(report.render_table2().contains("Reliability events"));
        meter.reset();
        assert!(meter.fault_stats().is_empty());
    }

    #[test]
    fn clean_runs_keep_tables_unchanged() {
        let meter = Meter::new();
        meter.record_time(Step::CompareRank, Duration::from_millis(1));
        let report = meter.report();
        assert!(!report.render_table1().contains("Reliability events"));
        assert!(report.render_fault_summary().contains("no timeouts"));
    }

    #[test]
    fn recovery_and_rejection_counters_accumulate() {
        let meter = Meter::new();
        meter.record_fault(FaultEvent::CheckpointSaved);
        meter.record_fault(FaultEvent::CheckpointSaved);
        meter.record_fault(FaultEvent::CheckpointRestored);
        meter.record_fault(FaultEvent::RoundResumed);
        meter.record_fault(FaultEvent::RejectedCiphertext);
        meter.record_fault(FaultEvent::RejectedArity);
        meter.record_fault(FaultEvent::RejectedDuplicate);
        let stats = meter.fault_stats();
        assert_eq!(stats.checkpoints_saved, 2);
        assert_eq!(stats.checkpoints_restored, 1);
        assert_eq!(stats.rounds_resumed, 1);
        assert_eq!(stats.rejected_ciphertexts, 1);
        assert_eq!(stats.rejected_arity, 1);
        assert_eq!(stats.rejected_duplicates, 1);
        let summary = meter.report().render_fault_summary();
        assert!(summary.contains("checkpoints saved"), "{summary}");
        assert!(summary.contains("rounds resumed"), "{summary}");
        assert!(summary.contains("duplicate submissions rejected"), "{summary}");
    }

    #[test]
    fn transport_robustness_counters_accumulate() {
        let meter = Meter::new();
        meter.record_fault(FaultEvent::BackpressureBlocked);
        meter.record_fault(FaultEvent::BackpressureBlocked);
        meter.record_fault(FaultEvent::LivenessExpired);
        meter.record_fault(FaultEvent::Reconnected);
        let stats = meter.fault_stats();
        assert_eq!(stats.backpressure_blocked, 2);
        assert_eq!(stats.liveness_expired, 1);
        assert_eq!(stats.reconnects, 1);
        let summary = meter.report().render_fault_summary();
        assert!(summary.contains("sends blocked on backpressure"), "{summary}");
        assert!(summary.contains("peers declared dead (liveness)"), "{summary}");
        assert!(summary.contains("connections re-established"), "{summary}");
    }

    #[test]
    fn audit_counters_accumulate_and_render() {
        let meter = Meter::new();
        meter.record_fault(FaultEvent::AuditChallenge);
        meter.record_fault(FaultEvent::AuditChallenge);
        meter.record_fault(FaultEvent::AuditFailureDetected);
        meter.record_fault(FaultEvent::EquivocationDetected);
        let stats = meter.fault_stats();
        assert_eq!(stats.audit_challenges, 2);
        assert_eq!(stats.audit_failures, 1);
        assert_eq!(stats.equivocation_detected, 1);
        assert!(!stats.is_empty());
        let summary = meter.report().render_fault_summary();
        assert!(summary.contains("audit challenges run"), "{summary}");
        assert!(summary.contains("audit failures detected"), "{summary}");
        assert!(summary.contains("equivocations detected"), "{summary}");
    }

    #[test]
    fn session_counters_accumulate_and_render() {
        let meter = Meter::new();
        meter.record_fault(FaultEvent::SessionAdmitted);
        meter.record_fault(FaultEvent::SessionAdmitted);
        meter.record_fault(FaultEvent::SessionRejected);
        meter.record_fault(FaultEvent::SessionEvicted);
        let stats = meter.fault_stats();
        assert_eq!(stats.sessions_admitted, 2);
        assert_eq!(stats.sessions_rejected, 1);
        assert_eq!(stats.sessions_evicted, 1);
        let summary = meter.report().render_fault_summary();
        assert!(summary.contains("sessions admitted"), "{summary}");
        assert!(summary.contains("sessions rejected (shedding)"), "{summary}");
        assert!(summary.contains("sessions evicted (stalled)"), "{summary}");
    }

    #[test]
    fn step_ordinals_roundtrip() {
        for (i, &step) in Step::ALL.iter().enumerate() {
            assert_eq!(step.ordinal() as usize, i);
            assert_eq!(Step::from_ordinal(step.ordinal()), Some(step));
        }
        assert_eq!(Step::from_ordinal(9), None);
        assert_eq!(Step::from_ordinal(255), None);
    }

    #[test]
    fn paper_numbers_match_algorithm5() {
        assert_eq!(Step::SecureSumVotes.paper_number(), Some(2));
        assert_eq!(Step::Restoration.paper_number(), Some(9));
        assert_eq!(Step::Setup.paper_number(), None);
    }

    #[test]
    fn concurrent_recording() {
        let meter = Meter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&meter);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.record_message(Step::SecureSumVotes, LinkKind::UserToServer, 1);
                    }
                });
            }
        });
        assert_eq!(meter.report().total_bytes(), 800);
    }

    #[test]
    fn concurrent_time_and_fault_recording() {
        let meter = Meter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&meter);
                s.spawn(move || {
                    for _ in 0..50 {
                        m.record_time(Step::CompareRank, Duration::from_nanos(10));
                        m.record_fault(FaultEvent::Retry);
                    }
                });
            }
        });
        let report = meter.report();
        assert_eq!(report.step_time(Step::CompareRank), Duration::from_nanos(2000));
        assert_eq!(report.fault_stats().retries, 200);
    }

    #[test]
    fn untouched_steps_stay_out_of_the_report() {
        let meter = Meter::new();
        meter.record_message(Step::Restoration, LinkKind::ServerToUser, 0);
        let report = meter.report();
        assert_eq!(report.comm_rows().count(), 1);
        let stats = report.link_stats(Step::Restoration, LinkKind::ServerToUser);
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 0);
    }
}
