//! Network of parties and endpoints with typed, metered send/receive.
//!
//! A [`Network`] wires `N` users and two servers into a full mesh of
//! *bounded* links over one of two interchangeable backends
//! ([`TransportBackend`]): the in-proc channel mesh, or real loopback
//! TCP sockets (see [`crate::tcp`]). Each party takes its [`Endpoint`]
//! and can then be moved onto its own thread; `send`/`recv` are typed
//! through the [`Wire`] codec and metered per [`Step`]. Everything above
//! the link — sequence numbers, checksums, dedup, stashing, timeouts,
//! fault injection — is backend-agnostic, so protocol code runs
//! unmodified over either backend and produces identical transcripts.
//!
//! Reliability: every frame carries a sequence number and checksum, so
//! duplicated frames are suppressed and corrupted frames are detected on
//! receive. Link queues are bounded (a slow consumer blocks its senders
//! instead of growing an unbounded buffer — see [`crate::link`]).
//! Receive deadlines come from a per-network [`TimeoutPolicy`]
//! (overridable per call), and a [`FaultPlan`] can be attached at
//! construction to inject deterministic drop/delay/duplicate/corrupt/crash
//! faults — see [`crate::faults`]. On the TCP backend a heartbeat-fed
//! liveness deadline additionally converts a dead peer into a prompt
//! [`TransportError::Timeout`] (the existing dropout path).

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError};
use parking_lot::Mutex;

use crate::faults::FaultPlan;
use crate::link::{corrupt_payload, frame_checksum, Envelope, LinkSender, DEFAULT_CAPACITY};
use crate::metrics::{FaultEvent, LinkKind, Meter, Step};
use crate::tcp::{build_mesh, Liveness, TcpConfig, TcpFabric};
use crate::wire::{Wire, WireError};

/// Identifies a protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// User `u ∈ U` (a teacher).
    User(usize),
    /// Aggregation server S1.
    Server1,
    /// Aggregation server S2.
    Server2,
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::User(u) => write!(f, "user{u}"),
            PartyId::Server1 => write!(f, "S1"),
            PartyId::Server2 => write!(f, "S2"),
        }
    }
}

impl PartyId {
    /// Classifies the link from `self` to `to` for metering.
    pub fn link_to(&self, to: PartyId) -> LinkKind {
        match (self, to) {
            (PartyId::User(_), _) => LinkKind::UserToServer,
            (_, PartyId::User(_)) => LinkKind::ServerToUser,
            _ => LinkKind::ServerToServer,
        }
    }
}

impl Wire for PartyId {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PartyId::Server1 => 1u8.encode(buf),
            PartyId::Server2 => 2u8.encode(buf),
            PartyId::User(u) => {
                3u8.encode(buf);
                (*u as u64).encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            1 => Ok(PartyId::Server1),
            2 => Ok(PartyId::Server2),
            3 => Ok(PartyId::User(u64::decode(buf)? as usize)),
            tag => Err(WireError::InvalidTag(tag)),
        }
    }
}

/// Errors surfaced by endpoint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination endpoint's receiver was dropped.
    Disconnected(PartyId),
    /// Decoding a received payload failed.
    Codec(WireError),
    /// A receive did not complete within the configured timeout.
    Timeout(PartyId),
    /// A received frame failed its checksum (payload damaged in flight).
    Corrupt(PartyId),
    /// The requested endpoint was already taken or does not exist.
    UnknownParty(PartyId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected(p) => write!(f, "party {p} disconnected"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::Timeout(p) => write!(f, "timed out waiting for {p}"),
            TransportError::Corrupt(p) => write!(f, "corrupt frame from {p}"),
            TransportError::UnknownParty(p) => write!(f, "unknown or taken party {p}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Codec(e)
    }
}

/// Per-receive deadline and bounded-retry schedule.
///
/// A receive waits up to [`Self::base`]; each retry extends the wait by an
/// exponentially backed-off window ([`Self::backoff`]×), up to
/// [`Self::max_retries`] extra windows. Retries and final timeouts are
/// counted on the shared [`Meter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutPolicy {
    /// First wait window per receive.
    pub base: Duration,
    /// Extra windows granted after the first expires.
    pub max_retries: u32,
    /// Multiplier applied to each successive window (≥ 1).
    pub backoff: f64,
}

impl Default for TimeoutPolicy {
    /// 120 s single window — generous for in-process channels, but
    /// prevents a peer's mid-protocol failure from hanging the other side
    /// forever.
    fn default() -> TimeoutPolicy {
        TimeoutPolicy { base: Duration::from_secs(120), max_retries: 0, backoff: 2.0 }
    }
}

impl TimeoutPolicy {
    /// Single window of `base`, no retries.
    pub fn new(base: Duration) -> TimeoutPolicy {
        TimeoutPolicy { base, max_retries: 0, backoff: 2.0 }
    }

    /// A full schedule.
    ///
    /// # Panics
    ///
    /// Panics if `backoff < 1.0` (windows must not shrink).
    pub fn with_retries(base: Duration, max_retries: u32, backoff: f64) -> TimeoutPolicy {
        assert!(backoff >= 1.0, "backoff must be >= 1");
        TimeoutPolicy { base, max_retries, backoff }
    }

    /// Tuned for loopback transports in tests, examples and CI smokes:
    /// short windows with a couple of backed-off retries (~350 ms total
    /// budget), so a dead loopback peer is detected in milliseconds
    /// instead of riding the 120 s default.
    pub fn fast_local() -> TimeoutPolicy {
        TimeoutPolicy::with_retries(Duration::from_millis(50), 2, 2.0)
    }

    /// The duration of wait window `attempt` (0 = initial window).
    pub fn window(&self, attempt: u32) -> Duration {
        self.base.mul_f64(self.backoff.powi(attempt as i32))
    }

    /// Total wait across the initial window and every retry window.
    pub fn total_budget(&self) -> Duration {
        (0..=self.max_retries).map(|a| self.window(a)).sum()
    }
}

/// How a pulled envelope relates to the current receive deadline.
enum Delivery {
    /// Consumable now.
    Ready,
    /// Consumable after sleeping until the instant.
    Sleep(Instant),
    /// Not consumable in the current window, but a retry window could
    /// still reach it.
    NotYet,
    /// Cannot arrive within any window of this receive — discard.
    TooLate,
}

fn classify_delay(env: &Envelope, window_end: Instant, final_deadline: Instant) -> Delivery {
    match env.deliver_after {
        None => Delivery::Ready,
        Some(at) => {
            if at <= Instant::now() {
                Delivery::Ready
            } else if at <= window_end {
                Delivery::Sleep(at)
            } else if at <= final_deadline {
                Delivery::NotYet
            } else {
                Delivery::TooLate
            }
        }
    }
}

/// Everything that arrived during a partial [`Endpoint::recv_each`],
/// alongside who failed and how.
///
/// Unlike a bare [`TransportError`], this keeps the successfully received
/// values so a dropout-tolerant caller can continue with the surviving
/// subset.
pub struct RecvEachError<T> {
    /// Values that did arrive, labelled by sender.
    pub received: Vec<(PartyId, T)>,
    /// Senders whose receive failed, with the root error each.
    pub missing: Vec<(PartyId, TransportError)>,
}

impl<T> fmt::Debug for RecvEachError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecvEachError")
            .field("received", &self.received.iter().map(|(p, _)| *p).collect::<Vec<_>>())
            .field("missing", &self.missing)
            .finish()
    }
}

impl<T> fmt::Display for RecvEachError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} senders failed:",
            self.missing.len(),
            self.received.len() + self.missing.len()
        )?;
        for (p, e) in &self.missing {
            write!(f, " {p}: {e};")?;
        }
        Ok(())
    }
}

impl<T> Error for RecvEachError<T> {}

/// A party's handle on the network: typed send/receive plus the shared
/// meter.
pub struct Endpoint {
    id: PartyId,
    outgoing: HashMap<PartyId, LinkSender>,
    incoming: Receiver<Envelope>,
    /// Messages received from other parties while waiting for a specific
    /// sender; replayed on later receives.
    stashed: HashMap<PartyId, VecDeque<Envelope>>,
    /// Per-destination sequence counters (a `Mutex` because `send` takes
    /// `&self` so one party can fan out from shared references).
    send_seq: Mutex<HashMap<PartyId, u64>>,
    /// Highest sequence number accepted per sender (duplicate dedup).
    seen_seq: HashMap<PartyId, u64>,
    timeout: TimeoutPolicy,
    faults: Option<Arc<FaultPlan>>,
    meter: Arc<Meter>,
    /// The network's session id: liveness records on a shared link are
    /// keyed per `(peer, session)` so one stale session never fast-fails
    /// a healthy neighbor session.
    session: u64,
    /// TCP backend only: when each connected peer was last heard from.
    liveness: Option<Arc<Liveness>>,
    /// TCP backend only: keeps the socket fabric alive for as long as any
    /// endpoint is.
    _fabric: Option<Arc<TcpFabric>>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.id)
    }
}

impl Endpoint {
    /// This endpoint's identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// The receive policy this endpoint inherited from its network.
    pub fn timeout_policy(&self) -> TimeoutPolicy {
        self.timeout
    }

    /// The session id this endpoint's network was assembled with.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// How many receives on this endpoint have failed over to the
    /// dropout path because a peer's per-session liveness deadline
    /// lapsed (TCP backend only; always 0 in-process).
    pub fn liveness_expired_count(&self) -> u64 {
        self.liveness.as_ref().map_or(0, |l| l.expired_count(self.session))
    }

    /// Sends `value` to `to`, tagged with `step`.
    ///
    /// If a [`FaultPlan`] is attached, the message may be silently
    /// dropped, delayed, duplicated or corrupted here (each recorded on
    /// the meter); a crashed sender's messages always vanish.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownParty`] for destinations outside
    /// the network and [`TransportError::Disconnected`] if the peer's
    /// endpoint was dropped.
    pub fn send<T: Wire>(&self, to: PartyId, step: Step, value: &T) -> Result<(), TransportError> {
        if let Some(plan) = &self.faults {
            if plan.is_crashed(self.id, step) {
                // The dead party doesn't know it is dead: the send
                // "succeeds" locally and the bytes never leave.
                self.meter.record_fault(FaultEvent::CrashedSend);
                return Ok(());
            }
        }
        let payload = value.to_bytes();
        self.meter.record_message(step, self.id.link_to(to), payload.len());
        let sender = self.outgoing.get(&to).ok_or(TransportError::UnknownParty(to))?;
        let seq = {
            let mut counters = self.send_seq.lock();
            let counter = counters.entry(to).or_insert(0);
            *counter += 1;
            *counter
        };
        let decision = match &self.faults {
            Some(plan) => plan.decide(self.id, to, step, seq),
            None => crate::faults::FaultDecision::clean(),
        };
        if decision.drop {
            self.meter.record_fault(FaultEvent::DropInjected);
            return Ok(());
        }
        let checksum = frame_checksum(&payload, seq);
        let payload = if decision.corrupt {
            self.meter.record_fault(FaultEvent::CorruptionInjected);
            corrupt_payload(&payload, seq)
        } else {
            payload
        };
        let deliver_after = decision.delay.map(|d| {
            self.meter.record_fault(FaultEvent::DelayInjected);
            Instant::now() + d
        });
        let env = Envelope { from: self.id, step, seq, checksum, deliver_after, payload };
        for _ in 0..decision.duplicates {
            self.meter.record_fault(FaultEvent::DuplicateInjected);
            // A failed duplicate enqueue is indistinguishable from the
            // duplicate being lost — ignore it.
            let _ = sender.send(env.clone(), to, &self.meter);
        }
        sender.send(env, to, &self.meter)
    }

    /// Receives the next message *from a specific sender tagged with a
    /// specific step* under the network's [`TimeoutPolicy`]. Messages
    /// from other senders — or from this sender under a different step —
    /// that arrive in the meantime are stashed and replayed in order.
    /// Ordering within one `(sender, step)` stream is FIFO; matching on
    /// the step keeps a lossy link from desynchronizing a sender's
    /// stream across protocol steps (a dropped step-2 share must never
    /// make its step-6 share masquerade as the missing message).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] when every wait window is
    /// exhausted, [`TransportError::Corrupt`] if the frame fails its
    /// checksum, [`TransportError::Disconnected`] if all senders are
    /// gone, or [`TransportError::Codec`] if the payload fails to decode.
    pub fn recv<T: Wire>(&mut self, from: PartyId, step: Step) -> Result<T, TransportError> {
        self.recv_with_timeout(from, step, self.timeout)
    }

    /// [`Self::recv`], additionally returning the frame's per-link
    /// sequence number so application-layer validation can reject
    /// duplicate `(sender, step, seq)` submissions and recovery replay
    /// can stay idempotent.
    ///
    /// # Errors
    ///
    /// See [`Self::recv`].
    pub fn recv_tagged<T: Wire>(
        &mut self,
        from: PartyId,
        step: Step,
    ) -> Result<(u64, T), TransportError> {
        let env = self.recv_envelope(from, step, self.timeout)?;
        let seq = env.seq;
        let value = T::from_bytes(env.payload)?;
        Ok((seq, value))
    }

    /// [`Self::recv`] with an explicit per-call timeout policy.
    ///
    /// # Errors
    ///
    /// See [`Self::recv`].
    pub fn recv_with_timeout<T: Wire>(
        &mut self,
        from: PartyId,
        step: Step,
        policy: TimeoutPolicy,
    ) -> Result<T, TransportError> {
        let env = self.recv_envelope(from, step, policy)?;
        T::from_bytes(env.payload).map_err(Into::into)
    }

    /// The blocking matcher behind every receive: returns the next
    /// checksum-verified envelope from `(from, step)` within the policy's
    /// windows, stashing unrelated traffic.
    fn recv_envelope(
        &mut self,
        from: PartyId,
        step: Step,
        policy: TimeoutPolicy,
    ) -> Result<Envelope, TransportError> {
        let start = Instant::now();
        let final_deadline = start + policy.total_budget();
        let mut window_end = start + policy.window(0);
        let mut attempt: u32 = 0;
        loop {
            // Replay the oldest stashed message matching this sender and
            // step first (FIFO within the stream: nothing newer may
            // overtake it). Other-step stash entries stay put for their
            // own receives.
            let stash_idx =
                self.stashed.get(&from).and_then(|q| q.iter().position(|e| e.step == step));
            if let Some(idx) = stash_idx {
                let env = self
                    .stashed
                    .get_mut(&from)
                    .and_then(|q| q.remove(idx))
                    .expect("stash index just found");
                match classify_delay(&env, window_end, final_deadline) {
                    Delivery::Ready => return self.verify_envelope(env),
                    Delivery::Sleep(until) => {
                        std::thread::sleep(until.saturating_duration_since(Instant::now()));
                        return self.verify_envelope(env);
                    }
                    Delivery::NotYet => {
                        // Re-insert at the same position: it stays the
                        // stream head and blocks later same-step
                        // messages from overtaking it.
                        self.stashed.entry(from).or_default().insert(idx, env);
                    }
                    Delivery::TooLate => continue,
                }
            }
            // A stashed NotYet head must keep blocking the stream.
            let stream_blocked =
                self.stashed.get(&from).is_some_and(|q| q.iter().any(|e| e.step == step));
            let mut wait = window_end.saturating_duration_since(Instant::now());
            if let Some(live) = &self.liveness {
                // Wake periodically so a peer going silent mid-window is
                // noticed at the liveness deadline, not the policy one.
                wait = wait.min(live.poll_interval());
            }
            match self.incoming.recv_timeout(wait) {
                Ok(env) => {
                    let Some(env) = self.intake(env) else { continue };
                    if env.from == from && env.step == step && !stream_blocked {
                        match classify_delay(&env, window_end, final_deadline) {
                            Delivery::Ready => return self.verify_envelope(env),
                            Delivery::Sleep(until) => {
                                std::thread::sleep(until.saturating_duration_since(Instant::now()));
                                return self.verify_envelope(env);
                            }
                            Delivery::NotYet => {
                                self.stashed.entry(from).or_default().push_back(env);
                            }
                            Delivery::TooLate => continue,
                        }
                    } else {
                        self.stashed.entry(env.from).or_default().push_back(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.liveness.as_ref().is_some_and(|l| l.expired(from, self.session)) {
                        // The peer connected and then went silent past the
                        // heartbeat deadline in *this* session: declare it
                        // dead here instead of waiting out the full
                        // receive budget. Sessions sharing the link keep
                        // their own deadlines.
                        if let Some(live) = &self.liveness {
                            live.note_expired(self.session);
                        }
                        self.meter.record_fault(FaultEvent::LivenessExpired);
                        self.meter.record_fault(FaultEvent::Timeout);
                        return Err(TransportError::Timeout(from));
                    }
                    if Instant::now() < window_end {
                        continue; // liveness poll tick, window still open
                    }
                    if attempt < policy.max_retries {
                        attempt += 1;
                        self.meter.record_fault(FaultEvent::Retry);
                        window_end += policy.window(attempt);
                    } else {
                        self.meter.record_fault(FaultEvent::Timeout);
                        return Err(TransportError::Timeout(from));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Disconnected(from))
                }
            }
        }
    }

    /// Dedup gate: admits an envelope freshly pulled from the channel, or
    /// discards it as an already-seen duplicate.
    fn intake(&mut self, env: Envelope) -> Option<Envelope> {
        let last = self.seen_seq.entry(env.from).or_insert(0);
        if env.seq <= *last {
            self.meter.record_fault(FaultEvent::DuplicateSuppressed);
            return None;
        }
        *last = env.seq;
        Some(env)
    }

    /// Checksum-verifies a deliverable envelope.
    fn verify_envelope(&self, env: Envelope) -> Result<Envelope, TransportError> {
        if frame_checksum(&env.payload, env.seq) != env.checksum {
            self.meter.record_fault(FaultEvent::CorruptionDetected);
            return Err(TransportError::Corrupt(env.from));
        }
        Ok(env)
    }

    /// Receives one message from each of `froms`, in the given order,
    /// continuing past per-sender failures.
    ///
    /// # Errors
    ///
    /// If any sender fails, returns a [`RecvEachError`] carrying every
    /// value that *did* arrive plus the per-sender root errors — callers
    /// tolerating dropouts can proceed with the survivors.
    pub fn recv_each<T: Wire>(
        &mut self,
        froms: impl IntoIterator<Item = PartyId>,
        step: Step,
    ) -> Result<Vec<T>, RecvEachError<T>> {
        let mut received = Vec::new();
        let mut missing = Vec::new();
        for from in froms {
            match self.recv(from, step) {
                Ok(value) => received.push((from, value)),
                Err(e) => missing.push((from, e)),
            }
        }
        if missing.is_empty() {
            Ok(received.into_iter().map(|(_, v)| v).collect())
        } else {
            Err(RecvEachError { received, missing })
        }
    }
}

/// Which wire a [`Network`]'s links run over.
///
/// Protocol code is backend-agnostic: the same engine, supervisor and
/// examples run unmodified over either backend and produce bit-identical
/// transcripts (per-link FIFO and the seq-keyed dedup layer are
/// preserved by both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportBackend {
    /// Bounded in-process channels — fastest, no sockets.
    #[default]
    InProc,
    /// Real loopback TCP sockets with handshake, heartbeats and
    /// reconnect-and-resume — see [`crate::tcp`].
    Tcp(TcpConfig),
}

/// Source of default session ids: every network gets a fresh one so a
/// stray TCP connection from an earlier round fails the handshake.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

/// Configures a [`Network`] before construction.
#[derive(Debug)]
pub struct NetworkBuilder {
    num_users: usize,
    meter: Option<Arc<Meter>>,
    timeout: TimeoutPolicy,
    faults: Option<FaultPlan>,
    capacity: usize,
    backend: TransportBackend,
    session: Option<u64>,
}

impl NetworkBuilder {
    /// Records into an existing meter instead of a fresh one.
    #[must_use]
    pub fn meter(mut self, meter: Arc<Meter>) -> NetworkBuilder {
        self.meter = Some(meter);
        self
    }

    /// Receive deadline/retry schedule for every endpoint.
    #[must_use]
    pub fn timeout(mut self, policy: TimeoutPolicy) -> NetworkBuilder {
        self.timeout = policy;
        self
    }

    /// Attaches a deterministic fault plan to every endpoint.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> NetworkBuilder {
        self.faults = Some(plan);
        self
    }

    /// Bounded capacity of every link queue (default
    /// generous — a full protocol round never blocks on it). A send into
    /// a full queue records backpressure on the meter and blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> NetworkBuilder {
        assert!(capacity > 0, "link capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Selects the transport backend (default in-proc).
    #[must_use]
    pub fn backend(mut self, backend: TransportBackend) -> NetworkBuilder {
        self.backend = backend;
        self
    }

    /// Shorthand for [`Self::backend`] with a TCP configuration.
    #[must_use]
    pub fn tcp(self, cfg: TcpConfig) -> NetworkBuilder {
        self.backend(TransportBackend::Tcp(cfg))
    }

    /// Overrides the session id the TCP handshake negotiates (defaults
    /// to a process-unique counter value).
    #[must_use]
    pub fn session(mut self, session: u64) -> NetworkBuilder {
        self.session = Some(session);
        self
    }

    /// Wires the mesh.
    pub fn build(self) -> Network {
        Network::assemble(self)
    }
}

/// A network of `num_users` users plus the two servers over one
/// [`TransportBackend`].
pub struct Network {
    endpoints: HashMap<PartyId, Endpoint>,
    meter: Arc<Meter>,
    num_users: usize,
    faults: Option<Arc<FaultPlan>>,
    fabric: Option<Arc<TcpFabric>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} users + 2 servers)", self.num_users)
    }
}

impl Network {
    /// Builds a full mesh over `num_users` users and both servers, sharing
    /// one [`Meter`], with the default [`TimeoutPolicy`] and no faults.
    pub fn new(num_users: usize) -> Network {
        Self::builder(num_users).build()
    }

    /// Builds a network that records into an existing meter.
    pub fn with_meter(num_users: usize, meter: Arc<Meter>) -> Network {
        Self::builder(num_users).meter(meter).build()
    }

    /// Starts configuring a network.
    pub fn builder(num_users: usize) -> NetworkBuilder {
        NetworkBuilder {
            num_users,
            meter: None,
            timeout: TimeoutPolicy::default(),
            faults: None,
            capacity: DEFAULT_CAPACITY,
            backend: TransportBackend::default(),
            session: None,
        }
    }

    fn assemble(builder: NetworkBuilder) -> Network {
        let NetworkBuilder { num_users, meter, timeout, faults, capacity, backend, session } =
            builder;
        let meter = meter.unwrap_or_default();
        let faults = faults.map(Arc::new);
        let session = session.unwrap_or_else(|| NEXT_SESSION.fetch_add(1, Ordering::Relaxed));
        let parties: Vec<PartyId> =
            (0..num_users).map(PartyId::User).chain([PartyId::Server1, PartyId::Server2]).collect();

        let (mut incoming, mut outgoing, liveness, fabric) = match backend {
            TransportBackend::InProc => {
                let mut senders: HashMap<PartyId, crossbeam::channel::Sender<Envelope>> =
                    HashMap::new();
                let mut receivers: HashMap<PartyId, Receiver<Envelope>> = HashMap::new();
                for &p in &parties {
                    let (tx, rx) = bounded(capacity);
                    senders.insert(p, tx);
                    receivers.insert(p, rx);
                }
                // No self-sender: a party never messages itself, and keeping
                // one alive would stop channel disconnection from propagating
                // when a peer's endpoint is dropped mid-protocol.
                let outgoing = parties
                    .iter()
                    .map(|&p| {
                        let links = parties
                            .iter()
                            .filter(|&&q| q != p)
                            .map(|&q| (q, LinkSender::Channel(senders[&q].clone())))
                            .collect::<HashMap<_, _>>();
                        (p, links)
                    })
                    .collect::<HashMap<_, _>>();
                (receivers, outgoing, HashMap::new(), None)
            }
            TransportBackend::Tcp(cfg) => {
                let mesh = build_mesh(&parties, session, cfg, capacity, &meter, faults.as_deref());
                (mesh.incoming, mesh.outgoing, mesh.liveness, Some(mesh.fabric))
            }
        };

        let endpoints = parties
            .iter()
            .map(|&p| {
                let endpoint = Endpoint {
                    id: p,
                    outgoing: outgoing.remove(&p).expect("each party has links"),
                    incoming: incoming.remove(&p).expect("each party has a receiver"),
                    stashed: HashMap::new(),
                    send_seq: Mutex::new(HashMap::new()),
                    seen_seq: HashMap::new(),
                    timeout,
                    faults: faults.clone(),
                    meter: Arc::clone(&meter),
                    session,
                    liveness: liveness.get(&p).cloned(),
                    _fabric: fabric.clone(),
                };
                (p, endpoint)
            })
            .collect();
        Network { endpoints, meter, num_users, faults, fabric }
    }

    /// Number of users in the mesh.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// All user ids, in order.
    pub fn user_ids(&self) -> Vec<PartyId> {
        (0..self.num_users).map(PartyId::User).collect()
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_deref()
    }

    /// Loopback listener address of each party when built with the TCP
    /// backend (`None` in-proc) — for diagnostics and for tests that poke
    /// the fabric with raw sockets.
    pub fn listener_addrs(&self) -> Option<&HashMap<PartyId, std::net::SocketAddr>> {
        self.fabric.as_ref().map(|f| &f.addrs)
    }

    /// Removes and returns a party's endpoint so it can be moved to a
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint was already taken or never existed — that is
    /// always a harness bug.
    pub fn take_endpoint(&mut self, id: PartyId) -> Endpoint {
        self.endpoints
            .remove(&id)
            .unwrap_or_else(|| panic!("endpoint {id} already taken or unknown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigint::Ubig;

    #[test]
    fn point_to_point_roundtrip() {
        let mut net = Network::new(0);
        let s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        s1.send(PartyId::Server2, Step::BlindPermute1, &Ubig::from(777u64)).unwrap();
        let v: Ubig = s2.recv(PartyId::Server1, Step::BlindPermute1).unwrap();
        assert_eq!(v, Ubig::from(777u64));
    }

    #[test]
    fn out_of_order_senders_are_stashed() {
        let mut net = Network::new(2);
        let u0 = net.take_endpoint(PartyId::User(0));
        let u1 = net.take_endpoint(PartyId::User(1));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        // user1's message arrives first, but we ask for user0's first.
        u1.send(PartyId::Server1, Step::SecureSumVotes, &11u64).unwrap();
        u0.send(PartyId::Server1, Step::SecureSumVotes, &10u64).unwrap();
        let a: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
        let b: u64 = s1.recv(PartyId::User(1), Step::SecureSumVotes).unwrap();
        assert_eq!((a, b), (10, 11));
    }

    #[test]
    fn fifo_per_sender() {
        let mut net = Network::new(1);
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        for i in 0..5u64 {
            u.send(PartyId::Server1, Step::SecureSumVotes, &i).unwrap();
        }
        for i in 0..5u64 {
            let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn metering_by_link_kind() {
        let mut net = Network::new(1);
        let u = net.take_endpoint(PartyId::User(0));
        let s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        s1.send(PartyId::Server2, Step::BlindPermute1, &2u64).unwrap();
        let _ = s2.recv::<u64>(PartyId::Server1, Step::BlindPermute1).unwrap();
        let report = net.meter().report();
        assert_eq!(report.link_stats(Step::SecureSumVotes, LinkKind::UserToServer).messages, 1);
        assert_eq!(report.link_stats(Step::BlindPermute1, LinkKind::ServerToServer).bytes, 8);
    }

    #[test]
    fn unknown_party_rejected() {
        let mut net = Network::new(0);
        let s1 = net.take_endpoint(PartyId::Server1);
        let err = s1.send(PartyId::User(9), Step::Setup, &0u64).unwrap_err();
        assert_eq!(err, TransportError::UnknownParty(PartyId::User(9)));
    }

    #[test]
    fn threaded_exchange() {
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                s1.send(PartyId::Server2, Step::CompareRank, &Ubig::from(5u64)).unwrap();
                let echo: Ubig = s1.recv(PartyId::Server2, Step::CompareRank).unwrap();
                assert_eq!(echo, Ubig::from(10u64));
            });
            let v: Ubig = s2.recv(PartyId::Server1, Step::CompareRank).unwrap();
            s2.send(PartyId::Server1, Step::CompareRank, &(&v + &v)).unwrap();
        });
    }

    #[test]
    fn recv_each_collects_in_order() {
        let mut net = Network::new(3);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let users: Vec<_> = (0..3).map(|i| net.take_endpoint(PartyId::User(i))).collect();
        for (i, u) in users.iter().enumerate() {
            u.send(PartyId::Server1, Step::SecureSumVotes, &(i as u64 * 100)).unwrap();
        }
        let got: Vec<u64> = s1.recv_each((0..3).map(PartyId::User), Step::SecureSumVotes).unwrap();
        assert_eq!(got, vec![0, 100, 200]);
    }

    #[test]
    fn party_display_and_link_kind() {
        assert_eq!(PartyId::User(3).to_string(), "user3");
        assert_eq!(PartyId::Server1.link_to(PartyId::Server2), LinkKind::ServerToServer);
        assert_eq!(PartyId::User(0).link_to(PartyId::Server1), LinkKind::UserToServer);
        assert_eq!(PartyId::Server2.link_to(PartyId::User(1)), LinkKind::ServerToUser);
    }

    // --- reliability-layer tests -----------------------------------------

    /// A short policy so fault tests fail fast instead of waiting 120 s.
    fn quick() -> TimeoutPolicy {
        TimeoutPolicy::new(Duration::from_millis(50))
    }

    #[test]
    fn recv_each_partial_failure_keeps_received_values() {
        let mut net = Network::builder(3).timeout(quick()).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u0 = net.take_endpoint(PartyId::User(0));
        let u2 = net.take_endpoint(PartyId::User(2));
        // user1 never sends (and never disconnects: its endpoint stays in
        // the network), so its slot times out.
        u0.send(PartyId::Server1, Step::SecureSumVotes, &5u64).unwrap();
        u2.send(PartyId::Server1, Step::SecureSumVotes, &7u64).unwrap();
        let err = s1.recv_each::<u64>((0..3).map(PartyId::User), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err.received, vec![(PartyId::User(0), 5), (PartyId::User(2), 7)]);
        assert_eq!(err.missing.len(), 1);
        assert_eq!(err.missing[0].0, PartyId::User(1));
        assert_eq!(err.missing[0].1, TransportError::Timeout(PartyId::User(1)));
        let stats = net.meter().fault_stats();
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn recv_matches_on_step_not_just_sender() {
        // A sender whose step-2 message was lost must not have its step-6
        // message delivered in its place: the step-2 receive times out
        // and the step-6 message stays available for its own receive.
        let mut net = Network::builder(1).timeout(quick()).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumNoisy, &99u64).unwrap();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumNoisy).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn stashed_messages_replay_per_step_in_order() {
        // Interleaved steps from one sender: each stream is FIFO on its
        // own, regardless of receive order across streams.
        let mut net = Network::builder(1).timeout(quick()).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        u.send(PartyId::Server1, Step::SecureSumNoisy, &10u64).unwrap();
        u.send(PartyId::Server1, Step::SecureSumVotes, &2u64).unwrap();
        u.send(PartyId::Server1, Step::SecureSumNoisy, &20u64).unwrap();
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumNoisy).unwrap(), 10);
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap(), 1);
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap(), 2);
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumNoisy).unwrap(), 20);
    }

    #[test]
    fn per_call_timeout_overrides_network_policy() {
        // Network default would wait 120 s; the per-call policy times out
        // in milliseconds.
        let mut net = Network::new(1);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let start = Instant::now();
        let err = s1
            .recv_with_timeout::<u64>(
                PartyId::User(0),
                Step::SecureSumVotes,
                TimeoutPolicy::new(Duration::from_millis(20)),
            )
            .unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn retries_extend_the_deadline_and_are_metered() {
        let mut net = Network::builder(1)
            .timeout(TimeoutPolicy::with_retries(Duration::from_millis(40), 2, 2.0))
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        // Send from another thread inside the second (retry) window.
        std::thread::scope(|scope| {
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                u.send(PartyId::Server1, Step::SecureSumVotes, &9u64).unwrap();
            });
            let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
            assert_eq!(v, 9);
        });
        let stats = net.meter().fault_stats();
        assert!(stats.retries >= 1, "{stats:?}");
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn injected_drop_times_out_receiver() {
        let plan = FaultPlan::new(1).drop_messages(1.0);
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumVotes, &3u64).unwrap();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        let stats = net.meter().fault_stats();
        assert_eq!(stats.drops_injected, 1);
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn injected_duplicates_are_suppressed() {
        let plan = FaultPlan::new(2).duplicate_messages(1.0);
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        for i in 0..4u64 {
            u.send(PartyId::Server1, Step::SecureSumVotes, &i).unwrap();
        }
        for i in 0..4u64 {
            let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
            assert_eq!(v, i, "duplicates must not repeat or reorder values");
        }
        // Nothing further: all copies consumed.
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        let stats = net.meter().fault_stats();
        assert_eq!(stats.duplicates_injected, 4);
        assert_eq!(stats.duplicates_suppressed, 4);
    }

    #[test]
    fn injected_corruption_is_detected() {
        let plan = FaultPlan::new(3).corrupt_messages(1.0);
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumVotes, &Ubig::from(123456u64)).unwrap();
        let err = s1.recv::<Ubig>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Corrupt(PartyId::User(0)));
        let stats = net.meter().fault_stats();
        assert_eq!(stats.corruptions_injected, 1);
        assert_eq!(stats.corruptions_detected, 1);
    }

    #[test]
    fn injected_delay_is_honored_within_deadline() {
        let plan = FaultPlan::new(4).delay_messages(1.0, Duration::from_millis(30));
        let mut net = Network::builder(1)
            .timeout(TimeoutPolicy::new(Duration::from_millis(500)))
            .faults(plan)
            .build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        let sent_at = Instant::now();
        u.send(PartyId::Server1, Step::SecureSumVotes, &77u64).unwrap();
        let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
        assert_eq!(v, 77);
        assert!(sent_at.elapsed() > Duration::ZERO);
        let stats = net.meter().fault_stats();
        assert_eq!(stats.delays_injected, 1);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn delay_beyond_every_window_times_out() {
        let plan = FaultPlan::new(5).delay_messages(1.0, Duration::from_secs(3600));
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        let start = Instant::now();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        // The hour-long delay must not be slept through.
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn crashed_party_sends_vanish() {
        let plan = FaultPlan::new(6).crash(PartyId::User(0), Step::SecureSumNoisy);
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        // Before the crash step: delivered.
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
        assert_eq!(v, 1);
        // At/after the crash step: the send "succeeds" but vanishes.
        u.send(PartyId::Server1, Step::SecureSumNoisy, &2u64).unwrap();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumNoisy).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        let stats = net.meter().fault_stats();
        assert_eq!(stats.crashed_sends, 1);
    }

    #[test]
    fn recv_tagged_exposes_per_link_sequence_numbers() {
        let mut net = Network::new(1);
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        u.send(PartyId::Server1, Step::SecureSumVotes, &7u64).unwrap();
        u.send(PartyId::Server1, Step::SecureSumVotes, &8u64).unwrap();
        let (seq_a, a): (u64, u64) =
            s1.recv_tagged(PartyId::User(0), Step::SecureSumVotes).unwrap();
        let (seq_b, b): (u64, u64) =
            s1.recv_tagged(PartyId::User(0), Step::SecureSumVotes).unwrap();
        assert_eq!((a, b), (7, 8));
        assert_eq!((seq_a, seq_b), (1, 2), "per-link seq starts at 1 and increments");
    }

    #[test]
    fn revived_party_sends_deliver_again() {
        // Crash window covers only SecureSumNoisy: sends before and after
        // the window deliver, sends inside it vanish.
        let plan = FaultPlan::new(7)
            .crash(PartyId::User(0), Step::SecureSumNoisy)
            .revive_after(PartyId::User(0), 1);
        let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let u = net.take_endpoint(PartyId::User(0));
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).unwrap(), 1);
        u.send(PartyId::Server1, Step::SecureSumNoisy, &2u64).unwrap();
        let err = s1.recv::<u64>(PartyId::User(0), Step::SecureSumNoisy).unwrap_err();
        assert_eq!(err, TransportError::Timeout(PartyId::User(0)));
        // Back from the dead at BlindPermute2.
        u.send(PartyId::Server1, Step::BlindPermute2, &3u64).unwrap();
        assert_eq!(s1.recv::<u64>(PartyId::User(0), Step::BlindPermute2).unwrap(), 3);
        assert_eq!(net.meter().fault_stats().crashed_sends, 1);
    }

    #[test]
    fn identical_plans_inject_identically() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).drop_messages(0.5);
            let mut net = Network::builder(1).timeout(quick()).faults(plan).build();
            let mut s1 = net.take_endpoint(PartyId::Server1);
            let u = net.take_endpoint(PartyId::User(0));
            (0..12u64)
                .map(|i| {
                    u.send(PartyId::Server1, Step::SecureSumVotes, &i).unwrap();
                    s1.recv::<u64>(PartyId::User(0), Step::SecureSumVotes).is_ok()
                })
                .collect()
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed must reproduce the same fault schedule");
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok), "p=0.5 should mix: {a:?}");
    }

    #[test]
    fn party_id_wire_roundtrip() {
        for p in [PartyId::Server1, PartyId::Server2, PartyId::User(0), PartyId::User(12345)] {
            let bytes = p.to_bytes();
            assert_eq!(PartyId::from_bytes(bytes).unwrap(), p);
        }
        assert!(PartyId::from_bytes(Bytes::from(vec![9u8])).is_err());
    }

    #[test]
    fn fast_local_policy_is_sub_second() {
        let policy = TimeoutPolicy::fast_local();
        assert!(policy.total_budget() < Duration::from_secs(1));
        assert!(policy.max_retries >= 1, "must grant at least one retry window");
    }

    #[test]
    fn slow_consumer_applies_backpressure_instead_of_growing() {
        // Capacity 2 with 40 sends: the producer must block on the full
        // queue (recorded on the meter) and every message still arrives.
        let mut net = Network::builder(1).capacity(2).timeout(quick()).build();
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..40u64 {
                    u.send(PartyId::Server1, Step::SecureSumVotes, &i).unwrap();
                }
            });
            // Let the producer hit the bound before consuming anything.
            std::thread::sleep(Duration::from_millis(50));
            for i in 0..40u64 {
                let v: u64 = s1
                    .recv_with_timeout(
                        PartyId::User(0),
                        Step::SecureSumVotes,
                        TimeoutPolicy::new(Duration::from_secs(2)),
                    )
                    .unwrap();
                assert_eq!(v, i);
            }
        });
        let stats = net.meter().fault_stats();
        assert!(stats.backpressure_blocked >= 1, "{stats:?}");
    }
}
