//! In-process network: parties, endpoints and typed blocking channels.
//!
//! A [`Network`] wires `N` users and two servers into a full mesh of
//! unbounded crossbeam channels. Each party takes its [`Endpoint`] and can
//! then be moved onto its own thread; `send`/`recv` are typed through the
//! [`Wire`] codec and metered per [`Step`].

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::metrics::{LinkKind, Meter, Step};
use crate::wire::{Wire, WireError};

/// Identifies a protocol party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// User `u ∈ U` (a teacher).
    User(usize),
    /// Aggregation server S1.
    Server1,
    /// Aggregation server S2.
    Server2,
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::User(u) => write!(f, "user{u}"),
            PartyId::Server1 => write!(f, "S1"),
            PartyId::Server2 => write!(f, "S2"),
        }
    }
}

impl PartyId {
    /// Classifies the link from `self` to `to` for metering.
    pub fn link_to(&self, to: PartyId) -> LinkKind {
        match (self, to) {
            (PartyId::User(_), _) => LinkKind::UserToServer,
            (_, PartyId::User(_)) => LinkKind::ServerToUser,
            _ => LinkKind::ServerToServer,
        }
    }
}

/// Errors surfaced by endpoint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination endpoint's receiver was dropped.
    Disconnected(PartyId),
    /// Decoding a received payload failed.
    Codec(WireError),
    /// A receive did not complete within the configured timeout.
    Timeout(PartyId),
    /// The requested endpoint was already taken or does not exist.
    UnknownParty(PartyId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected(p) => write!(f, "party {p} disconnected"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
            TransportError::Timeout(p) => write!(f, "timed out waiting for {p}"),
            TransportError::UnknownParty(p) => write!(f, "unknown or taken party {p}"),
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Codec(e)
    }
}

/// One message in flight.
#[derive(Debug, Clone)]
struct Envelope {
    from: PartyId,
    /// Carried for wire-level diagnostics (inspected via `Debug` when a
    /// receive mismatch is being investigated); routing is sender-based.
    #[allow(dead_code)]
    step: Step,
    payload: Bytes,
}

/// Default receive timeout — generous for in-process channels, but
/// prevents a peer's mid-protocol failure from hanging the other side
/// forever.
const RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(30);

/// A party's handle on the network: typed send/receive plus the shared
/// meter.
pub struct Endpoint {
    id: PartyId,
    outgoing: HashMap<PartyId, Sender<Envelope>>,
    incoming: Receiver<Envelope>,
    /// Messages received from other parties while waiting for a specific
    /// sender; replayed on later receives.
    stashed: HashMap<PartyId, VecDeque<Envelope>>,
    meter: Arc<Meter>,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.id)
    }
}

impl Endpoint {
    /// This endpoint's identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Sends `value` to `to`, tagged with `step`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownParty`] for destinations outside
    /// the network and [`TransportError::Disconnected`] if the peer's
    /// endpoint was dropped.
    pub fn send<T: Wire>(&self, to: PartyId, step: Step, value: &T) -> Result<(), TransportError> {
        let payload = value.to_bytes();
        self.meter.record_message(step, self.id.link_to(to), payload.len());
        let sender = self.outgoing.get(&to).ok_or(TransportError::UnknownParty(to))?;
        sender
            .send(Envelope { from: self.id, step, payload })
            .map_err(|_| TransportError::Disconnected(to))
    }

    /// Receives the next message *from a specific sender*, blocking.
    /// Messages from other senders that arrive in the meantime are stashed
    /// and replayed in order. The `step` tag is used only for diagnostics;
    /// ordering within a sender is FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] after 120 s,
    /// [`TransportError::Disconnected`] if all senders are gone, or a
    /// [`TransportError::Codec`] error if the payload fails to decode.
    pub fn recv<T: Wire>(&mut self, from: PartyId, _step: Step) -> Result<T, TransportError> {
        // Replay a stashed message first.
        if let Some(queue) = self.stashed.get_mut(&from) {
            if let Some(env) = queue.pop_front() {
                return T::from_bytes(env.payload).map_err(Into::into);
            }
        }
        loop {
            match self.incoming.recv_timeout(RECV_TIMEOUT) {
                Ok(env) if env.from == from => {
                    return T::from_bytes(env.payload).map_err(Into::into);
                }
                Ok(env) => {
                    self.stashed.entry(env.from).or_default().push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => return Err(TransportError::Timeout(from)),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Disconnected(from))
                }
            }
        }
    }

    /// Receives one message from each of `froms`, in the given order.
    ///
    /// # Errors
    ///
    /// Propagates the first receive error.
    pub fn recv_each<T: Wire>(
        &mut self,
        froms: impl IntoIterator<Item = PartyId>,
        step: Step,
    ) -> Result<Vec<T>, TransportError> {
        froms.into_iter().map(|from| self.recv(from, step)).collect()
    }
}

/// An in-process network of `num_users` users plus the two servers.
pub struct Network {
    endpoints: HashMap<PartyId, Endpoint>,
    meter: Arc<Meter>,
    num_users: usize,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network({} users + 2 servers)", self.num_users)
    }
}

impl Network {
    /// Builds a full mesh over `num_users` users and both servers, sharing
    /// one [`Meter`].
    pub fn new(num_users: usize) -> Network {
        Self::with_meter(num_users, Meter::new())
    }

    /// Builds a network that records into an existing meter.
    pub fn with_meter(num_users: usize, meter: Arc<Meter>) -> Network {
        let parties: Vec<PartyId> = (0..num_users)
            .map(PartyId::User)
            .chain([PartyId::Server1, PartyId::Server2])
            .collect();
        let mut senders: HashMap<PartyId, Sender<Envelope>> = HashMap::new();
        let mut receivers: HashMap<PartyId, Receiver<Envelope>> = HashMap::new();
        for &p in &parties {
            let (tx, rx) = unbounded();
            senders.insert(p, tx);
            receivers.insert(p, rx);
        }
        let endpoints = parties
            .iter()
            .map(|&p| {
                // No self-sender: a party never messages itself, and keeping
                // one alive would stop channel disconnection from propagating
                // when a peer's endpoint is dropped mid-protocol.
                let outgoing = parties
                    .iter()
                    .filter(|&&q| q != p)
                    .map(|&q| (q, senders[&q].clone()))
                    .collect::<HashMap<_, _>>();
                let endpoint = Endpoint {
                    id: p,
                    outgoing,
                    incoming: receivers.remove(&p).expect("each party has a receiver"),
                    stashed: HashMap::new(),
                    meter: Arc::clone(&meter),
                };
                (p, endpoint)
            })
            .collect();
        Network { endpoints, meter, num_users }
    }

    /// Number of users in the mesh.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// All user ids, in order.
    pub fn user_ids(&self) -> Vec<PartyId> {
        (0..self.num_users).map(PartyId::User).collect()
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Removes and returns a party's endpoint so it can be moved to a
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint was already taken or never existed — that is
    /// always a harness bug.
    pub fn take_endpoint(&mut self, id: PartyId) -> Endpoint {
        self.endpoints
            .remove(&id)
            .unwrap_or_else(|| panic!("endpoint {id} already taken or unknown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigint::Ubig;

    #[test]
    fn point_to_point_roundtrip() {
        let mut net = Network::new(0);
        let s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        s1.send(PartyId::Server2, Step::BlindPermute1, &Ubig::from(777u64)).unwrap();
        let v: Ubig = s2.recv(PartyId::Server1, Step::BlindPermute1).unwrap();
        assert_eq!(v, Ubig::from(777u64));
    }

    #[test]
    fn out_of_order_senders_are_stashed() {
        let mut net = Network::new(2);
        let u0 = net.take_endpoint(PartyId::User(0));
        let u1 = net.take_endpoint(PartyId::User(1));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        // user1's message arrives first, but we ask for user0's first.
        u1.send(PartyId::Server1, Step::SecureSumVotes, &11u64).unwrap();
        u0.send(PartyId::Server1, Step::SecureSumVotes, &10u64).unwrap();
        let a: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
        let b: u64 = s1.recv(PartyId::User(1), Step::SecureSumVotes).unwrap();
        assert_eq!((a, b), (10, 11));
    }

    #[test]
    fn fifo_per_sender() {
        let mut net = Network::new(1);
        let u = net.take_endpoint(PartyId::User(0));
        let mut s1 = net.take_endpoint(PartyId::Server1);
        for i in 0..5u64 {
            u.send(PartyId::Server1, Step::SecureSumVotes, &i).unwrap();
        }
        for i in 0..5u64 {
            let v: u64 = s1.recv(PartyId::User(0), Step::SecureSumVotes).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn metering_by_link_kind() {
        let mut net = Network::new(1);
        let u = net.take_endpoint(PartyId::User(0));
        let s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        u.send(PartyId::Server1, Step::SecureSumVotes, &1u64).unwrap();
        s1.send(PartyId::Server2, Step::BlindPermute1, &2u64).unwrap();
        let _ = s2.recv::<u64>(PartyId::Server1, Step::BlindPermute1).unwrap();
        let report = net.meter().report();
        assert_eq!(report.link_stats(Step::SecureSumVotes, LinkKind::UserToServer).messages, 1);
        assert_eq!(report.link_stats(Step::BlindPermute1, LinkKind::ServerToServer).bytes, 8);
    }

    #[test]
    fn unknown_party_rejected() {
        let mut net = Network::new(0);
        let s1 = net.take_endpoint(PartyId::Server1);
        let err = s1.send(PartyId::User(9), Step::Setup, &0u64).unwrap_err();
        assert_eq!(err, TransportError::UnknownParty(PartyId::User(9)));
    }

    #[test]
    fn threaded_exchange() {
        let mut net = Network::new(0);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let mut s2 = net.take_endpoint(PartyId::Server2);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                s1.send(PartyId::Server2, Step::CompareRank, &Ubig::from(5u64)).unwrap();
                let echo: Ubig = s1.recv(PartyId::Server2, Step::CompareRank).unwrap();
                assert_eq!(echo, Ubig::from(10u64));
            });
            let v: Ubig = s2.recv(PartyId::Server1, Step::CompareRank).unwrap();
            s2.send(PartyId::Server1, Step::CompareRank, &(&v + &v)).unwrap();
        });
    }

    #[test]
    fn recv_each_collects_in_order() {
        let mut net = Network::new(3);
        let mut s1 = net.take_endpoint(PartyId::Server1);
        let users: Vec<_> = (0..3).map(|i| net.take_endpoint(PartyId::User(i))).collect();
        for (i, u) in users.iter().enumerate() {
            u.send(PartyId::Server1, Step::SecureSumVotes, &(i as u64 * 100)).unwrap();
        }
        let got: Vec<u64> = s1
            .recv_each((0..3).map(PartyId::User), Step::SecureSumVotes)
            .unwrap();
        assert_eq!(got, vec![0, 100, 200]);
    }

    #[test]
    fn party_display_and_link_kind() {
        assert_eq!(PartyId::User(3).to_string(), "user3");
        assert_eq!(PartyId::Server1.link_to(PartyId::Server2), LinkKind::ServerToServer);
        assert_eq!(PartyId::User(0).link_to(PartyId::Server1), LinkKind::UserToServer);
        assert_eq!(PartyId::Server2.link_to(PartyId::User(1)), LinkKind::ServerToUser);
    }
}
