//! Session-tagged frames and demultiplexing for multi-round links.
//!
//! One transport link historically carried exactly one consensus round.
//! The multi-session reactor (`core::reactor`) multiplexes *many*
//! concurrent rounds over shared infrastructure, so frames crossing the
//! gateway boundary carry an explicit session id:
//!
//! * [`SessionFrame`] — one protocol message tagged with the session it
//!   belongs to, the claimed `(from, to)` identities, the protocol
//!   [`Step`] and a per-stream sequence number. The payload is an opaque
//!   already-wire-encoded protocol message.
//! * [`write_session_frame`] / [`read_session_frame`] — the same
//!   `[u32 LE length]`-prefixed framing the TCP backend uses, so session
//!   frames can ride any byte stream. Declared lengths are capped, torn
//!   tails surface as typed errors, never panics.
//! * [`SessionDemux`] — routes incoming frames to per-session queues.
//!   A frame naming a session that was never registered (or already
//!   retired) is a *typed* [`SessionError::UnknownSession`], not a
//!   panic and not a silent drop the caller can't observe.
//!
//! Checkpoint stores and durable RDP ledgers key their records by a bare
//! round id; [`session_scoped_round`] packs a session id into the high
//! bits so concurrent sessions sharing one directory can never collide
//! on each other's records (see [`crate::checkpoint::SessionScopedStore`]).

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::metrics::Step;
use crate::network::PartyId;
use crate::wire::{Wire, WireError};

/// Leading tag byte of every encoded [`SessionFrame`].
const TAG_SESSION_FRAME: u8 = 0x5A;

/// Upper bound on a declared frame length — matches the TCP backend's
/// sanity bound, far above any legitimate protocol message.
const MAX_FRAME: u32 = 1 << 28;

/// One session-tagged protocol message.
///
/// The payload is opaque to this layer: the reactor decodes it against
/// the step's expected message type once the frame reaches its session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFrame {
    /// The session (concurrent round) this frame belongs to.
    pub session: u64,
    /// Claimed sender.
    pub from: PartyId,
    /// Claimed receiver.
    pub to: PartyId,
    /// The protocol step the payload belongs to.
    pub step: Step,
    /// Per-(session, from, to) stream sequence number.
    pub seq: u64,
    /// The wire-encoded protocol message.
    pub payload: Bytes,
}

impl Wire for SessionFrame {
    fn encode(&self, buf: &mut BytesMut) {
        TAG_SESSION_FRAME.encode(buf);
        self.session.encode(buf);
        self.from.encode(buf);
        self.to.encode(buf);
        self.step.encode(buf);
        self.seq.encode(buf);
        (self.payload.len() as u32).encode(buf);
        buf.put_slice(&self.payload);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let tag = u8::decode(buf)?;
        if tag != TAG_SESSION_FRAME {
            return Err(WireError::InvalidTag(tag));
        }
        let session = u64::decode(buf)?;
        let from = PartyId::decode(buf)?;
        let to = PartyId::decode(buf)?;
        let step = Step::decode(buf)?;
        let seq = u64::decode(buf)?;
        let len = u32::decode(buf)? as u64;
        if len > u64::from(MAX_FRAME) {
            return Err(WireError::LengthOverflow(len));
        }
        if (buf.remaining() as u64) < len {
            return Err(WireError::Truncated);
        }
        let payload = buf.slice(0..len as usize);
        buf.advance(len as usize);
        Ok(SessionFrame { session, from, to, step, seq, payload })
    }
}

/// Writes one `[u32 LE length]`-prefixed session frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_session_frame(w: &mut impl Write, frame: &SessionFrame) -> std::io::Result<()> {
    let body = frame.to_bytes();
    debug_assert!(body.len() as u64 <= u64::from(MAX_FRAME));
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed session frame. A torn tail (EOF mid-frame)
/// surfaces as the underlying `UnexpectedEof`; a garbage prefix or
/// undecodable body as `InvalidData`. Declared lengths past the sanity
/// cap are rejected before any allocation.
///
/// # Errors
///
/// See above — every malformed input is a typed `std::io::Error`.
pub fn read_session_frame(r: &mut impl Read) -> std::io::Result<SessionFrame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("declared session frame length {len} exceeds bounds"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    SessionFrame::from_bytes(Bytes::from(body))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Errors surfaced by the session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A frame named a session id that was never registered with the
    /// demux (or was already retired).
    UnknownSession(u64),
    /// A frame failed to decode.
    Codec(WireError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown session id {id}"),
            SessionError::Codec(e) => write!(f, "session frame codec error: {e}"),
        }
    }
}

impl Error for SessionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SessionError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for SessionError {
    fn from(e: WireError) -> Self {
        SessionError::Codec(e)
    }
}

/// Routes session-tagged frames into per-session FIFO queues.
///
/// The demux is deliberately dumb: sessions register, frames route or
/// fail with a typed error, and the scheduler drains each session's
/// queue when it services that session. Retiring a session drops its
/// queued frames — later frames for it are [`SessionError::UnknownSession`].
#[derive(Debug, Default)]
pub struct SessionDemux {
    queues: HashMap<u64, VecDeque<SessionFrame>>,
}

impl SessionDemux {
    /// An empty demux with no registered sessions.
    pub fn new() -> SessionDemux {
        SessionDemux::default()
    }

    /// Registers `session` so frames for it route instead of erroring.
    /// Idempotent: re-registering keeps any queued frames.
    pub fn register(&mut self, session: u64) {
        self.queues.entry(session).or_default();
    }

    /// Retires `session`, returning any frames still queued for it.
    pub fn retire(&mut self, session: u64) -> Vec<SessionFrame> {
        self.queues.remove(&session).map(Vec::from).unwrap_or_default()
    }

    /// True when `session` is registered.
    pub fn is_registered(&self, session: u64) -> bool {
        self.queues.contains_key(&session)
    }

    /// Number of registered sessions.
    pub fn sessions(&self) -> usize {
        self.queues.len()
    }

    /// Routes a frame to its session's queue.
    ///
    /// # Errors
    ///
    /// [`SessionError::UnknownSession`] when the frame's session was
    /// never registered (or was retired) — typed, never a panic.
    pub fn route(&mut self, frame: SessionFrame) -> Result<(), SessionError> {
        match self.queues.get_mut(&frame.session) {
            Some(q) => {
                q.push_back(frame);
                Ok(())
            }
            None => Err(SessionError::UnknownSession(frame.session)),
        }
    }

    /// Decodes raw bytes into a frame and routes it.
    ///
    /// # Errors
    ///
    /// [`SessionError::Codec`] on malformed bytes,
    /// [`SessionError::UnknownSession`] on an unregistered session id.
    pub fn decode_and_route(&mut self, bytes: Bytes) -> Result<u64, SessionError> {
        let frame = SessionFrame::from_bytes(bytes)?;
        let session = frame.session;
        self.route(frame)?;
        Ok(session)
    }

    /// Pops the oldest queued frame for `session`, if any.
    pub fn next_frame(&mut self, session: u64) -> Option<SessionFrame> {
        self.queues.get_mut(&session).and_then(VecDeque::pop_front)
    }

    /// Frames currently queued for `session`.
    pub fn queued(&self, session: u64) -> usize {
        self.queues.get(&session).map_or(0, VecDeque::len)
    }
}

/// Packs a session id and a per-session round id into the single `u64`
/// round key that [`crate::CheckpointStore`] implementations and the
/// durable RDP ledger index their records by: the session occupies the
/// high 32 bits, the round the low 32. Session 0 is the identity mapping
/// (`session_scoped_round(0, r) == r`), so single-session callers keep
/// their existing on-disk keys.
///
/// # Panics
///
/// Panics if either id does not fit in 32 bits — a reactor cycling
/// through four billion sessions (or a session running four billion
/// rounds) against one shared store directory is a harness bug, not a
/// supported configuration.
pub fn session_scoped_round(session: u64, round: u64) -> u64 {
    assert!(session <= u64::from(u32::MAX), "session id {session} exceeds 32 bits");
    assert!(round <= u64::from(u32::MAX), "round id {round} exceeds 32 bits");
    (session << 32) | round
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame(session: u64, seq: u64, payload: Vec<u8>) -> SessionFrame {
        SessionFrame {
            session,
            from: PartyId::User(3),
            to: PartyId::Server1,
            step: Step::SecureSumVotes,
            seq,
            payload: Bytes::from(payload),
        }
    }

    #[test]
    fn session_frames_roundtrip_through_length_prefixed_wire() {
        for f in [
            frame(0, 1, vec![]),
            frame(7, 42, vec![1, 2, 3]),
            SessionFrame {
                session: u64::MAX,
                from: PartyId::Server2,
                to: PartyId::User(12345),
                step: Step::Restoration,
                seq: u64::MAX,
                payload: Bytes::from(vec![0u8; 64]),
            },
        ] {
            let mut wire = Vec::new();
            write_session_frame(&mut wire, &f).unwrap();
            let back = read_session_frame(&mut std::io::Cursor::new(&wire[..])).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn unknown_session_routes_to_typed_error_not_a_panic() {
        let mut demux = SessionDemux::new();
        demux.register(1);
        assert_eq!(demux.route(frame(1, 1, vec![9])), Ok(()));
        let err = demux.route(frame(2, 1, vec![9])).unwrap_err();
        assert_eq!(err, SessionError::UnknownSession(2));
        // Retired sessions become unknown again, dropping their queue.
        let leftovers = demux.retire(1);
        assert_eq!(leftovers.len(), 1);
        assert_eq!(demux.route(frame(1, 2, vec![])), Err(SessionError::UnknownSession(1)));
    }

    #[test]
    fn demux_queues_are_fifo_per_session() {
        let mut demux = SessionDemux::new();
        demux.register(5);
        demux.register(6);
        demux.route(frame(5, 1, vec![1])).unwrap();
        demux.route(frame(6, 1, vec![2])).unwrap();
        demux.route(frame(5, 2, vec![3])).unwrap();
        assert_eq!(demux.queued(5), 2);
        assert_eq!(demux.next_frame(5).unwrap().seq, 1);
        assert_eq!(demux.next_frame(5).unwrap().seq, 2);
        assert_eq!(demux.next_frame(5), None);
        assert_eq!(demux.next_frame(6).unwrap().payload.as_ref(), &[2]);
    }

    #[test]
    fn decode_and_route_surfaces_both_error_kinds() {
        let mut demux = SessionDemux::new();
        demux.register(9);
        let ok = demux.decode_and_route(frame(9, 1, vec![7]).to_bytes()).unwrap();
        assert_eq!(ok, 9);
        assert_eq!(
            demux.decode_and_route(frame(10, 1, vec![7]).to_bytes()),
            Err(SessionError::UnknownSession(10))
        );
        assert!(matches!(
            demux.decode_and_route(Bytes::from(vec![0xFFu8, 0, 1])),
            Err(SessionError::Codec(WireError::InvalidTag(0xFF)))
        ));
    }

    #[test]
    fn garbage_length_prefix_is_rejected_without_allocating() {
        let mut wire = (MAX_FRAME + 1).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        let err = read_session_frame(&mut std::io::Cursor::new(&wire[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn session_scoped_round_packs_and_preserves_identity() {
        assert_eq!(session_scoped_round(0, 7), 7);
        assert_eq!(session_scoped_round(1, 0), 1 << 32);
        assert_eq!(session_scoped_round(3, 5), (3 << 32) | 5);
        // Distinct (session, round) pairs never collide.
        assert_ne!(session_scoped_round(1, 2), session_scoped_round(2, 1));
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn session_scoped_round_rejects_oversized_ids() {
        session_scoped_round(u64::from(u32::MAX) + 1, 0);
    }

    proptest! {
        #[test]
        fn arbitrary_session_frames_roundtrip(
            session in any::<u64>(),
            seq in any::<u64>(),
            user in 0usize..100_000,
            step_ord in 0u8..9,
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let f = SessionFrame {
                session,
                from: PartyId::User(user),
                to: PartyId::Server2,
                step: Step::from_ordinal(step_ord).unwrap(),
                seq,
                payload: Bytes::from(payload),
            };
            let mut wire = Vec::new();
            write_session_frame(&mut wire, &f).unwrap();
            let back = read_session_frame(&mut std::io::Cursor::new(&wire[..])).unwrap();
            prop_assert_eq!(back, f);
        }

        #[test]
        fn cut_at_every_byte_boundary_is_a_typed_error(
            session in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let f = frame(session, 11, payload);
            // Framed stream cuts: every strict prefix fails typed.
            let mut wire = Vec::new();
            write_session_frame(&mut wire, &f).unwrap();
            for cut in 0..wire.len() {
                prop_assert!(
                    read_session_frame(&mut std::io::Cursor::new(&wire[..cut])).is_err(),
                    "prefix of {}/{} bytes must not parse", cut, wire.len()
                );
            }
            // Bare codec cuts: typed WireError, never a panic.
            let body = f.to_bytes();
            for cut in 0..body.len() {
                let got = SessionFrame::from_bytes(body.slice(0..cut));
                prop_assert!(
                    matches!(got, Err(WireError::Truncated | WireError::InvalidTag(_))),
                    "cut {} of {} gave {:?}", cut, body.len(), got
                );
            }
        }

        #[test]
        fn session_scoped_rounds_are_injective(
            s1 in 0u64..=u32::MAX as u64, r1 in 0u64..=u32::MAX as u64,
            s2 in 0u64..=u32::MAX as u64, r2 in 0u64..=u32::MAX as u64,
        ) {
            let a = session_scoped_round(s1, r1);
            let b = session_scoped_round(s2, r2);
            prop_assert_eq!(a == b, (s1, r1) == (s2, r2));
        }
    }
}
