//! Length-prefixed binary codec for protocol messages.
//!
//! The format is deliberately simple: fixed-width little-endian scalars,
//! and `u32` length prefixes for variable-size payloads (big integers and
//! vectors). The byte counts it produces are what the Table II
//! communication accounting reports.

use bigint::{Ibig, Sign, Ubig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dgk::comparison::{BlindedWitnesses, EvaluatorBits};
use dgk::DgkCiphertext;
use paillier::Ciphertext;
use std::error::Error;
use std::fmt;

use crate::metrics::Step;

/// Errors produced when decoding a wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag or discriminant byte had an unexpected value.
    InvalidTag(u8),
    /// A declared length exceeds sanity bounds.
    LengthOverflow(u64),
    /// The bytes decoded but violate a structural invariant of the type
    /// (e.g. a permutation whose indices are not a bijection).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::InvalidTag(t) => write!(f, "invalid wire tag {t:#04x}"),
            WireError::LengthOverflow(n) => write!(f, "declared length {n} exceeds bounds"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl Error for WireError {}

/// Maximum declared element count / byte length accepted while decoding,
/// guarding against corrupted prefixes. Must be strictly below `1 << 32`
/// to be reachable from a `u32` prefix — no legitimate protocol message
/// comes anywhere near 256 MiB.
const MAX_LEN: u64 = 1 << 28;

/// A type that can be serialized onto / deserialized from the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes a value from the front of `buf`, consuming its bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Convenience: decodes from a complete buffer, requiring full
    /// consumption.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if bytes remain or run short.
    fn from_bytes(bytes: Bytes) -> Result<Self, WireError> {
        let mut buf = bytes;
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::Truncated);
        }
        Ok(v)
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        Ok(buf.get_u8())
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 4)?;
        Ok(buf.get_u32_le())
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le())
    }
}

impl Wire for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_i64_le())
    }
}

impl Wire for i128 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i128_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 16)?;
        Ok(buf.get_i128_le())
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_f64_le())
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow(v))
    }
}

impl Wire for Step {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.ordinal());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        let tag = buf.get_u8();
        Step::from_ordinal(tag).ok_or(WireError::InvalidTag(tag))
    }
}

impl Wire for Ubig {
    fn encode(&self, buf: &mut BytesMut) {
        let bytes = self.to_le_bytes();
        buf.put_u32_le(bytes.len() as u32);
        buf.put_slice(&bytes);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 4)?;
        let len = buf.get_u32_le() as usize;
        if len as u64 > MAX_LEN {
            return Err(WireError::LengthOverflow(len as u64));
        }
        need(buf, len)?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        Ok(Ubig::from_le_bytes(&raw))
    }
}

impl Wire for Ibig {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.is_negative() as u8);
        self.magnitude().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let neg = bool::decode(buf)?;
        let mag = Ubig::decode(buf)?;
        let sign = if neg { Sign::Minus } else { Sign::Plus };
        Ok(Ibig::from_sign_magnitude(sign, mag))
    }
}

impl Wire for Ciphertext {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_raw().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Ciphertext::from_raw(Ubig::decode(buf)?))
    }
}

impl Wire for DgkCiphertext {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_raw().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(DgkCiphertext::from_raw(Ubig::decode(buf)?))
    }
}

impl Wire for EvaluatorBits {
    fn encode(&self, buf: &mut BytesMut) {
        self.encrypted_bits.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(EvaluatorBits { encrypted_bits: Vec::decode(buf)? })
    }
}

impl Wire for BlindedWitnesses {
    fn encode(&self, buf: &mut BytesMut) {
        self.witnesses.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(BlindedWitnesses { witnesses: Vec::decode(buf)? })
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 4)?;
        let len = buf.get_u32_le() as usize;
        if len as u64 > MAX_LEN {
            return Err(WireError::LengthOverflow(len as u64));
        }
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::InvalidTag(t)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 4)?;
        let len = buf.get_u32_le() as usize;
        if len as u64 > MAX_LEN {
            return Err(WireError::LengthOverflow(len as u64));
        }
        need(buf, len)?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        String::from_utf8(raw).map_err(|_| WireError::InvalidTag(0xff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(i128::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(std::f64::consts::PI);
        roundtrip(usize::MAX);
    }

    #[test]
    fn bigints_roundtrip() {
        roundtrip(Ubig::zero());
        roundtrip(Ubig::from_limbs(vec![u64::MAX, 1, 2, 3]));
        roundtrip(Ibig::from(-123456789i64));
        roundtrip(Ibig::zero());
    }

    #[test]
    fn ciphertexts_roundtrip() {
        roundtrip(Ciphertext::from_raw(Ubig::from(0xabcdefu64)));
        roundtrip(DgkCiphertext::from_raw(Ubig::from_limbs(vec![7, 8, 9])));
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<Ubig>::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip((1u64, Ubig::from(2u64)));
        roundtrip((1u64, 2i64, true));
        roundtrip("hello wire".to_string());
        roundtrip(vec![vec![Ubig::one()], vec![]]);
    }

    #[test]
    fn comparison_messages_roundtrip() {
        let bits = EvaluatorBits {
            encrypted_bits: vec![
                DgkCiphertext::from_raw(Ubig::from(11u64)),
                DgkCiphertext::from_raw(Ubig::from(22u64)),
            ],
        };
        roundtrip(bits);
        roundtrip(BlindedWitnesses { witnesses: vec![DgkCiphertext::from_raw(Ubig::one())] });
    }

    #[test]
    fn steps_roundtrip_and_reject_bad_tags() {
        for step in Step::ALL {
            roundtrip(step);
        }
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert_eq!(Step::from_bytes(buf.freeze()), Err(WireError::InvalidTag(9)));
        assert_eq!(Step::from_bytes(Bytes::new()), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = 42u64.to_bytes();
        let short = bytes.slice(0..4);
        assert_eq!(u64::from_bytes(short), Err(WireError::Truncated));
        // Vec with declared length but missing elements.
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        assert_eq!(Vec::<u64>::from_bytes(buf.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut buf = BytesMut::new();
        7u64.encode(&mut buf);
        buf.put_u8(0);
        assert_eq!(u64::from_bytes(buf.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn invalid_bool_tag() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        assert_eq!(bool::from_bytes(buf.freeze()), Err(WireError::InvalidTag(7)));
    }

    #[test]
    fn option_tag_validation() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert_eq!(Option::<u64>::from_bytes(buf.freeze()), Err(WireError::InvalidTag(9)));
    }
}
