//! Property tests for the wire codec's decode paths: malformed input —
//! truncation, oversized length prefixes, flipped bits, random garbage —
//! must always surface a `WireError`, never panic, and never trigger an
//! attacker-controlled allocation.

use bigint::{Ibig, Ubig};
use bytes::Bytes;
use paillier::Ciphertext;
use proptest::prelude::*;
use smc::{Permutation, RoundState};
use transport::wire::{Wire, WireError};

/// Decodes `bytes` as `T`, returning the error if any; the call itself
/// must not panic (the property harness would report it as a failure).
fn try_decode<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    T::from_bytes(Bytes::from(bytes.to_vec()))
}

/// Every strict prefix of a valid encoding must fail to decode (the
/// codec is length-prefixed/fixed-width, so a shorter buffer can never
/// be a complete message followed by nothing).
fn assert_prefixes_error<T: Wire>(encoded: &[u8]) {
    for cut in 0..encoded.len() {
        let r = try_decode::<T>(&encoded[..cut]);
        assert!(r.is_err(), "prefix of {cut}/{} bytes decoded successfully", encoded.len());
    }
}

proptest! {
    #[test]
    fn truncated_scalars_error(a in any::<u64>(), b in any::<i64>(), c in any::<u8>()) {
        assert_prefixes_error::<u64>(&a.to_bytes());
        assert_prefixes_error::<i64>(&b.to_bytes());
        assert_prefixes_error::<u8>(&c.to_bytes());
        assert_prefixes_error::<i128>(&(a as i128).to_bytes());
        assert_prefixes_error::<(u64, i64)>(&(a, b).to_bytes());
    }

    #[test]
    fn truncated_bigints_error(limbs in proptest::collection::vec(any::<u64>(), 0..6)) {
        let value = Ubig::from_limbs(limbs);
        assert_prefixes_error::<Ubig>(&value.to_bytes());
        let signed = Ibig::from(-7i64);
        assert_prefixes_error::<Ibig>(&signed.to_bytes());
    }

    #[test]
    fn truncated_vectors_error(values in proptest::collection::vec(any::<i64>(), 1..10)) {
        assert_prefixes_error::<Vec<i64>>(&values.to_bytes());
        let nested: Vec<Vec<i64>> = vec![values.clone(), values];
        assert_prefixes_error::<Vec<Vec<i64>>>(&nested.to_bytes());
    }

    #[test]
    fn oversized_length_prefix_errors_without_allocating(decl in (1u32 << 28)..u32::MAX, tail in proptest::collection::vec(any::<u8>(), 0..32)) {
        // A corrupted length prefix claiming up to 4 GiB: decoding must
        // reject it (LengthOverflow or Truncated) without ever reserving
        // the declared size. An actual 4 GiB allocation would blow the
        // test runner; finishing at all is the allocation bound.
        let mut frame = decl.to_le_bytes().to_vec();
        frame.extend_from_slice(&tail);
        prop_assert!(try_decode::<Ubig>(&frame).is_err());
        prop_assert!(try_decode::<String>(&frame).is_err());
        prop_assert!(try_decode::<Vec<u8>>(&frame).is_err());
        prop_assert!(try_decode::<Vec<Ubig>>(&frame).is_err());
    }

    #[test]
    fn length_prefix_exceeding_max_len_is_overflow(decl in ((1u64 << 28) + 1)..(1u64 << 32)) {
        // Within u32 range but above the codec's MAX_LEN sanity bound:
        // must be the typed overflow error even if the buffer happens to
        // be empty past the prefix.
        let frame = (decl as u32).to_le_bytes().to_vec();
        prop_assert_eq!(try_decode::<Ubig>(&frame), Err(WireError::LengthOverflow(decl)));
        prop_assert_eq!(try_decode::<Vec<u8>>(&frame), Err(WireError::LengthOverflow(decl)));
        prop_assert_eq!(try_decode::<String>(&frame), Err(WireError::LengthOverflow(decl)));
    }

    #[test]
    fn bit_flips_never_panic(limbs in proptest::collection::vec(any::<u64>(), 0..5), byte_pos in any::<u64>(), bit in 0u8..8) {
        // Flip one bit anywhere in a valid encoding. The result may decode
        // (a flipped digit) or error (a damaged prefix/tag) — both are
        // acceptable; a panic or runaway allocation is not.
        let value = Ubig::from_limbs(limbs.clone());
        let mut bytes = value.to_bytes().to_vec();
        if !bytes.is_empty() {
            let idx = (byte_pos as usize) % bytes.len();
            bytes[idx] ^= 1 << bit;
            let _ = try_decode::<Ubig>(&bytes);
        }
        let vec_val: Vec<u64> = limbs;
        let mut bytes = vec_val.to_bytes().to_vec();
        let idx = (byte_pos as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = try_decode::<Vec<u64>>(&bytes);
    }

    #[test]
    fn random_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = try_decode::<u64>(&garbage);
        let _ = try_decode::<bool>(&garbage);
        let _ = try_decode::<Ubig>(&garbage);
        let _ = try_decode::<Ibig>(&garbage);
        let _ = try_decode::<Vec<i64>>(&garbage);
        let _ = try_decode::<Vec<Ubig>>(&garbage);
        let _ = try_decode::<Option<Ubig>>(&garbage);
        let _ = try_decode::<String>(&garbage);
        let _ = try_decode::<(u64, Vec<i64>, bool)>(&garbage);
    }

    #[test]
    fn trailing_garbage_is_rejected(a in any::<u64>(), extra in 1usize..8) {
        let mut bytes = a.to_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(0xabu8, extra));
        prop_assert_eq!(try_decode::<u64>(&bytes), Err(WireError::Truncated));
    }
}

#[test]
fn invalid_bool_and_option_tags_are_typed_errors() {
    assert_eq!(try_decode::<bool>(&[2]), Err(WireError::InvalidTag(2)));
    assert_eq!(try_decode::<Option<u8>>(&[7, 0]), Err(WireError::InvalidTag(7)));
}

/// Raw ciphertext vectors as a checkpoint would hold them: the codec
/// carries them opaquely, so arbitrary residues (valid or hostile) must
/// round-trip byte-for-byte.
fn ciphertext_vecs() -> impl Strategy<Value = Vec<Ciphertext>> {
    proptest::collection::vec(
        proptest::collection::vec(any::<u64>(), 0..4)
            .prop_map(|limbs| Ciphertext::from_raw(Ubig::from_limbs(limbs))),
        0..4,
    )
}

/// Genuine bijections only — a shuffled identity of arbitrary length.
fn permutations() -> impl Strategy<Value = Permutation> {
    (0usize..8).prop_flat_map(|n| {
        Just((0..n).collect::<Vec<usize>>()).prop_shuffle().prop_map(|idx| {
            Permutation::from_indices(idx).expect("shuffled identity is a bijection")
        })
    })
}

fn rosters() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..64, 0..6)
}

fn sequences() -> impl Strategy<Value = Vec<i128>> {
    proptest::collection::vec(any::<i128>(), 0..5)
}

/// Every [`RoundState`] variant the recovery journal can hold, with
/// arbitrary payloads in each field.
fn round_states() -> impl Strategy<Value = RoundState> {
    prop_oneof![
        Just(RoundState::Start),
        (ciphertext_vecs(), ciphertext_vecs(), rosters()).prop_map(|(votes, thresh, survivors)| {
            RoundState::Summed { votes, thresh, survivors }
        }),
        (sequences(), sequences(), permutations(), rosters()).prop_map(
            |(votes_seq, thresh_seq, permutation, survivors)| RoundState::Permuted {
                votes_seq,
                thresh_seq,
                permutation,
                survivors,
            }
        ),
        (any::<usize>(), sequences(), rosters()).prop_map(|(slot, thresh_seq, survivors)| {
            RoundState::Ranked { slot, thresh_seq, survivors }
        }),
        rosters().prop_map(|survivors| RoundState::Gated { survivors }),
        (ciphertext_vecs(), rosters(), proptest::option::of(rosters())).prop_map(
            |(noisy, survivors, noisy_survivors)| RoundState::SummedNoisy {
                noisy,
                survivors,
                noisy_survivors,
            }
        ),
        (sequences(), permutations(), rosters(), proptest::option::of(rosters())).prop_map(
            |(noisy_seq, permutation, survivors, noisy_survivors)| RoundState::PermutedNoisy {
                noisy_seq,
                permutation,
                survivors,
                noisy_survivors,
            }
        ),
        (any::<usize>(), permutations(), rosters(), proptest::option::of(rosters())).prop_map(
            |(noisy_slot, permutation, survivors, noisy_survivors)| RoundState::RankedNoisy {
                noisy_slot,
                permutation,
                survivors,
                noisy_survivors,
            }
        ),
        (proptest::option::of(any::<usize>()), rosters(), proptest::option::of(rosters()))
            .prop_map(|(label, survivors, noisy_survivors)| RoundState::Done {
                label,
                survivors,
                noisy_survivors,
            }),
    ]
}

proptest! {
    /// The recovery invariant's foundation: a snapshot decodes back to
    /// exactly the state that was journaled, for every variant.
    #[test]
    fn round_state_round_trips(state in round_states()) {
        let bytes = state.to_bytes();
        let back = RoundState::from_bytes(bytes).expect("own encoding decodes");
        prop_assert_eq!(back, state);
    }

    /// A torn journal tail — any strict prefix of a snapshot — must be a
    /// typed error, so a crashed-mid-write checkpoint degrades to the
    /// previous snapshot instead of a panic or a half-read state.
    #[test]
    fn truncated_round_states_error(state in round_states()) {
        assert_prefixes_error::<RoundState>(&state.to_bytes());
    }

    /// Unknown step tags (the first snapshot byte) are typed errors.
    #[test]
    fn unknown_round_state_tags_error(tag in 9u8.., tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut frame = vec![tag];
        frame.extend_from_slice(&tail);
        prop_assert_eq!(try_decode::<RoundState>(&frame), Err(WireError::InvalidTag(tag)));
    }

    /// Bit flips and random garbage may decode or error, never panic.
    #[test]
    fn damaged_round_states_never_panic(state in round_states(), byte_pos in any::<u64>(), bit in 0u8..8, garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = state.to_bytes().to_vec();
        let idx = (byte_pos as usize) % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = try_decode::<RoundState>(&bytes);
        let _ = try_decode::<RoundState>(&garbage);
    }
}
