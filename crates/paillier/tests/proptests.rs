//! Property-based tests for the Paillier scheme: homomorphic identities,
//! signed-codec ring arithmetic, fixed-point quantization bounds, and
//! thread-count invariance of the data-parallel pool paths.

use bigint::Ubig;
use paillier::{FixedCodec, Keypair, RandomizerPool, SignedCodec};
use parallel::Parallelism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One shared keypair for the whole suite: keygen is the expensive part and
/// the properties quantify over messages, not keys.
fn keypair() -> &'static Keypair {
    use std::sync::OnceLock;
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| Keypair::generate(&mut StdRng::seed_from_u64(99), 64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encrypt_decrypt_roundtrip(m in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kp.public_key().encrypt(&Ubig::from(m as u64), &mut rng).unwrap();
        prop_assert_eq!(kp.private_key().decrypt_u64(&c), m as u64);
    }

    #[test]
    fn homomorphic_add_matches_plain(m1 in any::<u32>(), m2 in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = kp.public_key();
        let c = pk.add(&pk.encrypt_u64(m1 as u64, &mut rng), &pk.encrypt_u64(m2 as u64, &mut rng));
        prop_assert_eq!(kp.private_key().decrypt_u64(&c), m1 as u64 + m2 as u64);
    }

    #[test]
    fn homomorphic_scalar_mul(m in any::<u16>(), a in any::<u16>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = kp.public_key();
        let c = pk.mul_plain(&pk.encrypt_u64(m as u64, &mut rng), &Ubig::from(a as u64));
        prop_assert_eq!(kp.private_key().decrypt_u64(&c), m as u64 * a as u64);
    }

    #[test]
    fn signed_codec_add_roundtrip(x in -(1i64 << 40)..(1i64 << 40), y in -(1i64 << 40)..(1i64 << 40)) {
        let codec = SignedCodec::new(keypair().public_key());
        let ex = codec.encode_i64(x).unwrap();
        let ey = codec.encode_i64(y).unwrap();
        let sum = bigint::modular::modadd(&ex, &ey, codec.modulus());
        prop_assert_eq!(codec.decode_i64(&sum).unwrap(), x + y);
    }

    #[test]
    fn signed_homomorphic_subtraction(x in -(1i64 << 30)..(1i64 << 30), y in -(1i64 << 30)..(1i64 << 30), seed in any::<u64>()) {
        let kp = keypair();
        let codec = SignedCodec::new(kp.public_key());
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = kp.public_key();
        let cx = pk.encrypt(&codec.encode_i64(x).unwrap(), &mut rng).unwrap();
        let cy = pk.encrypt(&codec.encode_i64(y).unwrap(), &mut rng).unwrap();
        let diff = kp.private_key().decrypt(&pk.sub(&cx, &cy)).unwrap();
        prop_assert_eq!(codec.decode_i64(&diff).unwrap(), x - y);
    }

    #[test]
    fn fixed_codec_roundtrip_bounded_error(v in -32768.0f64..32768.0) {
        let c = FixedCodec::paper();
        let enc = c.encode(v).unwrap();
        let err = (c.decode(enc) - v).abs();
        prop_assert!(err < c.resolution());
    }

    #[test]
    fn fixed_scaled_sums_linear(vs in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
        let c = FixedCodec::paper();
        let total_scaled: i64 = vs.iter().map(|&v| c.to_scaled_i64(v).unwrap()).sum();
        let expect: f64 = vs.iter().map(|&v| (v * 65536.0).floor() / 65536.0).sum();
        prop_assert!((c.from_scaled_i64(total_scaled) - expect).abs() < 1e-9);
    }

    #[test]
    fn rerandomization_never_alters_plaintext(m in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = kp.public_key();
        let c = pk.encrypt_u64(m as u64, &mut rng);
        let c2 = pk.rerandomize(&c, &mut rng);
        prop_assert_eq!(kp.private_key().decrypt_u64(&c2), m as u64);
    }

    #[test]
    fn pool_generation_is_thread_count_invariant(
        size in 1usize..12,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        // Sizes below the default min-batch (4) exercise the sequential
        // degenerate path; larger sizes genuinely split across workers.
        let pk = keypair().public_key().clone();
        let mut rng_seq = StdRng::seed_from_u64(seed);
        let mut rng_par = StdRng::seed_from_u64(seed);
        let seq =
            RandomizerPool::generate_with(pk.clone(), size, &Parallelism::sequential(), &mut rng_seq);
        let par =
            RandomizerPool::generate_with(pk.clone(), size, &Parallelism::new(threads), &mut rng_par);
        // Identical pools encrypt identical values to identical ciphertexts.
        let values: Vec<Ubig> = (0..size as u64).map(Ubig::from).collect();
        let c_seq = seq.encrypt_batch(&values, &Parallelism::sequential()).unwrap();
        let c_par = par.encrypt_batch(&values, &Parallelism::sequential()).unwrap();
        prop_assert_eq!(c_seq, c_par);
        // The caller RNG advanced by the same number of draws either way.
        prop_assert_eq!(rng_seq.gen::<u64>(), rng_par.gen::<u64>());
    }

    #[test]
    fn batch_encryption_is_thread_count_invariant(
        raw_values in proptest::collection::vec(any::<u32>(), 1..10),
        pool_size in 0usize..12,
        threads in 2usize..9,
        seed in any::<u64>(),
    ) {
        // Batches shorter than the pool exercise the pooled path, longer
        // ones the deterministic on-the-fly fallback; batches under the
        // min-batch threshold stay sequential regardless of `threads`.
        let pk = keypair().public_key().clone();
        let values: Vec<Ubig> = raw_values.iter().map(|&v| Ubig::from(v as u64)).collect();
        let pool_seq = RandomizerPool::generate_with(
            pk.clone(), pool_size, &Parallelism::sequential(), &mut StdRng::seed_from_u64(seed));
        let pool_par = RandomizerPool::generate_with(
            pk.clone(), pool_size, &Parallelism::sequential(), &mut StdRng::seed_from_u64(seed));
        let c_seq = pool_seq.encrypt_batch(&values, &Parallelism::sequential()).unwrap();
        let c_par = pool_par.encrypt_batch(&values, &Parallelism::new(threads)).unwrap();
        prop_assert_eq!(c_seq, c_par);
        prop_assert_eq!(pool_seq.fallback_generated(), pool_par.fallback_generated());
    }
}
