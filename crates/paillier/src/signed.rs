//! Signed-integer message encoding.
//!
//! Protocol shares (`a^u`, `b^u` and the threshold offsets of Eqn. 6) are
//! signed, but Paillier plaintexts live in `Z_n`. [`SignedCodec`] maps a
//! signed window `(-n/2, n/2)` onto `Z_n` two's-complement style: negative
//! values wrap to the top half of the ring, and homomorphic addition of
//! encodings matches integer addition as long as results stay inside the
//! window.

use bigint::{Ibig, Sign, Ubig};

use crate::error::PaillierError;
use crate::keys::PublicKey;

/// Encoder/decoder between signed integers and `Z_n` residues under a
/// specific public key's modulus.
///
/// # Examples
///
/// ```
/// use paillier::{Keypair, SignedCodec};
///
/// let mut rng = rand::thread_rng();
/// let kp = Keypair::generate(&mut rng, 64);
/// let codec = SignedCodec::new(kp.public_key());
///
/// let c1 = kp.public_key().encrypt(&codec.encode_i64(-30).unwrap(), &mut rng).unwrap();
/// let c2 = kp.public_key().encrypt(&codec.encode_i64(72).unwrap(), &mut rng).unwrap();
/// let sum = kp.public_key().add(&c1, &c2);
/// let m = kp.private_key().decrypt(&sum).unwrap();
/// assert_eq!(codec.decode_i64(&m).unwrap(), 42);
/// ```
#[derive(Debug, Clone)]
pub struct SignedCodec {
    n: Ubig,
    half_n: Ubig,
}

impl SignedCodec {
    /// Builds a codec for the given public key's modulus.
    pub fn new(pk: &PublicKey) -> Self {
        let n = pk.modulus().clone();
        let half_n = &n >> 1;
        SignedCodec { n, half_n }
    }

    /// Builds a codec directly from a modulus (used by protocol code that
    /// manipulates residues without holding a key).
    pub fn from_modulus(n: Ubig) -> Self {
        let half_n = &n >> 1;
        SignedCodec { n, half_n }
    }

    /// The modulus the codec encodes into.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Encodes a signed big integer into `Z_n`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::SignedOverflow`] if `|v| >= n/2`.
    pub fn encode(&self, v: &Ibig) -> Result<Ubig, PaillierError> {
        if v.magnitude() >= &self.half_n {
            return Err(PaillierError::SignedOverflow);
        }
        Ok(v.rem_euclid(&self.n))
    }

    /// Encodes an `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::SignedOverflow`] if `|v| >= n/2`.
    pub fn encode_i64(&self, v: i64) -> Result<Ubig, PaillierError> {
        self.encode(&Ibig::from(v))
    }

    /// Encodes an `i128`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::SignedOverflow`] if `|v| >= n/2`.
    pub fn encode_i128(&self, v: i128) -> Result<Ubig, PaillierError> {
        self.encode(&Ibig::from(v))
    }

    /// Decodes a residue back to a signed big integer: values `< n/2` are
    /// positive, values `>= n/2` decode as `r − n`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MessageOutOfRange`] if `r >= n`.
    pub fn decode(&self, r: &Ubig) -> Result<Ibig, PaillierError> {
        if r >= &self.n {
            return Err(PaillierError::MessageOutOfRange);
        }
        if r < &self.half_n {
            Ok(Ibig::from(r.clone()))
        } else {
            let mag = &self.n - r;
            Ok(Ibig::from_sign_magnitude(Sign::Minus, mag))
        }
    }

    /// Decodes to `i64`.
    ///
    /// # Errors
    ///
    /// Returns an error if the residue is out of range or the decoded value
    /// exceeds `i64`.
    pub fn decode_i64(&self, r: &Ubig) -> Result<i64, PaillierError> {
        let v = self.decode(r)?;
        v.to_i128().and_then(|x| i64::try_from(x).ok()).ok_or(PaillierError::SignedOverflow)
    }

    /// Decodes to `i128`.
    ///
    /// # Errors
    ///
    /// Returns an error if the residue is out of range or the decoded value
    /// exceeds `i128`.
    pub fn decode_i128(&self, r: &Ubig) -> Result<i128, PaillierError> {
        self.decode(r)?.to_i128().ok_or(PaillierError::SignedOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn codec() -> SignedCodec {
        let kp = Keypair::generate(&mut StdRng::seed_from_u64(1), 64);
        SignedCodec::new(kp.public_key())
    }

    #[test]
    fn roundtrip_signed_values() {
        let c = codec();
        for v in [-1_000_000i64, -1, 0, 1, 42, 1_000_000, i32::MAX as i64] {
            let enc = c.encode_i64(v).unwrap();
            assert_eq!(c.decode_i64(&enc).unwrap(), v, "roundtrip {v}");
        }
    }

    #[test]
    fn addition_in_ring_matches_integers() {
        let c = codec();
        let pairs = [(-100i64, 250i64), (300, -300), (-5, -7), (1 << 20, 1 << 21)];
        for (x, y) in pairs {
            let ex = c.encode_i64(x).unwrap();
            let ey = c.encode_i64(y).unwrap();
            let sum = bigint::modular::modadd(&ex, &ey, c.modulus());
            assert_eq!(c.decode_i64(&sum).unwrap(), x + y, "({x})+({y})");
        }
    }

    #[test]
    fn overflow_rejected() {
        let c = codec();
        let too_big = Ibig::from(c.modulus().clone()); // n itself
        assert_eq!(c.encode(&too_big), Err(PaillierError::SignedOverflow));
        let exactly_half = Ibig::from(c.modulus() >> 1);
        assert_eq!(c.encode(&exactly_half), Err(PaillierError::SignedOverflow));
    }

    #[test]
    fn decode_rejects_unreduced() {
        let c = codec();
        assert_eq!(c.decode(c.modulus()), Err(PaillierError::MessageOutOfRange));
    }

    #[test]
    fn from_modulus_matches_key_codec() {
        let kp = Keypair::generate(&mut StdRng::seed_from_u64(2), 64);
        let c1 = SignedCodec::new(kp.public_key());
        let c2 = SignedCodec::from_modulus(kp.public_key().modulus().clone());
        let enc1 = c1.encode_i64(-999).unwrap();
        let enc2 = c2.encode_i64(-999).unwrap();
        assert_eq!(enc1, enc2);
    }

    #[test]
    fn i128_window() {
        let kp = Keypair::generate(&mut StdRng::seed_from_u64(3), 128);
        let c = SignedCodec::new(kp.public_key());
        let v = -(1i128 << 100);
        let enc = c.encode_i128(v).unwrap();
        assert_eq!(c.decode_i128(&enc).unwrap(), v);
    }
}
