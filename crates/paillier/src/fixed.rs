//! Fixed-point float encoding — Eqn. 8 of the paper.
//!
//! The prototype extends Paillier to floats by cutting the fraction below
//! `2^-16` and mapping `R ∈ [-2^15, 2^15)` to the 32-bit unsigned integer
//! `R^I = R · 2^16 + 2^31`. Softmax votes, noise shares and threshold
//! offsets all travel through this codec.
//!
//! Two views are provided:
//!
//! * **offset encoding** ([`FixedCodec::encode`]) — the literal Eqn. 8 form
//!   with the `2^31` bias, always non-negative, exactly as the paper's
//!   implementation stores values;
//! * **scaled encoding** ([`FixedCodec::to_scaled_i64`]) — the unbiased
//!   `R · 2^16` signed form, which is the convenient representation for
//!   homomorphic *sums* (biases would otherwise accumulate once per
//!   addend).

use crate::error::PaillierError;

/// Fractional bits retained by the encoding (Eqn. 8 uses `2^16`).
pub const FIXED_FRACTION_BITS: u32 = 16;

/// Offset exponent: encoded values are biased by `2^31`.
pub const FIXED_OFFSET_BITS: u32 = 31;

/// Codec implementing the paper's float-to-integer conversion.
///
/// # Examples
///
/// ```
/// use paillier::FixedCodec;
///
/// let codec = FixedCodec::paper();
/// let encoded = codec.encode(1.5)?;
/// assert_eq!(codec.decode(encoded), 1.5);
/// # Ok::<(), paillier::PaillierError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedCodec {
    fraction_bits: u32,
    offset_bits: u32,
}

impl FixedCodec {
    /// The paper's parameters: 16 fraction bits, `2^31` offset, i.e. a
    /// domain of `[-2^15, 2^15)`.
    pub fn paper() -> Self {
        FixedCodec { fraction_bits: FIXED_FRACTION_BITS, offset_bits: FIXED_OFFSET_BITS }
    }

    /// A custom precision/offset codec. The representable domain is
    /// `[-2^(offset_bits - fraction_bits), 2^(offset_bits - fraction_bits))`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction_bits >= offset_bits` or `offset_bits >= 63`.
    pub fn with_precision(fraction_bits: u32, offset_bits: u32) -> Self {
        assert!(fraction_bits < offset_bits, "offset must exceed fraction bits");
        assert!(offset_bits < 63, "offset must fit an i64");
        FixedCodec { fraction_bits, offset_bits }
    }

    /// The scale factor `2^fraction_bits`.
    pub fn scale(&self) -> f64 {
        (1u64 << self.fraction_bits) as f64
    }

    /// Inclusive-exclusive representable domain `[lo, hi)`.
    pub fn domain(&self) -> (f64, f64) {
        let half = (1u64 << (self.offset_bits - self.fraction_bits)) as f64;
        (-half, half)
    }

    /// Eqn. 8: `R^I = floor(R · 2^16) + 2^31`, a non-negative integer.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::FixedPointOutOfRange`] if `r` is outside
    /// the codec's domain or not finite.
    pub fn encode(&self, r: f64) -> Result<u64, PaillierError> {
        let (lo, hi) = self.domain();
        if !r.is_finite() || r < lo || r >= hi {
            return Err(PaillierError::FixedPointOutOfRange(r));
        }
        let scaled = (r * self.scale()).floor() as i64;
        Ok((scaled + (1i64 << self.offset_bits)) as u64)
    }

    /// Inverse of [`FixedCodec::encode`].
    pub fn decode(&self, encoded: u64) -> f64 {
        let unbiased = encoded as i64 - (1i64 << self.offset_bits);
        unbiased as f64 / self.scale()
    }

    /// The unbiased scaled form `floor(R · 2^16)` as a signed integer —
    /// what protocol sums actually add together.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::FixedPointOutOfRange`] if out of domain.
    pub fn to_scaled_i64(&self, r: f64) -> Result<i64, PaillierError> {
        let (lo, hi) = self.domain();
        if !r.is_finite() || r < lo || r >= hi {
            return Err(PaillierError::FixedPointOutOfRange(r));
        }
        Ok((r * self.scale()).floor() as i64)
    }

    /// Inverse of [`FixedCodec::to_scaled_i64`]; also decodes *sums* of
    /// scaled values (which may exceed the single-value domain).
    pub fn from_scaled_i64(&self, scaled: i64) -> f64 {
        scaled as f64 / self.scale()
    }

    /// Quantization step: the largest representation error for any value in
    /// domain is below this.
    pub fn resolution(&self) -> f64 {
        1.0 / self.scale()
    }
}

impl Default for FixedCodec {
    fn default() -> Self {
        FixedCodec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let c = FixedCodec::paper();
        assert_eq!(c.scale(), 65536.0);
        assert_eq!(c.domain(), (-32768.0, 32768.0));
        // Resolution quoted in the paper: 2^-16 ≈ 1.526e-5.
        assert!((c.resolution() - 1.526e-5).abs() < 1e-7);
    }

    #[test]
    fn exact_values_roundtrip() {
        let c = FixedCodec::paper();
        // The largest encodable value is 2^15 − 2^−16.
        let top = 32768.0 - 1.0 / 65536.0;
        for v in [0.0, 1.0, -1.0, 0.5, -0.5, 1234.25, -32768.0, top] {
            let enc = c.encode(v).unwrap();
            assert_eq!(c.decode(enc), v, "roundtrip {v}");
        }
    }

    #[test]
    fn quantization_error_bounded() {
        let c = FixedCodec::paper();
        for v in [0.1, -0.1, std::f64::consts::PI, -std::f64::consts::E, 1e-5, 999.999] {
            let err = (c.decode(c.encode(v).unwrap()) - v).abs();
            assert!(err < c.resolution(), "error {err} for {v}");
        }
    }

    #[test]
    fn zero_maps_to_offset() {
        let c = FixedCodec::paper();
        assert_eq!(c.encode(0.0).unwrap(), 1 << 31);
    }

    #[test]
    fn out_of_range_rejected() {
        let c = FixedCodec::paper();
        for v in [32768.0, -32769.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300] {
            assert!(c.encode(v).is_err(), "{v} must be rejected");
            assert!(c.to_scaled_i64(v).is_err(), "{v} must be rejected (scaled)");
        }
    }

    #[test]
    fn scaled_sums_decode_correctly() {
        let c = FixedCodec::paper();
        // Sum 100 copies of 0.5 in the scaled domain: exceeds nothing, but
        // sums of larger values would exceed the single-value domain and
        // still decode correctly from i64.
        let parts: i64 = (0..100).map(|_| c.to_scaled_i64(655.25).unwrap()).sum();
        assert!((c.from_scaled_i64(parts) - 65525.0).abs() < 1e-9);
    }

    #[test]
    fn custom_precision() {
        let c = FixedCodec::with_precision(8, 20);
        assert_eq!(c.domain(), (-4096.0, 4096.0));
        let enc = c.encode(-3.5).unwrap();
        assert_eq!(c.decode(enc), -3.5);
    }

    #[test]
    #[should_panic(expected = "offset must exceed")]
    fn invalid_precision_panics() {
        let _ = FixedCodec::with_precision(20, 20);
    }
}
