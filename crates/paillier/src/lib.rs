//! The Paillier additively homomorphic cryptosystem, as used by the private
//! consensus protocol for blind vote aggregation.
//!
//! Paillier encryption operates on plaintexts in `Z_n` and exposes two
//! homomorphic identities (Eqn. 1–2 of the paper):
//!
//! * `E[m1] * E[m2] = E[m1 + m2]` — ciphertext product adds plaintexts;
//! * `E[m]^a = E[a * m]` — ciphertext power scales the plaintext.
//!
//! The paper's prototype uses a 64-bit modulus; key size is configurable via
//! [`Keypair::generate`]. On top of the raw scheme this crate layers:
//!
//! * [`SignedCodec`] — two's-complement-style encoding of signed integers
//!   into `Z_n`, needed because protocol shares are signed;
//! * [`FixedCodec`] — the paper's Eqn. 8 fixed-point float encoding
//!   (`R^I = R * 2^16 + 2^31`) used for softmax votes and noise shares.
//!
//! # Examples
//!
//! ```
//! use paillier::Keypair;
//!
//! let mut rng = rand::thread_rng();
//! let keypair = Keypair::generate(&mut rng, 64);
//! let (pk, sk) = keypair.split();
//!
//! let c1 = pk.encrypt_u64(20, &mut rng);
//! let c2 = pk.encrypt_u64(22, &mut rng);
//! let sum = pk.add(&c1, &c2);
//! assert_eq!(sk.decrypt_u64(&sum), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ciphertext;
mod error;
mod fixed;
mod keys;
mod pool;
mod signed;

pub use ciphertext::Ciphertext;
pub use error::PaillierError;
pub use fixed::{FixedCodec, FIXED_FRACTION_BITS, FIXED_OFFSET_BITS};
pub use keys::{Keypair, PrivateKey, PublicKey};
pub use pool::RandomizerPool;
pub use signed::SignedCodec;

/// Default modulus size in bits, matching the paper's prototype ("The
/// Paillier crypto primitive has a key size of 64 bit", §VI-A).
///
/// This is a *reproduction* default — far below cryptographic strength.
/// Production deployments should use 2048-bit or larger moduli, which this
/// implementation supports.
pub const DEFAULT_KEY_BITS: u64 = 64;
