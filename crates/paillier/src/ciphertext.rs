//! The Paillier ciphertext newtype.

use bigint::Ubig;
use serde::{Deserialize, Serialize};

/// An element of `Z_{n²}` produced by Paillier encryption.
///
/// The newtype prevents ciphertexts from being confused with plaintext
/// big integers in protocol code. All homomorphic operations live on
/// [`crate::PublicKey`]; a ciphertext by itself is inert.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ciphertext(Ubig);

impl Ciphertext {
    /// Wraps a raw group element. Callers are responsible for it being a
    /// valid ciphertext under the intended key; decryption validates.
    pub fn from_raw(value: Ubig) -> Self {
        Ciphertext(value)
    }

    /// Borrow the raw group element.
    pub fn as_raw(&self) -> &Ubig {
        &self.0
    }

    /// Consumes `self`, returning the raw group element.
    pub fn into_raw(self) -> Ubig {
        self.0
    }

    /// Serialized size in bytes (little-endian, minimal) — used by the
    /// transport layer for communication accounting.
    pub fn byte_len(&self) -> usize {
        self.0.to_le_bytes().len()
    }
}

impl From<Ciphertext> for Ubig {
    fn from(c: Ciphertext) -> Ubig {
        c.into_raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let v = Ubig::from(0xdeadu64);
        let c = Ciphertext::from_raw(v.clone());
        assert_eq!(c.as_raw(), &v);
        assert_eq!(Ubig::from(c), v);
    }

    #[test]
    fn byte_len_tracks_magnitude() {
        assert_eq!(Ciphertext::from_raw(Ubig::zero()).byte_len(), 0);
        assert_eq!(Ciphertext::from_raw(Ubig::from(0xffffu64)).byte_len(), 2);
    }
}
