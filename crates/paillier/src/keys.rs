//! Key generation and the encrypt/decrypt core of the Paillier scheme.

use bigint::gcd::{gcd, lcm, modinv};
use bigint::modular::{modmul, modsub};
use bigint::montgomery::CachedContext;
use bigint::prime::gen_prime;
use bigint::{random, Ubig};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ciphertext::Ciphertext;
use crate::error::PaillierError;

/// Paillier public key: the modulus `n` (with `n²` cached) under which
/// anyone can encrypt and combine ciphertexts homomorphically.
///
/// The generator is fixed to `g = n + 1`, the standard choice that makes
/// encryption a single modular multiplication:
/// `E[m] = (1 + m·n) · r^n mod n²`.
///
/// The key embeds a lazily built Montgomery context for `n²` so every
/// exponentiation under the key (`r^n`, `E[m]^a`, rerandomization,
/// [`crate::RandomizerPool`] generation) reuses one precomputation
/// instead of rebuilding it per call. The cache is transparent: it is
/// skipped by serde (rebuilt on first use after deserialization) and
/// ignored by equality. Call [`PublicKey::precompute`] to pay the setup
/// cost eagerly, e.g. before timing-sensitive protocol rounds:
///
/// ```
/// use paillier::Keypair;
/// let kp = Keypair::generate(&mut rand::thread_rng(), 64);
/// let pk = kp.public_key();
/// pk.precompute(); // warm the n² Montgomery context (optional)
/// let c = pk.encrypt_u64(7, &mut rand::thread_rng());
/// assert_eq!(kp.private_key().decrypt_u64(&c), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    n: Ubig,
    n_squared: Ubig,
    /// Montgomery context for `Z_{n²}`, built once per key on first use.
    #[serde(skip)]
    ctx_n2: CachedContext,
}

/// Paillier private key: the factorization-derived trapdoor
/// `λ = lcm(p−1, q−1)` and `μ = λ⁻¹ mod n`, plus the prime factors and
/// precomputed constants for CRT-accelerated decryption.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateKey {
    public: PublicKey,
    lambda: Ubig,
    mu: Ubig,
    /// Prime factor `p` and its square.
    p: Ubig,
    p_squared: Ubig,
    /// Prime factor `q` and its square.
    q: Ubig,
    q_squared: Ubig,
    /// `h_p = (L_p(g^{p−1} mod p²))⁻¹ mod p`, for CRT decryption.
    h_p: Ubig,
    /// `h_q = (L_q(g^{q−1} mod q²))⁻¹ mod q`.
    h_q: Ubig,
    /// `p − 1` and `q − 1`: the CRT exponents, fixed at keygen so the
    /// decrypt hot path allocates no per-call constants.
    p_minus_1: Ubig,
    q_minus_1: Ubig,
    /// `p⁻¹ mod q`, for Garner recombination without a per-call
    /// extended GCD.
    p_inv_q: Ubig,
    /// Montgomery context for `Z_{p²}` (CRT decryption), built lazily.
    #[serde(skip)]
    ctx_p2: CachedContext,
    /// Montgomery context for `Z_{q²}` (CRT decryption), built lazily.
    #[serde(skip)]
    ctx_q2: CachedContext,
}

/// A freshly generated public/private keypair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Keypair {
    /// The public half.
    public: PublicKey,
    /// The private half.
    private: PrivateKey,
}

impl Keypair {
    /// Generates a keypair with an (approximately) `modulus_bits`-bit `n`.
    ///
    /// The two primes are `modulus_bits / 2` bits each, so `n` has
    /// `modulus_bits` or `modulus_bits - 1` bits. Primes are regenerated
    /// until `gcd(n, (p−1)(q−1)) = 1` and `p ≠ q`.
    ///
    /// ```
    /// use paillier::Keypair;
    /// let kp = Keypair::generate(&mut rand::thread_rng(), 64);
    /// assert!(kp.public_key().modulus().bits() >= 63);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `modulus_bits < 16` (the message space would be too small
    /// for the protocol's fixed-point values).
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: u64) -> Keypair {
        assert!(modulus_bits >= 16, "modulus must be at least 16 bits");
        let prime_bits = modulus_bits / 2;
        loop {
            let p = gen_prime(rng, prime_bits);
            let q = gen_prime(rng, prime_bits);
            if p == q {
                continue;
            }
            let n = &p * &q;
            let p1 = &p - &Ubig::one();
            let q1 = &q - &Ubig::one();
            if !gcd(&n, &(&p1 * &q1)).is_one() {
                continue;
            }
            let lambda = lcm(&p1, &q1);
            let mu = match modinv(&lambda, &n) {
                Some(mu) => mu,
                None => continue,
            };
            let n_squared = n.square();
            let public = PublicKey { n, n_squared, ctx_n2: CachedContext::new() };
            // CRT precomputation: with g = 1+n and n² ≡ 0 (mod p²),
            // g^{p−1} mod p² = 1 + (p−1)·n, so
            // L_p(g^{p−1} mod p²) = (p−1)·q mod p (and symmetrically).
            let h_p = modinv(&modmul(&p1, &q, &p), &p).expect("q invertible mod p");
            let h_q = modinv(&modmul(&q1, &p, &q), &q).expect("p invertible mod q");
            let p_inv_q = modinv(&p, &q).expect("distinct primes are coprime");
            let private = PrivateKey {
                public: public.clone(),
                lambda,
                mu,
                p_squared: p.square(),
                q_squared: q.square(),
                p,
                q,
                h_p,
                h_q,
                p_minus_1: p1,
                q_minus_1: q1,
                p_inv_q,
                ctx_p2: CachedContext::new(),
                ctx_q2: CachedContext::new(),
            };
            return Keypair { public, private };
        }
    }

    /// Borrow the public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Borrow the private key.
    pub fn private_key(&self) -> &PrivateKey {
        &self.private
    }

    /// Consumes the keypair into `(public, private)` halves.
    pub fn split(self) -> (PublicKey, PrivateKey) {
        (self.public, self.private)
    }
}

impl PublicKey {
    /// The modulus `n`; plaintexts live in `Z_n`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// The ciphertext modulus `n²`.
    pub fn modulus_squared(&self) -> &Ubig {
        &self.n_squared
    }

    /// Eagerly builds the Montgomery context for `n²` so the first
    /// encryption does not pay the one-time setup cost. Idempotent and
    /// cheap after the first call; useful before latency-sensitive
    /// protocol rounds or before sharing the key across worker threads.
    pub fn precompute(&self) {
        let _ = self.ctx_n2.context(&self.n_squared);
    }

    /// `base^exp mod n²` through the per-key cached Montgomery context.
    pub(crate) fn pow_mod_n2(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        self.ctx_n2.modpow(base, exp, &self.n_squared)
    }

    /// The cached `n²` Montgomery context itself, for batch kernels
    /// ([`bigint::montgomery::MontgomeryContext::modpow_multi`]) that need
    /// more than one exponentiation per call. Always `Some` for RSA-like
    /// keys (`n²` is odd), `None` only for degenerate test moduli.
    pub(crate) fn ctx_n2(&self) -> Option<&std::sync::Arc<bigint::montgomery::MontgomeryContext>> {
        self.ctx_n2.context(&self.n_squared)
    }

    /// Encrypts a plaintext `m ∈ Z_n`:
    /// `E[m] = (1 + m·n) · r^n mod n²` with uniform `r ∈ Z_n^*`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MessageOutOfRange`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        m: &Ubig,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        if m >= &self.n {
            return Err(PaillierError::MessageOutOfRange);
        }
        let r = random::gen_coprime(rng, &self.n);
        Ok(self.encrypt_with_randomness(m, &r))
    }

    /// Deterministic encryption with caller-chosen randomness `r`; used by
    /// tests and by protocol transcripts that must be replayable.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `m >= n`.
    pub fn encrypt_with_randomness(&self, m: &Ubig, r: &Ubig) -> Ciphertext {
        debug_assert!(m < &self.n, "message must be reduced mod n");
        // g^m = (1+n)^m = 1 + m*n (mod n^2) for g = n+1.
        let g_m = &(Ubig::one() + modmul(m, &self.n, &self.n_squared)) % &self.n_squared;
        let r_n = self.pow_mod_n2(r, &self.n);
        Ciphertext::from_raw(modmul(&g_m, &r_n, &self.n_squared))
    }

    /// Convenience wrapper: encrypt a `u64` (must be `< n`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= n`.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, m: u64, rng: &mut R) -> Ciphertext {
        self.encrypt(&Ubig::from(m), rng).expect("u64 message exceeds modulus")
    }

    /// Homomorphic addition: `E[m1 + m2] = E[m1] · E[m2] mod n²` (Eqn. 1).
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext::from_raw(modmul(c1.as_raw(), c2.as_raw(), &self.n_squared))
    }

    /// Homomorphic plaintext addition: `E[m + k]` from `E[m]` and plain `k`.
    pub fn add_plain(&self, c: &Ciphertext, k: &Ubig) -> Ciphertext {
        let k = k % &self.n;
        let g_k = &(Ubig::one() + modmul(&k, &self.n, &self.n_squared)) % &self.n_squared;
        Ciphertext::from_raw(modmul(c.as_raw(), &g_k, &self.n_squared))
    }

    /// Homomorphic scalar multiplication: `E[a·m] = E[m]^a mod n²` (Eqn. 2).
    pub fn mul_plain(&self, c: &Ciphertext, a: &Ubig) -> Ciphertext {
        Ciphertext::from_raw(self.pow_mod_n2(c.as_raw(), &(a % &self.n)))
    }

    /// Homomorphic negation: `E[−m] = E[m]^(n−1)`, since `n−1 ≡ −1 (mod n)`.
    pub fn neg(&self, c: &Ciphertext) -> Ciphertext {
        self.mul_plain(c, &(&self.n - &Ubig::one()))
    }

    /// Homomorphic subtraction: `E[m1 − m2]`.
    pub fn sub(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        self.add(c1, &self.neg(c2))
    }

    /// Rerandomizes a ciphertext (multiplies by a fresh encryption of zero)
    /// so it is unlinkable to its origin. Used when a server forwards
    /// ciphertexts it did not create.
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = random::gen_coprime(rng, &self.n);
        let r_n = self.pow_mod_n2(&r, &self.n);
        Ciphertext::from_raw(modmul(c.as_raw(), &r_n, &self.n_squared))
    }

    /// Encryption of zero with fixed randomness 1 — the homomorphic
    /// identity element.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext::from_raw(Ubig::one())
    }

    /// Encrypts each element of a slice (vector plaintexts are how the
    /// protocol handles the `K` class labels).
    ///
    /// # Errors
    ///
    /// Propagates [`PaillierError::MessageOutOfRange`] from any element.
    pub fn encrypt_vec<R: Rng + ?Sized>(
        &self,
        ms: &[Ubig],
        rng: &mut R,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        ms.iter().map(|m| self.encrypt(m, rng)).collect()
    }

    /// Element-wise homomorphic sum of two equal-length ciphertext vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn add_vec(&self, a: &[Ciphertext], b: &[Ciphertext]) -> Vec<Ciphertext> {
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        a.iter().zip(b).map(|(x, y)| self.add(x, y)).collect()
    }
}

impl PrivateKey {
    /// Borrow the matching public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Eagerly builds all Montgomery contexts the key decrypts under
    /// (`n²` via the embedded public key, plus `p²` and `q²` for the CRT
    /// path). Idempotent; see [`PublicKey::precompute`].
    pub fn precompute(&self) {
        self.public.precompute();
        let _ = self.ctx_p2.context(&self.p_squared);
        let _ = self.ctx_q2.context(&self.q_squared);
    }

    /// Decrypts: `m = L(c^λ mod n²) · μ mod n`, where `L(x) = (x−1)/n`.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MalformedCiphertext`] if `c` is not in
    /// `Z_{n²}` or is not a unit.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<Ubig, PaillierError> {
        let n = &self.public.n;
        let n2 = &self.public.n_squared;
        if c.as_raw() >= n2 || c.as_raw().is_zero() {
            return Err(PaillierError::MalformedCiphertext);
        }
        if !gcd(c.as_raw(), n).is_one() {
            return Err(PaillierError::MalformedCiphertext);
        }
        let x = self.public.pow_mod_n2(c.as_raw(), &self.lambda);
        let l = &(&x - &Ubig::one()) / n;
        Ok(modmul(&l, &self.mu, n))
    }

    /// CRT-accelerated decryption: exponentiates modulo `p²` and `q²`
    /// separately and recombines — roughly 3–4× faster than the direct
    /// form at production key sizes. Produces identical plaintexts to
    /// [`PrivateKey::decrypt`] (asserted by tests and benched as an
    /// ablation).
    ///
    /// # Errors
    ///
    /// Same as [`PrivateKey::decrypt`].
    pub fn decrypt_crt(&self, c: &Ciphertext) -> Result<Ubig, PaillierError> {
        let n2 = &self.public.n_squared;
        if c.as_raw() >= n2 || c.as_raw().is_zero() {
            return Err(PaillierError::MalformedCiphertext);
        }
        // gcd(c, n) = 1 ⟺ p ∤ c and q ∤ c — two half-size remainders
        // (reused below) instead of a binary GCD over full-width values.
        let c_p = c.as_raw() % &self.p_squared;
        let c_q = c.as_raw() % &self.q_squared;
        if (&c_p % &self.p).is_zero() || (&c_q % &self.q).is_zero() {
            return Err(PaillierError::MalformedCiphertext);
        }
        // m_p = L_p(c^{p−1} mod p²) · h_p mod p.
        let xp = self.ctx_p2.modpow(&c_p, &self.p_minus_1, &self.p_squared);
        let lp = &(&xp - &Ubig::one()) / &self.p;
        let m_p = modmul(&lp, &self.h_p, &self.p);
        let xq = self.ctx_q2.modpow(&c_q, &self.q_minus_1, &self.q_squared);
        let lq = &(&xq - &Ubig::one()) / &self.q;
        let m_q = modmul(&lq, &self.h_q, &self.q);
        // Garner recombination with the keygen-time `p⁻¹ mod q`:
        // m = m_p + p·((m_q − m_p)·p⁻¹ mod q), the unique value in
        // [0, n) — identical to a general CRT solve, minus its per-call
        // extended GCD.
        let t = modmul(&modsub(&m_q, &m_p, &self.q), &self.p_inv_q, &self.q);
        Ok(&m_p + &(&self.p * &t))
    }

    /// Convenience wrapper: decrypt to `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is malformed or the plaintext exceeds `u64`.
    pub fn decrypt_u64(&self, c: &Ciphertext) -> u64 {
        self.decrypt(c).expect("malformed ciphertext").to_u64().expect("plaintext exceeds u64")
    }

    /// Decrypts a slice of ciphertexts.
    ///
    /// # Errors
    ///
    /// Propagates [`PaillierError::MalformedCiphertext`] from any element.
    pub fn decrypt_vec(&self, cs: &[Ciphertext]) -> Result<Vec<Ubig>, PaillierError> {
        cs.iter().map(|c| self.decrypt(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn keypair(bits: u64) -> Keypair {
        Keypair::generate(&mut rng(), bits)
    }

    #[test]
    fn roundtrip_small_messages() {
        let kp = keypair(64);
        let mut r = rng();
        for m in [0u64, 1, 2, 41, 1000, 65535, 1 << 30] {
            let c = kp.public_key().encrypt_u64(m, &mut r);
            assert_eq!(kp.private_key().decrypt_u64(&c), m, "roundtrip {m}");
        }
    }

    #[test]
    fn roundtrip_near_modulus() {
        let kp = keypair(64);
        let mut r = rng();
        let n = kp.public_key().modulus().clone();
        let m = &n - &Ubig::one();
        let c = kp.public_key().encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private_key().decrypt(&c).unwrap(), m);
    }

    #[test]
    fn message_out_of_range_rejected() {
        let kp = keypair(64);
        let mut r = rng();
        let n = kp.public_key().modulus().clone();
        assert_eq!(kp.public_key().encrypt(&n, &mut r), Err(PaillierError::MessageOutOfRange));
    }

    #[test]
    fn homomorphic_addition() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let c1 = pk.encrypt_u64(1234, &mut r);
        let c2 = pk.encrypt_u64(8766, &mut r);
        assert_eq!(kp.private_key().decrypt_u64(&pk.add(&c1, &c2)), 10000);
    }

    #[test]
    fn homomorphic_plain_ops() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let c = pk.encrypt_u64(100, &mut r);
        assert_eq!(kp.private_key().decrypt_u64(&pk.add_plain(&c, &Ubig::from(23u64))), 123);
        assert_eq!(kp.private_key().decrypt_u64(&pk.mul_plain(&c, &Ubig::from(7u64))), 700);
    }

    #[test]
    fn negation_and_subtraction_wrap() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let n = pk.modulus().clone();
        let c5 = pk.encrypt_u64(5, &mut r);
        let c3 = pk.encrypt_u64(3, &mut r);
        // 3 - 5 == n - 2 in Z_n.
        let d = kp.private_key().decrypt(&pk.sub(&c3, &c5)).unwrap();
        assert_eq!(d, &n - &Ubig::two());
        // 5 - 3 == 2.
        assert_eq!(kp.private_key().decrypt_u64(&pk.sub(&c5, &c3)), 2);
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let c = pk.encrypt_u64(77, &mut r);
        let c2 = pk.rerandomize(&c, &mut r);
        assert_ne!(c, c2, "rerandomization must change the ciphertext");
        assert_eq!(kp.private_key().decrypt_u64(&c2), 77);
    }

    #[test]
    fn zero_ciphertext_is_identity() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let c = pk.encrypt_u64(99, &mut r);
        let z = pk.zero_ciphertext();
        assert_eq!(kp.private_key().decrypt_u64(&pk.add(&c, &z)), 99);
        assert_eq!(kp.private_key().decrypt_u64(&z), 0);
    }

    #[test]
    fn probabilistic_encryption() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let c1 = pk.encrypt_u64(5, &mut r);
        let c2 = pk.encrypt_u64(5, &mut r);
        assert_ne!(c1, c2, "two encryptions of the same message must differ");
    }

    #[test]
    fn vector_helpers() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let a: Vec<Ubig> = [1u64, 2, 3].iter().map(|&v| Ubig::from(v)).collect();
        let b: Vec<Ubig> = [10u64, 20, 30].iter().map(|&v| Ubig::from(v)).collect();
        let ca = pk.encrypt_vec(&a, &mut r).unwrap();
        let cb = pk.encrypt_vec(&b, &mut r).unwrap();
        let sum = kp.private_key().decrypt_vec(&pk.add_vec(&ca, &cb)).unwrap();
        assert_eq!(sum, vec![Ubig::from(11u64), Ubig::from(22u64), Ubig::from(33u64)]);
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let kp = keypair(64);
        let bad = Ciphertext::from_raw(kp.public_key().modulus_squared().clone());
        assert_eq!(kp.private_key().decrypt(&bad), Err(PaillierError::MalformedCiphertext));
        let zero = Ciphertext::from_raw(Ubig::zero());
        assert_eq!(kp.private_key().decrypt(&zero), Err(PaillierError::MalformedCiphertext));
    }

    #[test]
    fn larger_keys_work() {
        let mut r = rng();
        let kp = Keypair::generate(&mut r, 256);
        let pk = kp.public_key();
        assert!(pk.modulus().bits() >= 255);
        let c = pk.encrypt_u64(123_456_789, &mut r);
        assert_eq!(kp.private_key().decrypt_u64(&c), 123_456_789);
    }

    #[test]
    fn crt_decryption_matches_direct() {
        let kp = keypair(64);
        let mut r = rng();
        let pk = kp.public_key();
        let n = pk.modulus().clone();
        for m in [0u64, 1, 42, 65535, 1 << 31] {
            let c = pk.encrypt_u64(m, &mut r);
            assert_eq!(
                kp.private_key().decrypt_crt(&c).unwrap(),
                kp.private_key().decrypt(&c).unwrap(),
                "CRT mismatch at {m}"
            );
        }
        // Near-modulus message.
        let m = &n - &Ubig::one();
        let c = pk.encrypt(&m, &mut r).unwrap();
        assert_eq!(kp.private_key().decrypt_crt(&c).unwrap(), m);
        // Malformed input rejected identically.
        let bad = Ciphertext::from_raw(pk.modulus_squared().clone());
        assert_eq!(kp.private_key().decrypt_crt(&bad), Err(PaillierError::MalformedCiphertext));
    }

    #[test]
    fn crt_decryption_at_larger_keys() {
        let mut r = rng();
        let kp = Keypair::generate(&mut r, 256);
        let c = kp.public_key().encrypt_u64(987_654_321, &mut r);
        assert_eq!(kp.private_key().decrypt_crt(&c).unwrap(), Ubig::from(987_654_321u64));
    }

    #[test]
    fn deterministic_encryption_with_fixed_randomness() {
        let kp = keypair(64);
        let pk = kp.public_key();
        let r = Ubig::from(12345u64);
        let c1 = pk.encrypt_with_randomness(&Ubig::from(7u64), &r);
        let c2 = pk.encrypt_with_randomness(&Ubig::from(7u64), &r);
        assert_eq!(c1, c2);
    }
}
