//! Error type for Paillier operations.

use std::error::Error;
use std::fmt;

/// Errors returned by Paillier encryption, decryption and encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum PaillierError {
    /// The plaintext is not in the message space `Z_n`.
    MessageOutOfRange,
    /// The ciphertext is not in `Z_{n^2}` or shares a factor with `n`.
    MalformedCiphertext,
    /// A signed value does not fit the signed message window `(-n/2, n/2)`.
    SignedOverflow,
    /// A float is outside the fixed-point range `[-2^15, 2^15)` of Eqn. 8.
    FixedPointOutOfRange(f64),
    /// Keys from different keypairs were mixed in one operation.
    KeyMismatch,
    /// A [`crate::RandomizerPool`] ran out of precomputed randomizers.
    ///
    /// Carries the pool capacity and the randomizer index the caller
    /// asked for, so long batch campaigns can size (or
    /// [`crate::RandomizerPool::refill`]) pools instead of dying blind
    /// mid-round.
    PoolExhausted {
        /// Total randomizers the pool was generated with.
        size: usize,
        /// The (zero-based) randomizer index the failed call requested.
        index: usize,
    },
}

impl fmt::Display for PaillierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaillierError::MessageOutOfRange => write!(f, "plaintext not in Z_n"),
            PaillierError::MalformedCiphertext => write!(f, "ciphertext not a unit of Z_n^2"),
            PaillierError::SignedOverflow => {
                write!(f, "signed value outside the (-n/2, n/2) window")
            }
            PaillierError::FixedPointOutOfRange(v) => {
                write!(f, "float {v} outside fixed-point range [-2^15, 2^15)")
            }
            PaillierError::KeyMismatch => write!(f, "operation mixed keys of different keypairs"),
            PaillierError::PoolExhausted { size, index } => {
                write!(
                    f,
                    "randomizer pool exhausted (size {size}, requested index {index}); \
                     generate a larger pool or call refill()"
                )
            }
        }
    }
}

impl Error for PaillierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        assert!(PaillierError::MessageOutOfRange.to_string().contains("Z_n"));
        assert!(PaillierError::FixedPointOutOfRange(7e9).to_string().contains("7000000000"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PaillierError>();
    }
}
