//! Precomputed randomizer pool — the paper's parallel-encryption fix.
//!
//! §VI-A: "almost all encryptions require random number generation which
//! relies on a common generator, but the generator is not sufficiently
//! fast … we made a tweak by generating a table of random numbers
//! beforehand". Paillier encryption spends nearly all its time computing
//! `r^n mod n²`; this pool precomputes those powers once (optionally in
//! parallel) so the hot path is a single modular multiplication, and
//! encryption can fan out across threads without contending on an RNG.
//!
//! Unlike the paper's prototype (which indexed the table "with the
//! current time", risking reuse), the pool hands out each randomizer
//! **exactly once** — reusing `r^n` across two ciphertexts would let an
//! observer link them and cancel the blinding. When the pool runs dry,
//! [`RandomizerPool::encrypt`] returns an error instead of degrading.

use std::sync::atomic::{AtomicUsize, Ordering};

use bigint::modular::modmul;
use bigint::{random, Ubig};
use rand::Rng;

use crate::ciphertext::Ciphertext;
use crate::error::PaillierError;
use crate::keys::PublicKey;

/// A single-use pool of precomputed Paillier randomizers `r^n mod n²`.
///
/// # Examples
///
/// ```
/// use paillier::{Keypair, RandomizerPool};
/// use bigint::Ubig;
///
/// let mut rng = rand::thread_rng();
/// let kp = Keypair::generate(&mut rng, 64);
/// let pool = RandomizerPool::generate(kp.public_key().clone(), 16, &mut rng);
/// let c = pool.encrypt(&Ubig::from(7u64))?;
/// assert_eq!(kp.private_key().decrypt_u64(&c), 7);
/// # Ok::<(), paillier::PaillierError>(())
/// ```
#[derive(Debug)]
pub struct RandomizerPool {
    pk: PublicKey,
    randomizers: Vec<Ubig>,
    next: AtomicUsize,
}

impl RandomizerPool {
    /// Precomputes `size` randomizers sequentially. The key's cached
    /// `n²` Montgomery context is warmed first, so each `r^n` pays only
    /// the exponentiation — not a per-item context rebuild.
    pub fn generate<R: Rng + ?Sized>(pk: PublicKey, size: usize, rng: &mut R) -> Self {
        pk.precompute();
        let randomizers = (0..size).map(|_| Self::one_randomizer(&pk, rng)).collect();
        RandomizerPool { pk, randomizers, next: AtomicUsize::new(0) }
    }

    /// Precomputes `size` randomizers across `threads` worker threads.
    /// Each worker derives its own RNG stream from `rng`, so workers never
    /// contend on a shared generator — the paper's bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn generate_parallel<R: Rng + ?Sized>(
        pk: PublicKey,
        size: usize,
        threads: usize,
        rng: &mut R,
    ) -> Self {
        assert!(threads > 0, "need at least one worker");
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Warm the shared n² context once; every worker then reuses it
        // through the key reference instead of rebuilding per item.
        pk.precompute();
        let seeds: Vec<u64> = (0..threads).map(|_| rng.gen()).collect();
        let per_worker = size.div_ceil(threads);
        let mut randomizers = Vec::with_capacity(size);
        std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .enumerate()
                .map(|(w, &seed)| {
                    let pk = &pk;
                    let count = per_worker.min(size.saturating_sub(w * per_worker));
                    scope.spawn(move || {
                        let mut worker_rng = StdRng::seed_from_u64(seed);
                        (0..count)
                            .map(|_| Self::one_randomizer(pk, &mut worker_rng))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                randomizers.extend(handle.join().expect("worker panicked"));
            }
        });
        RandomizerPool { pk, randomizers, next: AtomicUsize::new(0) }
    }

    fn one_randomizer<R: Rng + ?Sized>(pk: &PublicKey, rng: &mut R) -> Ubig {
        let r = random::gen_coprime(rng, pk.modulus());
        pk.pow_mod_n2(&r, pk.modulus())
    }

    /// The public key the pool was built for.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// Randomizers not yet consumed.
    pub fn remaining(&self) -> usize {
        self.randomizers.len().saturating_sub(self.next.load(Ordering::Relaxed))
    }

    /// Total randomizers the pool was generated (and refilled) with,
    /// consumed or not.
    pub fn capacity(&self) -> usize {
        self.randomizers.len()
    }

    /// Tops the pool back up with `additional` fresh randomizers, so a
    /// long batch campaign can keep one pool alive instead of dying on
    /// [`PaillierError::PoolExhausted`] mid-round. Requires exclusive
    /// access (`&mut self`); already-claimed randomizers are unaffected.
    ///
    /// ```
    /// use paillier::{Keypair, RandomizerPool};
    /// use bigint::Ubig;
    ///
    /// let mut rng = rand::thread_rng();
    /// let kp = Keypair::generate(&mut rng, 64);
    /// let mut pool = RandomizerPool::generate(kp.public_key().clone(), 1, &mut rng);
    /// pool.encrypt(&Ubig::one())?;
    /// assert_eq!(pool.remaining(), 0);
    /// pool.refill(4, &mut rng);
    /// assert_eq!(pool.remaining(), 4);
    /// # Ok::<(), paillier::PaillierError>(())
    /// ```
    pub fn refill<R: Rng + ?Sized>(&mut self, additional: usize, rng: &mut R) {
        self.randomizers.extend((0..additional).map(|_| Self::one_randomizer(&self.pk, rng)));
    }

    /// Encrypts `m` using the next unused randomizer. Thread-safe: each
    /// randomizer is claimed by exactly one caller.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MessageOutOfRange`] if `m >= n`, or
    /// [`PaillierError::PoolExhausted`] once all randomizers are used.
    pub fn encrypt(&self, m: &Ubig) -> Result<Ciphertext, PaillierError> {
        if m >= self.pk.modulus() {
            return Err(PaillierError::MessageOutOfRange);
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let r_n = self
            .randomizers
            .get(idx)
            .ok_or(PaillierError::PoolExhausted { size: self.randomizers.len(), index: idx })?;
        let n2 = self.pk.modulus_squared();
        let g_m = &(Ubig::one() + modmul(m, self.pk.modulus(), n2)) % n2;
        Ok(Ciphertext::from_raw(modmul(&g_m, r_n, n2)))
    }

    /// Encrypts a batch across `threads` worker threads, preserving input
    /// order — the paper's "split instances into batches and run
    /// encryptions in parallel".
    ///
    /// # Errors
    ///
    /// Fails if the pool has fewer than `values.len()` randomizers left,
    /// or if any value is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn encrypt_batch(
        &self,
        values: &[Ubig],
        threads: usize,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        assert!(threads > 0, "need at least one worker");
        if self.remaining() < values.len() {
            return Err(PaillierError::PoolExhausted {
                size: self.randomizers.len(),
                index: self.next.load(Ordering::Relaxed) + values.len() - 1,
            });
        }
        let chunk = values.len().div_ceil(threads).max(1);
        let mut out: Vec<Option<Ciphertext>> = vec![None; values.len()];
        let mut error = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = values
                .chunks(chunk)
                .map(|vals| {
                    scope.spawn(move || vals.iter().map(|v| self.encrypt(v)).collect::<Vec<_>>())
                })
                .collect();
            let mut pos = 0;
            for handle in handles {
                for result in handle.join().expect("worker panicked") {
                    match result {
                        Ok(ct) => out[pos] = Some(ct),
                        Err(e) => error = Some(e),
                    }
                    pos += 1;
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        Ok(out.into_iter().map(|c| c.expect("filled above")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(&mut StdRng::seed_from_u64(500), 64))
    }

    #[test]
    fn pooled_encryption_decrypts() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 8, &mut rng);
        for m in [0u64, 1, 42, 65535] {
            let c = pool.encrypt(&Ubig::from(m)).unwrap();
            assert_eq!(keypair().private_key().decrypt_u64(&c), m);
        }
        assert_eq!(pool.remaining(), 4);
    }

    #[test]
    fn pool_exhaustion_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 2, &mut rng);
        pool.encrypt(&Ubig::one()).unwrap();
        pool.encrypt(&Ubig::one()).unwrap();
        // The error reports the capacity and the index that overran it.
        assert_eq!(
            pool.encrypt(&Ubig::one()),
            Err(PaillierError::PoolExhausted { size: 2, index: 2 })
        );
    }

    #[test]
    fn refill_revives_an_exhausted_pool() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut pool = RandomizerPool::generate(keypair().public_key().clone(), 1, &mut rng);
        pool.encrypt(&Ubig::one()).unwrap();
        assert!(matches!(
            pool.encrypt(&Ubig::one()),
            Err(PaillierError::PoolExhausted { size: 1, .. })
        ));
        pool.refill(3, &mut rng);
        assert_eq!(pool.capacity(), 4);
        // Index 0 was consumed and index 1 burned by the failed claim.
        assert_eq!(pool.remaining(), 2);
        let c = pool.encrypt(&Ubig::from(6u64)).unwrap();
        assert_eq!(keypair().private_key().decrypt_u64(&c), 6);
    }

    #[test]
    fn randomizers_are_single_use() {
        // Two encryptions of the same message must differ (fresh r each).
        let mut rng = StdRng::seed_from_u64(3);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 2, &mut rng);
        let c1 = pool.encrypt(&Ubig::from(5u64)).unwrap();
        let c2 = pool.encrypt(&Ubig::from(5u64)).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn parallel_generation_matches_capacity() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool =
            RandomizerPool::generate_parallel(keypair().public_key().clone(), 10, 3, &mut rng);
        assert_eq!(pool.remaining(), 10);
        let c = pool.encrypt(&Ubig::from(9u64)).unwrap();
        assert_eq!(keypair().private_key().decrypt_u64(&c), 9);
    }

    #[test]
    fn batch_encryption_preserves_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 20, &mut rng);
        let values: Vec<Ubig> = (0..17u64).map(Ubig::from).collect();
        let cts = pool.encrypt_batch(&values, 4).unwrap();
        for (i, ct) in cts.iter().enumerate() {
            assert_eq!(keypair().private_key().decrypt_u64(ct), i as u64);
        }
    }

    #[test]
    fn batch_larger_than_pool_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 3, &mut rng);
        let values: Vec<Ubig> = (0..5u64).map(Ubig::from).collect();
        assert_eq!(
            pool.encrypt_batch(&values, 2),
            Err(PaillierError::PoolExhausted { size: 3, index: 4 })
        );
    }

    #[test]
    fn concurrent_claims_never_collide() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 64, &mut rng);
        let cts: Vec<Ciphertext> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        (0..8).map(|_| pool.encrypt(&Ubig::from(1u64)).unwrap()).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        // All 64 ciphertexts must be pairwise distinct randomizers.
        let unique: std::collections::HashSet<_> = cts.iter().map(|c| c.as_raw().clone()).collect();
        assert_eq!(unique.len(), 64);
        assert_eq!(pool.remaining(), 0);
    }
}
