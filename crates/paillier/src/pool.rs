//! Precomputed randomizer pool — the paper's parallel-encryption fix.
//!
//! §VI-A: "almost all encryptions require random number generation which
//! relies on a common generator, but the generator is not sufficiently
//! fast … we made a tweak by generating a table of random numbers
//! beforehand". Paillier encryption spends nearly all its time computing
//! `r^n mod n²`; this pool precomputes those powers once (optionally in
//! parallel via a [`Parallelism`] config) so the hot path is a single
//! modular multiplication, and encryption can fan out across threads
//! without contending on an RNG.
//!
//! Unlike the paper's prototype (which indexed the table "with the
//! current time", risking reuse), the pool hands out each randomizer
//! **exactly once** — reusing `r^n` across two ciphertexts would let an
//! observer link them and cancel the blinding. When the pool runs dry, a
//! default pool degrades gracefully: the missing randomizers are
//! generated on the fly (each from its own seed-derived RNG stream, so
//! nothing is ever reused) and counted in
//! [`RandomizerPool::fallback_generated`] so an operator can size the
//! next pool correctly. A pool built with [`RandomizerPool::with_strict`]
//! keeps the old behavior and returns
//! [`PaillierError::PoolExhausted`] instead.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use bigint::modular::modmul;
use bigint::{random, Ubig};
use parallel::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ciphertext::Ciphertext;
use crate::error::PaillierError;
use crate::keys::PublicKey;

/// Odd multiplier used to spread overflow indices into distinct fallback
/// RNG streams (SplitMix64's increment constant).
const FALLBACK_STREAM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Number of fixed blind bases a batched refill multi-exponentiates over.
const BLIND_BASES: usize = 4;

/// Floor on the per-base exponent width in a batched refill, so tiny test
/// moduli still draw meaningful entropy.
const MIN_BLIND_EXP_BITS: u64 = 16;

/// Fixed bases for batched randomizer generation: `bases[j] = rⱼ^n mod n²`
/// for secret uniform `rⱼ`, built once per pool and amortized over every
/// later [`RandomizerPool::refill_batched`] call.
///
/// A batched randomizer is `∏ⱼ bases[j]^{eⱼ} = (∏ⱼ rⱼ^{eⱼ})^n` for short
/// random exponents `eⱼ` — a legitimate n-th power, computed with **one**
/// shared squaring chain of `exp_bits` squarings via `modpow_multi`
/// instead of a full `n.bits()`-deep exponentiation per randomizer.
#[derive(Debug)]
struct BlindBases {
    bases: Vec<Ubig>,
    /// Bits drawn per short exponent (`⌈n.bits()/BLIND_BASES⌉`, floored
    /// at [`MIN_BLIND_EXP_BITS`]).
    exp_bits: u64,
}

/// Rough wall-clock model (ns) for one full-width `r^n mod n²`
/// exponentiation, used as a [`Parallelism::with_item_cost_ns`] hint so
/// small refills stay sequential instead of paying spawn/join overhead.
/// One Montgomery square over `k` limbs costs ~`k²` word multiplies; a
/// full exponent walks ~`n.bits()` squarings plus table multiplies.
fn full_exp_cost_ns(pk: &PublicKey) -> u64 {
    let k = pk.modulus_squared().bits().div_ceil(64).max(1);
    pk.modulus().bits().max(1) * (k * k).max(4) * 5
}

/// A single-use pool of precomputed Paillier randomizers `r^n mod n²`.
///
/// # Examples
///
/// ```
/// use paillier::{Keypair, RandomizerPool};
/// use bigint::Ubig;
///
/// let mut rng = rand::thread_rng();
/// let kp = Keypair::generate(&mut rng, 64);
/// let pool = RandomizerPool::generate(kp.public_key().clone(), 16, &mut rng);
/// let c = pool.encrypt(&Ubig::from(7u64))?;
/// assert_eq!(kp.private_key().decrypt_u64(&c), 7);
/// # Ok::<(), paillier::PaillierError>(())
/// ```
#[derive(Debug)]
pub struct RandomizerPool {
    pk: PublicKey,
    randomizers: Vec<Ubig>,
    next: AtomicUsize,
    strict: bool,
    /// Root seed for on-the-fly randomizers once the table is exhausted;
    /// drawn from the caller's RNG at generation time so fallback output
    /// is as deterministic (per claimed index) as the pool itself.
    fallback_seed: u64,
    fallback_count: AtomicU64,
    /// Fixed bases for [`RandomizerPool::refill_batched`], built lazily on
    /// the first batched call.
    blind_bases: Option<BlindBases>,
}

impl RandomizerPool {
    /// Precomputes `size` randomizers sequentially. The key's cached
    /// `n²` Montgomery context is warmed first, so each `r^n` pays only
    /// the exponentiation — not a per-item context rebuild.
    pub fn generate<R: Rng + ?Sized>(pk: PublicKey, size: usize, rng: &mut R) -> Self {
        Self::generate_with(pk, size, &Parallelism::sequential(), rng)
    }

    /// Precomputes `size` randomizers, fanning the exponentiations out
    /// according to `par`. Each randomizer is derived from its own
    /// seed-drawn RNG stream (see [`Parallelism::map_n_seeded`]), so the
    /// pool contents are bit-identical for every thread count — workers
    /// never contend on a shared generator, the paper's bottleneck.
    pub fn generate_with<R: Rng + ?Sized>(
        pk: PublicKey,
        size: usize,
        par: &Parallelism,
        rng: &mut R,
    ) -> Self {
        // Warm the shared n² context once; every worker then reuses it
        // through the key reference instead of rebuilding per item.
        pk.precompute();
        let fallback_seed: u64 = rng.gen();
        let par = par.with_item_cost_ns(full_exp_cost_ns(&pk));
        let randomizers =
            par.map_n_seeded(size, rng, |_, item_rng| Self::one_randomizer(&pk, item_rng));
        RandomizerPool {
            pk,
            randomizers,
            next: AtomicUsize::new(0),
            strict: false,
            fallback_seed,
            fallback_count: AtomicU64::new(0),
            blind_bases: None,
        }
    }

    /// Makes exhaustion a hard [`PaillierError::PoolExhausted`] error
    /// instead of generating missing randomizers on the fly. Use this
    /// when the pool size is part of a performance budget that silent
    /// fallback would mask.
    pub fn with_strict(mut self) -> Self {
        self.strict = true;
        self
    }

    fn one_randomizer<R: Rng + ?Sized>(pk: &PublicKey, rng: &mut R) -> Ubig {
        let r = random::gen_coprime(rng, pk.modulus());
        pk.pow_mod_n2(&r, pk.modulus())
    }

    /// The public key the pool was built for.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// Randomizers not yet consumed.
    pub fn remaining(&self) -> usize {
        self.randomizers.len().saturating_sub(self.next.load(Ordering::Relaxed))
    }

    /// Total randomizers the pool was generated (and refilled) with,
    /// consumed or not.
    pub fn capacity(&self) -> usize {
        self.randomizers.len()
    }

    /// How many randomizers were generated on the fly because the pool
    /// ran dry. Non-zero means the pool was undersized for its workload.
    pub fn fallback_generated(&self) -> u64 {
        self.fallback_count.load(Ordering::Relaxed)
    }

    /// Tops the pool back up with `additional` fresh randomizers, so a
    /// long batch campaign can keep one pool alive instead of falling
    /// back (or, in strict mode, dying on
    /// [`PaillierError::PoolExhausted`]) mid-round. Requires exclusive
    /// access (`&mut self`); already-claimed randomizers are unaffected.
    ///
    /// ```
    /// use paillier::{Keypair, RandomizerPool};
    /// use bigint::Ubig;
    ///
    /// let mut rng = rand::thread_rng();
    /// let kp = Keypair::generate(&mut rng, 64);
    /// let mut pool =
    ///     RandomizerPool::generate(kp.public_key().clone(), 1, &mut rng).with_strict();
    /// pool.encrypt(&Ubig::one())?;
    /// assert_eq!(pool.remaining(), 0);
    /// pool.refill(4, &mut rng);
    /// assert_eq!(pool.remaining(), 4);
    /// # Ok::<(), paillier::PaillierError>(())
    /// ```
    pub fn refill<R: Rng + ?Sized>(&mut self, additional: usize, rng: &mut R) {
        self.refill_with(additional, &Parallelism::sequential(), rng);
    }

    /// [`RandomizerPool::refill`] with the exponentiations fanned out
    /// according to `par`, same determinism contract as
    /// [`RandomizerPool::generate_with`].
    pub fn refill_with<R: Rng + ?Sized>(
        &mut self,
        additional: usize,
        par: &Parallelism,
        rng: &mut R,
    ) {
        let pk = &self.pk;
        let par = par.with_item_cost_ns(full_exp_cost_ns(pk));
        self.randomizers.extend(
            par.map_n_seeded(additional, rng, |_, item_rng| Self::one_randomizer(pk, item_rng)),
        );
    }

    /// [`RandomizerPool::refill`] through the batched multi-exponentiation
    /// kernel: instead of one full `n.bits()`-deep exponentiation per
    /// randomizer, each new entry is `∏ⱼ Rⱼ^{eⱼ} mod n²` over
    /// [`BLIND_BASES`] fixed bases `Rⱼ = rⱼ^n` (built once per pool, on
    /// the first batched call) with short per-base exponents sharing one
    /// squaring chain — ~`n.bits()/BLIND_BASES` squarings per randomizer
    /// in steady state.
    ///
    /// Every entry is still a legitimate n-th power
    /// (`∏ Rⱼ^{eⱼ} = (∏ rⱼ^{eⱼ})^n`), consumed exactly once. The
    /// trade-off is entropy: a batched randomizer carries
    /// `BLIND_BASES · exp_bits ≥ n.bits()` bits of seed entropy but ranges
    /// over the subgroup generated by the `rⱼ` rather than all of
    /// `Z_n^*` — appropriate for the covert/semi-honest setting the
    /// protocol targets (DESIGN.md, "Exponentiation strategy").
    ///
    /// Determinism contract matches [`RandomizerPool::refill_with`]:
    /// per-item seeded RNG streams, bit-identical at any thread count.
    pub fn refill_batched<R: Rng + ?Sized>(
        &mut self,
        additional: usize,
        par: &Parallelism,
        rng: &mut R,
    ) {
        self.pk.precompute();
        if self.blind_bases.is_none() {
            let n = self.pk.modulus();
            let exp_bits = n.bits().div_ceil(BLIND_BASES as u64).max(MIN_BLIND_EXP_BITS);
            let bases = (0..BLIND_BASES)
                .map(|_| {
                    let r = random::gen_coprime(rng, n);
                    self.pk.pow_mod_n2(&r, n)
                })
                .collect();
            self.blind_bases = Some(BlindBases { bases, exp_bits });
        }
        let pk = &self.pk;
        let blind = self.blind_bases.as_ref().expect("built above");
        let ctx = pk.ctx_n2();
        // Steady-state cost is one shared chain of exp_bits squarings.
        let cost = full_exp_cost_ns(pk) * blind.exp_bits / pk.modulus().bits().max(1);
        let par = par.with_item_cost_ns(cost.max(1));
        let fresh = par.map_n_seeded(additional, rng, |_, item_rng| {
            let exps: Vec<Ubig> =
                (0..BLIND_BASES).map(|_| random::gen_bits(item_rng, blind.exp_bits)).collect();
            match ctx {
                Some(ctx) => {
                    let pairs: Vec<(&Ubig, &Ubig)> = blind.bases.iter().zip(&exps).collect();
                    ctx.modpow_multi(&pairs)
                }
                // Degenerate (even) modulus: fold per-base exponentiations.
                None => blind
                    .bases
                    .iter()
                    .zip(&exps)
                    .fold(&Ubig::one() % pk.modulus_squared(), |acc, (base, e)| {
                        modmul(&acc, &pk.pow_mod_n2(base, e), pk.modulus_squared())
                    }),
            }
        });
        self.randomizers.extend(fresh);
    }

    /// Encrypts `m` using the next unused randomizer. Thread-safe: each
    /// randomizer (pooled or fallback) is claimed by exactly one caller.
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MessageOutOfRange`] if `m >= n`, or — on
    /// a [`RandomizerPool::with_strict`] pool only —
    /// [`PaillierError::PoolExhausted`] once all randomizers are used.
    /// A default pool generates the missing randomizer on the fly and
    /// bumps [`RandomizerPool::fallback_generated`] instead.
    pub fn encrypt(&self, m: &Ubig) -> Result<Ciphertext, PaillierError> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        self.encrypt_at(idx, m)
    }

    /// Encrypts `m` with the randomizer for the already-claimed index
    /// `idx` — the pooled entry if `idx` is in range, otherwise a
    /// fallback randomizer derived deterministically from the pool's
    /// fallback seed and `idx`.
    fn encrypt_at(&self, idx: usize, m: &Ubig) -> Result<Ciphertext, PaillierError> {
        if m >= self.pk.modulus() {
            return Err(PaillierError::MessageOutOfRange);
        }
        let r_n = self.randomizer_at(idx)?;
        let n2 = self.pk.modulus_squared();
        let g_m = &(Ubig::one() + modmul(m, self.pk.modulus(), n2)) % n2;
        Ok(Ciphertext::from_raw(modmul(&g_m, &r_n, n2)))
    }

    /// The randomizer for the already-claimed index `idx`: the pooled
    /// entry if in range, otherwise (on a non-strict pool) a fallback
    /// derived deterministically from the pool's fallback seed and `idx`.
    fn randomizer_at(&self, idx: usize) -> Result<Cow<'_, Ubig>, PaillierError> {
        match self.randomizers.get(idx) {
            Some(r_n) => Ok(Cow::Borrowed(r_n)),
            None if self.strict => {
                Err(PaillierError::PoolExhausted { size: self.randomizers.len(), index: idx })
            }
            None => {
                let seed = self.fallback_seed ^ (idx as u64).wrapping_mul(FALLBACK_STREAM_MUL);
                let mut item_rng = StdRng::seed_from_u64(seed);
                let r_n = Self::one_randomizer(&self.pk, &mut item_rng);
                self.fallback_count.fetch_add(1, Ordering::Relaxed);
                Ok(Cow::Owned(r_n))
            }
        }
    }

    /// Rerandomizes `c` with the next unused pooled blind: one modular
    /// multiplication on the hot path instead of the full `r^n`
    /// exponentiation [`PublicKey::rerandomize`] pays. Same claim
    /// semantics as [`RandomizerPool::encrypt`]: each blind is used
    /// exactly once, exhaustion falls back (or errors on a strict pool).
    ///
    /// # Errors
    ///
    /// Returns [`PaillierError::MalformedCiphertext`] if `c` is not in
    /// `Z_{n²}` or is zero; [`PaillierError::PoolExhausted`] on an
    /// exhausted strict pool.
    pub fn rerandomize(&self, c: &Ciphertext) -> Result<Ciphertext, PaillierError> {
        let n2 = self.pk.modulus_squared();
        if c.as_raw() >= n2 || c.as_raw().is_zero() {
            return Err(PaillierError::MalformedCiphertext);
        }
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        let r_n = self.randomizer_at(idx)?;
        Ok(Ciphertext::from_raw(modmul(c.as_raw(), &r_n, n2)))
    }

    /// Encrypts a batch, fanning out according to `par` and preserving
    /// input order — the paper's "split instances into batches and run
    /// encryptions in parallel".
    ///
    /// The whole block of randomizer indices is claimed up front with one
    /// atomic add, so value `i` always pairs with randomizer
    /// `start + i`: the output is bit-identical regardless of thread
    /// count or scheduling.
    ///
    /// # Errors
    ///
    /// On a [`RandomizerPool::with_strict`] pool, fails with
    /// [`PaillierError::PoolExhausted`] if the pool has fewer than
    /// `values.len()` randomizers left; a default pool generates the
    /// overflow on the fly. Fails with
    /// [`PaillierError::MessageOutOfRange`] if any value is `>= n`
    /// (lowest offending index wins).
    pub fn encrypt_batch(
        &self,
        values: &[Ubig],
        par: &Parallelism,
    ) -> Result<Vec<Ciphertext>, PaillierError> {
        if self.strict && self.remaining() < values.len() {
            return Err(PaillierError::PoolExhausted {
                size: self.randomizers.len(),
                index: self.next.load(Ordering::Relaxed) + values.len() - 1,
            });
        }
        let start = self.next.fetch_add(values.len(), Ordering::Relaxed);
        par.try_map(values, |i, v| self.encrypt_at(start + i, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    fn keypair() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(&mut StdRng::seed_from_u64(500), 64))
    }

    #[test]
    fn pooled_encryption_decrypts() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 8, &mut rng);
        for m in [0u64, 1, 42, 65535] {
            let c = pool.encrypt(&Ubig::from(m)).unwrap();
            assert_eq!(keypair().private_key().decrypt_u64(&c), m);
        }
        assert_eq!(pool.remaining(), 4);
    }

    #[test]
    fn pool_exhaustion_is_an_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool =
            RandomizerPool::generate(keypair().public_key().clone(), 2, &mut rng).with_strict();
        pool.encrypt(&Ubig::one()).unwrap();
        pool.encrypt(&Ubig::one()).unwrap();
        // The error reports the capacity and the index that overran it.
        assert_eq!(
            pool.encrypt(&Ubig::one()),
            Err(PaillierError::PoolExhausted { size: 2, index: 2 })
        );
        assert_eq!(pool.fallback_generated(), 0);
    }

    #[test]
    fn exhausted_default_pool_falls_back() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 2, &mut rng);
        let mut cts = Vec::new();
        for _ in 0..4 {
            cts.push(pool.encrypt(&Ubig::from(5u64)).unwrap());
        }
        assert_eq!(pool.fallback_generated(), 2);
        for ct in &cts {
            assert_eq!(keypair().private_key().decrypt_u64(ct), 5);
        }
        // Fallback randomizers are fresh: no ciphertext repeats.
        let unique: std::collections::HashSet<_> = cts.iter().map(|c| c.as_raw().clone()).collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn refill_revives_an_exhausted_pool() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut pool =
            RandomizerPool::generate(keypair().public_key().clone(), 1, &mut rng).with_strict();
        pool.encrypt(&Ubig::one()).unwrap();
        assert!(matches!(
            pool.encrypt(&Ubig::one()),
            Err(PaillierError::PoolExhausted { size: 1, .. })
        ));
        pool.refill(3, &mut rng);
        assert_eq!(pool.capacity(), 4);
        // Index 0 was consumed and index 1 burned by the failed claim.
        assert_eq!(pool.remaining(), 2);
        let c = pool.encrypt(&Ubig::from(6u64)).unwrap();
        assert_eq!(keypair().private_key().decrypt_u64(&c), 6);
    }

    #[test]
    fn randomizers_are_single_use() {
        // Two encryptions of the same message must differ (fresh r each).
        let mut rng = StdRng::seed_from_u64(3);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 2, &mut rng);
        let c1 = pool.encrypt(&Ubig::from(5u64)).unwrap();
        let c2 = pool.encrypt(&Ubig::from(5u64)).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn parallel_generation_is_deterministic() {
        // Same seed, different thread counts → identical pool contents.
        let pools: Vec<RandomizerPool> = [1usize, 3]
            .into_iter()
            .map(|threads| {
                let mut rng = StdRng::seed_from_u64(4);
                RandomizerPool::generate_with(
                    keypair().public_key().clone(),
                    10,
                    &Parallelism::new(threads).with_min_batch(1),
                    &mut rng,
                )
            })
            .collect();
        assert_eq!(pools[0].randomizers, pools[1].randomizers);
        assert_eq!(pools[1].remaining(), 10);
        let c = pools[1].encrypt(&Ubig::from(9u64)).unwrap();
        assert_eq!(keypair().private_key().decrypt_u64(&c), 9);
    }

    #[test]
    fn batch_encryption_preserves_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 20, &mut rng);
        let values: Vec<Ubig> = (0..17u64).map(Ubig::from).collect();
        let cts = pool.encrypt_batch(&values, &Parallelism::new(4)).unwrap();
        for (i, ct) in cts.iter().enumerate() {
            assert_eq!(keypair().private_key().decrypt_u64(ct), i as u64);
        }
    }

    #[test]
    fn batch_encryption_is_thread_count_invariant() {
        let values: Vec<Ubig> = (0..9u64).map(Ubig::from).collect();
        let batches: Vec<Vec<Ciphertext>> = [1usize, 4]
            .into_iter()
            .map(|threads| {
                let mut rng = StdRng::seed_from_u64(11);
                // Undersized on purpose: the last 3 go through fallback.
                let pool = RandomizerPool::generate(keypair().public_key().clone(), 6, &mut rng);
                let out = pool
                    .encrypt_batch(&values, &Parallelism::new(threads).with_min_batch(1))
                    .unwrap();
                assert_eq!(pool.fallback_generated(), 3);
                out
            })
            .collect();
        assert_eq!(batches[0], batches[1]);
    }

    #[test]
    fn batch_larger_than_strict_pool_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool =
            RandomizerPool::generate(keypair().public_key().clone(), 3, &mut rng).with_strict();
        let values: Vec<Ubig> = (0..5u64).map(Ubig::from).collect();
        assert_eq!(
            pool.encrypt_batch(&values, &Parallelism::new(2)),
            Err(PaillierError::PoolExhausted { size: 3, index: 4 })
        );
    }

    #[test]
    fn batched_refill_decrypts_and_is_thread_count_invariant() {
        // Same seed, different thread counts → identical batched entries,
        // and every batched randomizer yields a decryptable ciphertext.
        let pools: Vec<RandomizerPool> = [1usize, 3]
            .into_iter()
            .map(|threads| {
                let mut rng = StdRng::seed_from_u64(21);
                let mut pool =
                    RandomizerPool::generate(keypair().public_key().clone(), 0, &mut rng);
                pool.refill_batched(12, &Parallelism::new(threads).with_min_batch(1), &mut rng);
                pool
            })
            .collect();
        assert_eq!(pools[0].randomizers, pools[1].randomizers);
        assert_eq!(pools[0].capacity(), 12);
        for m in [0u64, 7, 65535] {
            let c = pools[0].encrypt(&Ubig::from(m)).unwrap();
            assert_eq!(keypair().private_key().decrypt_u64(&c), m);
        }
    }

    #[test]
    fn batched_refill_matches_entropy_and_stays_single_use() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut pool = RandomizerPool::generate(keypair().public_key().clone(), 0, &mut rng);
        pool.refill_batched(8, &Parallelism::sequential(), &mut rng);
        // A second batched refill reuses the bases (no re-derivation from
        // the RNG beyond the short exponents) and keeps extending.
        pool.refill_batched(8, &Parallelism::sequential(), &mut rng);
        assert_eq!(pool.capacity(), 16);
        let unique: std::collections::HashSet<_> = pool.randomizers.iter().cloned().collect();
        assert_eq!(unique.len(), 16, "batched randomizers must be pairwise distinct");
    }

    #[test]
    fn pooled_rerandomize_preserves_plaintext() {
        let mut rng = StdRng::seed_from_u64(23);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 4, &mut rng);
        let c = keypair().public_key().encrypt_u64(77, &mut rng);
        let c2 = pool.rerandomize(&c).unwrap();
        assert_ne!(c, c2, "rerandomization must change the ciphertext");
        assert_eq!(keypair().private_key().decrypt_u64(&c2), 77);
        assert_eq!(pool.remaining(), 3, "one blind claimed");
        // Malformed inputs rejected without consuming a blind... the claim
        // happens after validation.
        let bad = Ciphertext::from_raw(Ubig::zero());
        assert_eq!(pool.rerandomize(&bad), Err(PaillierError::MalformedCiphertext));
        assert_eq!(pool.remaining(), 3);
    }

    #[test]
    fn pooled_rerandomize_respects_strict_exhaustion() {
        let mut rng = StdRng::seed_from_u64(24);
        let pool =
            RandomizerPool::generate(keypair().public_key().clone(), 1, &mut rng).with_strict();
        let c = keypair().public_key().encrypt_u64(5, &mut rng);
        pool.rerandomize(&c).unwrap();
        assert!(matches!(
            pool.rerandomize(&c),
            Err(PaillierError::PoolExhausted { size: 1, index: 1 })
        ));
    }

    #[test]
    fn concurrent_claims_never_collide() {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = RandomizerPool::generate(keypair().public_key().clone(), 64, &mut rng);
        let cts: Vec<Ciphertext> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        (0..8).map(|_| pool.encrypt(&Ubig::from(1u64)).unwrap()).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        // All 64 ciphertexts must be pairwise distinct randomizers.
        let unique: std::collections::HashSet<_> = cts.iter().map(|c| c.as_raw().clone()).collect();
        assert_eq!(unique.len(), 64);
        assert_eq!(pool.remaining(), 0);
    }
}
